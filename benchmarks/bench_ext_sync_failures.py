"""Extension bench: robustness under clock skew and node failures.

The paper assumes perfect synchronisation and immortal nodes.  This bench
quantifies what each assumption is worth: delivery as a function of clock
skew, and the blast radius of killing relay nodes mid-run.
"""

import pytest

from repro.core.params import PBBFParams
from repro.detailed.config import CodeDistributionParameters
from repro.detailed.simulator import DetailedSimulator

CONFIG = CodeDistributionParameters(n_nodes=25, density=10.0, duration=300.0)
SKEWS = (0.0, 1.0, 4.0)
SEEDS = (3, 4)


def _delivery_at_skew(skew: float, q: float) -> float:
    values = []
    for seed in SEEDS:
        result = DetailedSimulator(
            PBBFParams(p=0.0, q=q), CONFIG, seed=seed, clock_skew_std=skew
        ).run()
        values.append(result.metrics.mean_updates_received_fraction())
    return sum(values) / len(values)


def _delivery_with_failures(n_failures: int) -> float:
    values = []
    for seed in SEEDS:
        sim = DetailedSimulator(PBBFParams.psm(), CONFIG, seed=seed)
        victims = [
            node for node in range(CONFIG.n_nodes) if node != sim.source
        ][:n_failures]
        failing = DetailedSimulator(
            PBBFParams.psm(), CONFIG, seed=seed,
            node_failures={v: 100.0 for v in victims},
        )
        result = failing.run()
        values.append(result.metrics.mean_updates_received_fraction())
    return sum(values) / len(values)


def test_ext_sync_and_failures(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "skew_psm": {s: _delivery_at_skew(s, q=0.0) for s in SKEWS},
            "skew_q1": {s: _delivery_at_skew(s, q=1.0) for s in SKEWS},
            "failures": {n: _delivery_with_failures(n) for n in (0, 3, 6)},
        },
        rounds=1,
        iterations=1,
    )
    print()
    print("== extension: delivery under clock skew (PSM vs q=1) ==")
    for skew in SKEWS:
        print(
            f"  skew sigma={skew:>3.1f}s: PSM {results['skew_psm'][skew]:.3f}"
            f"   q=1 {results['skew_q1'][skew]:.3f}"
        )
    print("== extension: delivery with relay nodes killed at t=100s ==")
    for n, value in results["failures"].items():
        print(f"  {n} failures: {value:.3f}")
    benchmark.extra_info.update(
        {
            "psm_skew4": results["skew_psm"][4.0],
            "q1_skew4": results["skew_q1"][4.0],
            "six_failures": results["failures"][6],
        }
    )

    # PSM degrades with skew; an always-awake network shrugs it off.
    assert results["skew_psm"][4.0] < results["skew_psm"][0.0]
    assert results["skew_q1"][4.0] > 0.9
    # Failures hurt monotonically (weakly — the survivors may still cover).
    assert results["failures"][6] <= results["failures"][0] + 0.02
