"""Figure 11: average per-hop update latency (ideal grid).

Paper shape: PSM sits near Tframe (10 s), NO PSM near L1 (~1.5 s); PBBF
falls between, decreasing in p and q once reliability is meaningful.
"""

import pytest


def test_fig11_perhop_latency(run_experiment, benchmark):
    result = run_experiment("fig11")

    psm = result.get_series("PSM").points[0][1]
    no_psm = result.get_series("NO PSM").points[0][1]
    assert 6.0 < psm <= 10.5  # ~Tframe minus the cheaper first hop
    assert no_psm == pytest.approx(1.5, rel=0.05)

    # PBBF-0.75 at high q approaches the NO PSM floor; PBBF decreases in q.
    series = result.get_series("PBBF-0.75")
    assert series.y_at(1.0) < psm
    tail = [y for q, y in series.points if q >= 0.4 and y is not None]
    assert tail == sorted(tail, reverse=True)

    benchmark.extra_info["psm_perhop_s"] = psm
    benchmark.extra_info["no_psm_perhop_s"] = no_psm
