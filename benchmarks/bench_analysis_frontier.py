"""Micro-benchmarks of the trade-off analysis kernels.

The frontier pipeline runs after every campaign (as ``post_process``
hooks), so its pruning, selection and bootstrap kernels must stay cheap
relative to simulation.  These benches time them on synthetic operating
points — sized like a full-scale multi-family campaign — with
deterministic inputs so runs are comparable across commits (uploaded to
CI as ``BENCH_analysis.json`` alongside the kernel baseline).
"""

import random

from repro.analysis.bootstrap import bootstrap_ci95
from repro.analysis.compare import compare_frontiers, hypervolume, shared_reference
from repro.analysis.objectives import Objective, OperatingPoint
from repro.analysis.pareto import pareto_frontier
from repro.analysis.selectors import knee_index

OBJECTIVES = (
    Objective(name="latency", label="latency", metric=lambda m: None, sense="min"),
    Objective(name="energy", label="energy", metric=lambda m: None, sense="min"),
)


def synthetic_points(n: int, seed: int = 7):
    """``n`` deterministic operating points on a noisy trade-off curve."""
    rng = random.Random(seed)
    points = []
    for index in range(n):
        latency = rng.uniform(1.0, 30.0)
        energy = 40.0 / latency + rng.uniform(0.0, 3.0)
        points.append(
            OperatingPoint(
                params=(("i", index),),
                label=f"pt{index}",
                values=(latency, energy),
                ci95=(0.0, 0.0),
                samples=((latency,), (energy,)),
            )
        )
    return points


def test_pareto_frontier_throughput(benchmark):
    """Dominated-point pruning over 5000 candidate points."""
    points = synthetic_points(5000)

    def run():
        return len(pareto_frontier(points, OBJECTIVES))

    size = benchmark(run)
    assert size >= 1
    benchmark.extra_info["n_points"] = len(points)
    benchmark.extra_info["frontier_size"] = size


def test_knee_and_hypervolume_throughput(benchmark):
    """Knee selection + hypervolume on a realistic frontier size."""
    frontier = pareto_frontier(synthetic_points(2000), OBJECTIVES)
    reference = shared_reference([frontier])

    def run():
        return knee_index(frontier), hypervolume(frontier, reference)

    knee, volume = benchmark(run)
    assert 0 <= knee < len(frontier)
    assert volume > 0.0
    benchmark.extra_info["frontier_size"] = len(frontier)


def test_bootstrap_ci_throughput(benchmark):
    """200-resample bootstrap over a ten-seed sample (one table cell)."""
    values = [1.0 + 0.1 * i for i in range(10)]

    def run():
        return bootstrap_ci95(values, 20050610, "bench", "energy")

    ci = benchmark(run)
    assert ci > 0.0


def test_frontier_comparison_throughput(benchmark):
    """Full cross-family comparison (hypervolume + pairwise coverage)."""
    frontiers = {
        f"family{k}": pareto_frontier(synthetic_points(800, seed=k), OBJECTIVES)
        for k in range(4)
    }

    def run():
        return compare_frontiers(frontiers)

    comparison = benchmark(run)
    assert len(comparison.summaries) == 4
