"""Campaign-fabric throughput: execution backends and cache tiers.

Two jobs share this module:

* pytest smokes — drive a small campaign through every backend (serial,
  process-pool, sharded work queue) and both cache tiers, asserting the
  fabric's core invariant: identical metrics whichever path computed or
  served them.  CI runs these with the other benchmark suites.

* ``python benchmarks/bench_campaign_throughput.py`` — measure (1)
  warm-read throughput of the batched SQLite tier against the per-file
  JSON layer on a campaign-scale key set, (2) end-to-end campaign
  points/sec on each backend, (3) cold-vs-warm campaign wall time on
  each cache tier, and (4) the telemetry fabric's overhead — campaign
  points/sec with recording disabled (the no-op recorder) vs enabled,
  plus the disabled span's per-call cost in nanoseconds — writing the
  report to ``BENCH_campaign.json`` at the repo root.  The committed
  copy pins the ≥5x warm-read speedup this repo claims for
  ``--cache-tier sqlite`` and the near-zero disabled-telemetry cost;
  regenerate it on quiet hardware after touching the cache or
  telemetry layers.

Timing methodology matches the kernel baseline: contenders are
interleaved rep by rep, gc is disabled inside timed regions, and the
headline is min-of-reps.  Every timed read is also verified (same keys,
same payloads), so a timing run doubles as a parity check.
"""

import argparse
import gc
import json
import math
import shutil
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation from a checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runners import (
    CampaignSpec,
    ResultCache,
    SQLiteCacheTier,
    WorkQueue,
    clear_run_caches,
    execution,
    run_campaign,
)
from repro.runners.backends import _Lease


def bench_spec(n_points: int = 8, n_seeds: int = 3) -> CampaignSpec:
    """A percolation sweep sized so backend overheads are visible."""
    reliabilities = tuple(
        round(0.80 + 0.02 * index, 2) for index in range(n_points)
    )
    return CampaignSpec.build(
        kind="percolation",
        axes={"reliability": reliabilities},
        fixed={"grid_side": 12, "runs": 12, "process": "bond"},
        seed_params=("grid_side", "reliability"),
        n_seeds=n_seeds,
    )


def synthetic_leases(n_leases: int) -> list:
    """Queue-shaped leases with run-key-shaped keys, no evaluation cost.

    The queue-overhead drill completes these with a canned payload, so a
    timed rep measures pure queue I/O — exactly the per-point overhead a
    million-point campaign pays on top of simulation.
    """
    return [
        _Lease(
            task=("percolation", {"index": index}, (0,)),
            start=index,
            key=f"{index:08x}" + "cd" * 28,
        )
        for index in range(n_leases)
    ]


def synthetic_entries(n_keys: int) -> dict:
    """Campaign-shaped payloads keyed like real run hashes."""
    return {
        f"{index:08x}" + "ab" * 28: {
            "kind": "percolation",
            "metrics": {
                "critical_fraction": 0.5 + (index % 97) / 1000.0,
                "ci95": 0.01,
                "n_runs": 12,
            },
        }
        for index in range(n_keys)
    }


# --------------------------------------------------------------------------
# pytest smokes (parity through every backend and tier)
# --------------------------------------------------------------------------


def _campaign_fingerprint(result):
    return [
        result.metrics(seed_index=index, **point)
        for point in result.spec.points()
        for index in range(result.spec.n_seeds)
    ]


def test_every_backend_is_bit_identical():
    spec = bench_spec(n_points=2, n_seeds=2)
    fingerprints = []
    for backend in ("serial", "pool", "sharded"):
        clear_run_caches()
        with execution(backend=backend, jobs=2, use_cache=False):
            fingerprints.append(_campaign_fingerprint(run_campaign(spec)))
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]
    clear_run_caches()


def test_both_tiers_serve_identical_warm_results(tmp_path):
    spec = bench_spec(n_points=2, n_seeds=2)
    fingerprints = []
    for tier in ("file", "sqlite"):
        root = tmp_path / tier
        for _repeat in range(2):  # cold, then warm from disk
            clear_run_caches()
            with execution(cache_tier=tier):
                result = run_campaign(spec, cache=str(root))
        fingerprints.append(_campaign_fingerprint(result))
    assert fingerprints[0] == fingerprints[1]
    clear_run_caches()


def test_telemetry_overhead_stays_bounded(tmp_path):
    """Enabled telemetry must not halve campaign throughput (smoke).

    The real guard is the committed BENCH report's disabled-vs-enabled
    points/sec; this smoke run bounds the ratio loosely enough to stay
    robust on noisy CI hosts while still catching an accidental
    hot-loop write (which costs an order of magnitude, not a factor).
    """
    spec = bench_spec(n_points=2, n_seeds=2)
    row = measure_telemetry(spec, reps=2, telemetry_root=tmp_path)
    assert row["enabled_seconds"] < row["disabled_seconds"] * 3.0
    assert row["noop_span_ns"] < 50_000  # a disabled span is ~a µs at worst


def test_block_drill_respects_round_trip_bound(tmp_path):
    """Block leasing must hold write txns <= ceil(n/block) + 1 (smoke).

    The same assertion runs inside every timed rep of the full drill;
    this small run keeps it under pytest so CI catches a protocol
    regression without the 20k-lease version's wall time.
    """
    leases = synthetic_leases(120)
    payload = [{"critical_fraction": 0.5, "ci95": 0.01, "n_runs": 12}]
    for block in (1, 16):
        row = _drain_drill(
            tmp_path / f"q-{block}", leases, block, payload, False
        )
        assert row["write_txns"] <= math.ceil(len(leases) / block) + 1


def test_warm_read_parity_on_synthetic_keys(tmp_path):
    entries = synthetic_entries(256)
    SQLiteCacheTier(tmp_path).put_many(entries)
    keys = list(entries)
    from_files = ResultCache(tmp_path).get_many(keys)
    from_sqlite = SQLiteCacheTier(tmp_path).get_many(keys)
    assert set(from_files) == set(from_sqlite) == set(keys)
    assert all(
        from_files[key]["metrics"] == from_sqlite[key]["metrics"]
        for key in keys
    )


# --------------------------------------------------------------------------
# The measurement harness (the __main__ entry point)
# --------------------------------------------------------------------------


def measure_warm_reads(n_keys: int, reps: int) -> dict:
    """Interleaved A/B: per-file JSON reads vs batched SQLite reads.

    The key set is written once through the SQLite tier with
    write-through on, so both layers hold the exact same entries; each
    rep reads *every* key through each layer and verifies the payloads
    match before its timing counts.
    """
    root = Path(tempfile.mkdtemp(prefix="bench-campaign-"))
    try:
        entries = synthetic_entries(n_keys)
        SQLiteCacheTier(root).put_many(entries)
        keys = list(entries)
        file_s, sqlite_s = [], []
        for _ in range(reps):
            files = ResultCache(root)
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            from_files = files.get_many(keys)
            file_s.append(time.perf_counter() - start)
            gc.enable()

            tier = SQLiteCacheTier(root)
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            from_sqlite = tier.get_many(keys)
            sqlite_s.append(time.perf_counter() - start)
            gc.enable()

            assert set(from_files) == set(from_sqlite) == set(keys)
            assert all(
                from_files[key]["metrics"] == from_sqlite[key]["metrics"]
                for key in keys
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "n_keys": n_keys,
        "file_seconds": min(file_s),
        "sqlite_seconds": min(sqlite_s),
        "speedup": round(min(file_s) / min(sqlite_s), 2),
        "file_keys_per_second": round(n_keys / min(file_s)),
        "sqlite_keys_per_second": round(n_keys / min(sqlite_s)),
        "file_seconds_reps": [round(t, 4) for t in file_s],
        "sqlite_seconds_reps": [round(t, 4) for t in sqlite_s],
    }


def measure_backends(spec: CampaignSpec, jobs: int, reps: int) -> list:
    """End-to-end campaign points/sec per backend, cache off."""
    n_runs = len(spec.runs())
    timings = {"serial": [], "pool": [], "sharded": []}
    for _ in range(reps):
        for backend in timings:  # interleaved: drift hits all three
            clear_run_caches()
            with execution(backend=backend, jobs=jobs, use_cache=False):
                gc.collect()
                start = time.perf_counter()
                result = run_campaign(spec)
                timings[backend].append(time.perf_counter() - start)
            assert not result.failures
    clear_run_caches()
    return [
        {
            "backend": backend,
            "jobs": 1 if backend == "serial" else jobs,
            "n_runs": n_runs,
            "seconds": min(times),
            "points_per_second": round(n_runs / min(times), 1),
            "seconds_reps": [round(t, 4) for t in times],
        }
        for backend, times in timings.items()
    ]


def measure_tiers(spec: CampaignSpec) -> list:
    """Cold (compute + write) vs warm (pure scan) campaign per tier."""
    n_runs = len(spec.runs())
    rows = []
    for tier in ("file", "sqlite"):
        root = Path(tempfile.mkdtemp(prefix=f"bench-tier-{tier}-"))
        try:
            with execution(cache_tier=tier):
                clear_run_caches()
                gc.collect()
                start = time.perf_counter()
                run_campaign(spec, cache=str(root))
                cold = time.perf_counter() - start
                clear_run_caches()  # warm run must hit the disk, not the memo
                gc.collect()
                start = time.perf_counter()
                result = run_campaign(spec, cache=str(root))
                warm = time.perf_counter() - start
            assert not result.failures
        finally:
            shutil.rmtree(root, ignore_errors=True)
        rows.append(
            {
                "tier": tier,
                "n_runs": n_runs,
                "cold_seconds": round(cold, 4),
                "warm_seconds": round(warm, 4),
                "warm_points_per_second": round(n_runs / warm, 1),
            }
        )
    clear_run_caches()
    return rows


def measure_telemetry(
    spec: CampaignSpec, reps: int, telemetry_root: Path = None
) -> dict:
    """Campaign points/sec with telemetry disabled vs enabled (serial).

    Also micro-measures the disabled path itself — one no-op span enter/
    exit — since that is the cost every instrumented call site pays when
    telemetry is off (the fabric's zero-overhead-by-default claim).
    """
    from repro import obs

    n_runs = len(spec.runs())
    root = telemetry_root or Path(tempfile.mkdtemp(prefix="bench-telemetry-"))
    owns_root = telemetry_root is None
    disabled_s, enabled_s = [], []
    fingerprints = []
    try:
        for rep in range(reps):
            clear_run_caches()
            obs.reset_recorder()
            with execution(use_cache=False):
                gc.collect()
                start = time.perf_counter()
                result = run_campaign(spec)
                disabled_s.append(time.perf_counter() - start)
            fingerprints.append(_campaign_fingerprint(result))

            clear_run_caches()
            obs.install_recorder(root / f"rep-{rep}", role="parent")
            with execution(
                use_cache=False, telemetry_dir=str(root / f"rep-{rep}")
            ):
                gc.collect()
                start = time.perf_counter()
                result = run_campaign(spec)
                enabled_s.append(time.perf_counter() - start)
            obs.reset_recorder()
            fingerprints.append(_campaign_fingerprint(result))
        # The fabric's hard invariant rides along with the timing run:
        # recorded and unrecorded campaigns are bit-identical.
        assert all(prints == fingerprints[0] for prints in fingerprints)

        recorder = obs.NULL_RECORDER
        n_calls = 200_000
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        for _ in range(n_calls):
            with recorder.span("bench"):
                pass
        noop_span_ns = (time.perf_counter() - start) / n_calls * 1e9
        gc.enable()
    finally:
        obs.reset_recorder()
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "n_runs": n_runs,
        "disabled_seconds": min(disabled_s),
        "enabled_seconds": min(enabled_s),
        "disabled_points_per_second": round(n_runs / min(disabled_s), 1),
        "enabled_points_per_second": round(n_runs / min(enabled_s), 1),
        "overhead_percent": round(
            100.0 * (min(enabled_s) / min(disabled_s) - 1.0), 2
        ),
        "noop_span_ns": round(noop_span_ns, 1),
        "disabled_seconds_reps": [round(t, 4) for t in disabled_s],
        "enabled_seconds_reps": [round(t, 4) for t in enabled_s],
    }


def _drain_drill(
    root: Path, leases: list, block: int, payload: list, object_store: bool
) -> dict:
    """Drain a fresh queue through the block protocol; verify, then time.

    Returns the elapsed seconds, the write transactions spent from
    enqueue to drained (the round-trip bound under test), and the
    checkpointed database size.  Every row is read back through the
    paged harvest and compared against the payload — the parity check
    rides inside the timed rep, exactly like the other sections.
    """
    queue = WorkQueue(root)
    queue.object_store = object_store
    queue.enqueue(leases)
    start_txns = queue.round_trips
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    claimed = queue.complete_and_claim([], "drill", 3600.0, block)
    while claimed:
        done = [(key, payload) for key, _task, _attempt in claimed]
        claimed = queue.complete_and_claim(done, "drill", 3600.0, block)
    elapsed = time.perf_counter() - start
    gc.enable()
    txns = queue.round_trips - start_txns
    assert queue.drained()
    assert txns <= math.ceil(len(leases) / block) + 1, (
        f"block={block}: {txns} write txns for {len(leases)} leases"
    )
    after, fetched = 0, {}
    while True:
        rows = queue.fetch_results(after, limit=512)
        for rowid, key, flats in rows:
            fetched[key] = flats
            after = max(after, rowid)
        if len(rows) < 512:
            break
    assert len(fetched) == len(leases)
    assert all(flats == payload for flats in fetched.values())
    queue._connect().execute("PRAGMA wal_checkpoint(TRUNCATE)")
    db_bytes = queue._disk_bytes()
    n_objects, object_bytes = (
        queue.objects.stats() if object_store else (0, 0)
    )
    return {
        "seconds": elapsed,
        "write_txns": txns,
        "db_bytes": db_bytes,
        "n_objects": n_objects,
        "object_bytes": object_bytes,
    }


def measure_queue_overhead(
    n_leases: int, reps: int, blocks=(1, 16, 64)
) -> dict:
    """Pure queue overhead per point at each lease-block size.

    The drill is evaluation-free, so points/sec here is the ceiling the
    queue imposes on any campaign; the committed report pins the >= 5x
    per-point overhead reduction block leasing claims at block 64 vs the
    original row-at-a-time protocol.  A second A/B drains an ~8 KiB
    payload with the content-addressed object store off and on, at the
    largest block, to report the database-size effect of indirecting
    repeated large payloads.
    """
    leases = synthetic_leases(n_leases)
    small_payload = [{"critical_fraction": 0.5, "ci95": 0.01, "n_runs": 12}]
    big_payload = [
        {f"metric_{index:03d}": float(index) for index in range(600)}
    ]
    n_store = min(n_leases, 2000)
    store_leases = leases[:n_store]
    block_s = {block: [] for block in blocks}
    block_txns = {}
    store_s = {False: [], True: []}
    store_rows = {}
    for _ in range(reps):
        for block in blocks:  # interleaved: drift hits every block size
            root = Path(tempfile.mkdtemp(prefix=f"bench-queue-{block}-"))
            try:
                row = _drain_drill(root, leases, block, small_payload, False)
            finally:
                shutil.rmtree(root, ignore_errors=True)
            block_s[block].append(row["seconds"])
            block_txns[block] = row["write_txns"]
        for flag in (False, True):
            root = Path(tempfile.mkdtemp(prefix="bench-queue-objstore-"))
            try:
                row = _drain_drill(
                    root, store_leases, max(blocks), big_payload, flag
                )
            finally:
                shutil.rmtree(root, ignore_errors=True)
            store_s[flag].append(row["seconds"])
            store_rows[flag] = row
    biggest, smallest = max(blocks), min(blocks)
    per_point = {
        block: min(times) / n_leases for block, times in block_s.items()
    }
    return {
        "n_leases": n_leases,
        "blocks": [
            {
                "block": block,
                "seconds": round(min(times), 4),
                "points_per_second": round(n_leases / min(times), 1),
                "write_txns": block_txns[block],
                "txns_per_point": round(block_txns[block] / n_leases, 4),
                "overhead_us_per_point": round(per_point[block] * 1e6, 2),
                "seconds_reps": [round(t, 4) for t in times],
            }
            for block, times in block_s.items()
        ],
        "overhead_reduction_block64_vs_block1": round(
            per_point[smallest] / per_point[biggest], 2
        ),
        "object_store": {
            "n_leases": n_store,
            "block": biggest,
            "payload_bytes": len(json.dumps(big_payload)),
            "off_seconds": round(min(store_s[False]), 4),
            "on_seconds": round(min(store_s[True]), 4),
            "off_db_bytes": store_rows[False]["db_bytes"],
            "on_db_bytes": store_rows[True]["db_bytes"],
            "on_object_bytes": store_rows[True]["object_bytes"],
            "n_objects": store_rows[True]["n_objects"],
            "db_bytes_reduction": round(
                store_rows[False]["db_bytes"]
                / max(1, store_rows[True]["db_bytes"]),
                1,
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure campaign backends and cache-tier throughput"
    )
    parser.add_argument(
        "--reps", type=int, default=5, help="interleaved A/B repetitions"
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="workers for pool/sharded"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunk key set and campaign for CI",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_campaign.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--only",
        choices=("all", "warm", "backends", "tiers", "telemetry", "queue"),
        default="all",
        help="run a single section (the CI queue-scale job runs "
             "`--only queue`); the report contains just that section",
    )
    args = parser.parse_args(argv)

    n_keys = 1000 if args.quick else 5000
    n_leases = 2000 if args.quick else 20000
    spec = bench_spec(n_points=4 if args.quick else 8, n_seeds=3)

    report = {
        "benchmark": "campaign-fabric-throughput",
        "description": (
            "Warm-read throughput of the batched SQLite cache tier vs "
            "per-file JSON reads on a campaign-scale key set; campaign "
            "points/sec on the serial, process-pool and sharded-queue "
            "backends; cold-vs-warm campaign wall time per cache tier; "
            "campaign throughput with telemetry recording disabled vs "
            "enabled (plus the disabled span's per-call cost); pure "
            "queue overhead per point at lease-block sizes 1/16/64 and "
            "the object-store database-size effect. "
            "Payload parity verified inside every timed rep."
        ),
        "method": (
            f"interleaved A/B, min of {args.reps} reps, gc disabled "
            "inside timed read regions"
        ),
        "command": "python benchmarks/bench_campaign_throughput.py",
        "quick": args.quick,
    }

    if args.only in ("all", "warm"):
        print(f"measuring warm reads over {n_keys} keys ...", flush=True)
        warm = measure_warm_reads(n_keys, args.reps)
        print(
            f"  file {warm['file_seconds']:.3f}s"
            f"  sqlite {warm['sqlite_seconds']:.3f}s"
            f"  speedup {warm['speedup']:.2f}x",
            flush=True,
        )
        report["warm_read"] = warm

    if args.only in ("all", "backends"):
        print(
            f"measuring backends over {len(spec.runs())} runs ...", flush=True
        )
        backends = measure_backends(spec, jobs=args.jobs, reps=args.reps)
        for row in backends:
            print(
                f"  {row['backend']:8s} {row['seconds']:.3f}s"
                f"  ({row['points_per_second']} points/s)",
                flush=True,
            )
        report["backends"] = backends

    if args.only in ("all", "tiers"):
        print("measuring cache tiers cold/warm ...", flush=True)
        tiers = measure_tiers(spec)
        for row in tiers:
            print(
                f"  {row['tier']:8s} cold {row['cold_seconds']:.3f}s"
                f"  warm {row['warm_seconds']:.3f}s",
                flush=True,
            )
        report["tiers"] = tiers

    if args.only in ("all", "telemetry"):
        print("measuring telemetry overhead ...", flush=True)
        telemetry = measure_telemetry(spec, reps=args.reps)
        print(
            f"  disabled {telemetry['disabled_seconds']:.3f}s"
            f"  enabled {telemetry['enabled_seconds']:.3f}s"
            f"  (+{telemetry['overhead_percent']:.1f}%;"
            f" no-op span {telemetry['noop_span_ns']:.0f}ns)",
            flush=True,
        )
        report["telemetry"] = telemetry

    if args.only in ("all", "queue"):
        print(
            f"measuring queue overhead over {n_leases} leases ...", flush=True
        )
        queue = measure_queue_overhead(n_leases, args.reps)
        for row in queue["blocks"]:
            print(
                f"  block {row['block']:3d} {row['seconds']:.3f}s"
                f"  ({row['points_per_second']} points/s,"
                f" {row['overhead_us_per_point']}us/point,"
                f" {row['write_txns']} txns)",
                flush=True,
            )
        print(
            f"  per-point overhead reduction block 64 vs 1: "
            f"{queue['overhead_reduction_block64_vs_block1']:.1f}x;"
            f" object store db "
            f"{queue['object_store']['off_db_bytes']} -> "
            f"{queue['object_store']['on_db_bytes']} bytes",
            flush=True,
        )
        report["queue"] = queue

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
