"""Figure 8: average energy consumption (ideal grid).

Paper shape: energy per update rises linearly in q, is independent of p
(all PBBF lines overlap), and spans the PSM floor (~0.3 J) to roughly the
NO PSM ceiling (~3 J); "using PSM saves almost 3 Joules per update".
"""

import pytest


def test_fig08_energy_ideal(run_experiment, benchmark):
    result = run_experiment("fig08")

    psm = result.get_series("PSM").points[0][1]
    no_psm = result.get_series("NO PSM").points[0][1]
    assert psm == pytest.approx(0.30, rel=0.05)
    assert no_psm == pytest.approx(3.0, rel=0.05)
    assert 2.5 < no_psm - psm < 2.9

    # p-independence: PBBF lines overlap pointwise.
    reference = dict(result.get_series("PBBF-0.05").points)
    for label in ("PBBF-0.25", "PBBF-0.5", "PBBF-0.75"):
        series = dict(result.get_series(label).points)
        for q, y in series.items():
            assert y == pytest.approx(reference[q], rel=0.02)

    # Linearity in q: second differences vanish.
    points = sorted(result.get_series("PBBF-0.5").points)
    ys = [y for _, y in points]
    gaps = [b - a for a, b in zip(ys, ys[1:])]
    assert all(g == pytest.approx(gaps[0], rel=0.05) for g in gaps)

    benchmark.extra_info["psm_joules"] = psm
    benchmark.extra_info["no_psm_joules"] = no_psm
