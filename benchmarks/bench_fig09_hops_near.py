"""Figure 9: average hops travelled to reach near-distance nodes.

Paper shape: near the reliability threshold the broadcast reaches nodes
via tortuous spanning-tree paths (hops well above the lattice distance);
as q grows the hop count collapses toward the lattice distance.  PSM and
NO PSM always use shortest paths.
"""

import pytest

from repro.experiments import Scale


def test_fig09_hops_near(run_experiment, benchmark):
    scale = Scale.fast()
    result = run_experiment("fig09", scale)
    d = scale.hop_distance_near

    assert all(
        y == pytest.approx(d) for _, y in result.get_series("PSM").points
    )
    assert all(
        y == pytest.approx(d) for _, y in result.get_series("NO PSM").points
    )

    series = result.get_series("PBBF-0.5")
    observed = [y for _, y in series.points if y is not None]
    assert max(observed) > d * 1.1  # stretch somewhere along the sweep
    assert series.y_at(1.0) < d * 1.25  # near-direct at q=1

    benchmark.extra_info["max_stretch"] = max(observed) / d
