"""Figure 17: average update latency vs density (detailed, q=0.25).

Paper shape: latency falls as density rises for the sleep-scheduled
protocols (fewer hops from the source mean fewer beacon intervals paid);
NO PSM stays lowest throughout.
"""


def test_fig17_latency_density(run_experiment, benchmark):
    result = run_experiment("fig17")

    psm = sorted(result.get_series("PSM").points)
    assert psm[0][1] > psm[-1][1]  # sparse deployments pay more intervals

    no_psm = dict(result.get_series("NO PSM").points)
    for label in [s.label for s in result.series if s.label != "NO PSM"]:
        for density, y in result.get_series(label).points:
            if y is not None:
                assert y > no_psm[density]  # NO PSM lowest everywhere

    benchmark.extra_info["psm_sparse_s"] = psm[0][1]
    benchmark.extra_info["psm_dense_s"] = psm[-1][1]
