"""Figure 12: the energy-latency trade-off at 99% reliability.

Paper shape: a single monotonically decreasing curve — buying lower
per-hop latency along the reliability frontier costs energy.
"""


def test_fig12_tradeoff(run_experiment, benchmark):
    result = run_experiment("fig12")

    (series,) = result.series
    points = list(series.points)
    assert len(points) >= 10
    latencies = [x for x, _ in points]
    energies = [y for _, y in points]
    assert latencies == sorted(latencies)
    assert energies == sorted(energies, reverse=True)  # inverse relation

    # The fast-latency end costs several times the slow end.
    assert energies[0] > 2.0 * energies[-1]

    benchmark.extra_info["fast_end_joules"] = energies[0]
    benchmark.extra_info["slow_end_joules"] = energies[-1]
