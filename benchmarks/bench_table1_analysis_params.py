"""Table 1: analysis parameter values."""


def test_table1_analysis_params(run_experiment):
    result = run_experiment("table1")
    rows = dict(result.table_rows)
    assert rows["N"] == "5625 (75 x 75)"
    assert rows["PTX"] == "81 mW"
    assert rows["PI"] == "30 mW"
    assert rows["PS"] == "3 uW"
    assert rows["lambda"] == "0.01 packets/s"
    assert rows["L1"] == "~1.5 s"
    assert rows["Tframe"] == "10 s"
    assert rows["Tactive"] == "1 s"
