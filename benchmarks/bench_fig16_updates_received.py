"""Figure 16: fraction of updates received (detailed simulator).

Paper shape: PSM and NO PSM deliver ~everything; PBBF-0.5 is visibly
degraded until q reaches ~0.5; small p loses almost nothing.
"""

import pytest


def test_fig16_updates_received(run_experiment, benchmark):
    result = run_experiment("fig16")

    assert all(
        y == pytest.approx(1.0, abs=0.02)
        for _, y in result.get_series("PSM").points
    )
    assert all(
        y == pytest.approx(1.0, abs=0.02)
        for _, y in result.get_series("NO PSM").points
    )

    aggressive = result.get_series("PBBF-0.5")
    gentle = result.get_series("PBBF-0.1")
    # Degradation at low q for p=0.5, recovery by high q.
    assert aggressive.y_at(0.0) < 0.9
    assert aggressive.y_at(1.0) == pytest.approx(1.0, abs=0.02)
    # Small p stays close to lossless across the sweep.
    for q, y in gentle.points:
        if q >= 0.25 and y is not None:
            assert y > 0.95

    benchmark.extra_info["pbbf05_at_q0"] = aggressive.y_at(0.0)
