"""Figure 5: threshold behavior for 99% reliability (ideal grid).

Paper shape: like Figure 4 with every threshold shifted toward larger q.
"""

from repro.experiments import Scale, get_experiment


def test_fig05_threshold_99(run_experiment, benchmark):
    result = run_experiment("fig05")

    assert all(y == 1.0 for _, y in result.get_series("PSM").points)
    assert all(y == 1.0 for _, y in result.get_series("NO PSM").points)

    # 99% reliability is never easier than 90% at the same operating point.
    fig04 = get_experiment("fig04").run(Scale.fast())
    for label in ("PBBF-0.25", "PBBF-0.5", "PBBF-0.75"):
        series99 = dict(result.get_series(label).points)
        series90 = dict(fig04.get_series(label).points)
        for q, y99 in series99.items():
            assert y99 <= series90[q] + 1e-9

    benchmark.extra_info["pbbf05_at_q0.4"] = result.get_series("PBBF-0.5").y_at(0.4)
