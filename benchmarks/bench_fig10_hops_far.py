"""Figure 10: average hops travelled to reach far-distance nodes.

Paper shape: the Figure 9 stretch effect amplified by distance — absolute
stretch is larger for far nodes, and again collapses at high q.
"""

import pytest

from repro.experiments import Scale, get_experiment


def test_fig10_hops_far(run_experiment, benchmark):
    scale = Scale.fast()
    result = run_experiment("fig10", scale)
    d = scale.hop_distance_far

    assert all(
        y == pytest.approx(d) for _, y in result.get_series("PSM").points
    )

    series = result.get_series("PBBF-0.5")
    observed = [(q, y) for q, y in series.points if y is not None]
    assert observed, "far nodes must be reachable somewhere along the sweep"
    max_hops = max(y for _, y in observed)
    assert max_hops > d  # stretch in absolute hops

    # Far-node absolute stretch exceeds near-node absolute stretch.
    near = get_experiment("fig09").run(scale)
    near_series = near.get_series("PBBF-0.5")
    near_excess = max(
        y - scale.hop_distance_near
        for _, y in near_series.points
        if y is not None
    )
    far_excess = max(y - d for _, y in observed)
    assert far_excess >= near_excess - 0.5

    benchmark.extra_info["far_excess_hops"] = far_excess
