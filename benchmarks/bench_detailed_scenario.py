"""Detailed-simulator bench: scen03 regeneration and kernel speedup.

Two jobs share this module:

* pytest benchmarks — time one full regeneration of the mid-run-failure
  figure (scen03) on each kernel and assert the qualitative shape the
  figure exists for: delivery decays as the mid-run death fraction
  rises, on every sleep scheduler.  CI uploads the timings next to the
  kernel and analysis baselines.

* ``python benchmarks/bench_detailed_scenario.py`` — measure the
  event-heap reference loop against the seed-batched kernel on real
  campaign points (the Figures 17-18 density sweep) and write the
  result to ``BENCH_detailed.json`` at the repo root.  The committed
  copy of that file pins the speedup this repo claims; regenerate it on
  quiet hardware after touching the kernel.

Timing methodology for the A/B harness: the two kernels are interleaved
rep by rep (so machine-load drift hits both equally), gc is disabled
inside each timed region, and the headline is min-of-reps — the
standard estimator for "how fast does this code run", robust to the
multi-tenant noise that poisons means.  Parity is asserted on every
rep, so a timing run doubles as an end-to-end bit-identity check.
"""

import argparse
import gc
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation from a checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import clear_harness_caches  # noqa: F401  (shared helpers)

from repro.core.params import PBBFParams
from repro.detailed.batched import run_batch
from repro.detailed.config import CodeDistributionParameters
from repro.detailed.simulator import DetailedSimulator
from repro.experiments import Scale
from repro.runners import execution


def bench_scale() -> Scale:
    """The fast preset shrunk to bench size (seconds, not minutes)."""
    return replace(
        Scale.fast(),
        name="bench-detailed-scenario",
        detailed_scenario_nodes=14,
        detailed_scenario_duration=150.0,
        midrun_failure_fractions=(0.0, 0.3),
        scenario_seeds=1,
    )


def _assert_scen03_shape(result):
    fractions = sorted(
        {x for series in result.series for x, _ in series.points}
    )
    assert fractions[0] == 0.0 and fractions[-1] > 0.0
    for scheduler in ("PSM", "SMAC", "TMAC"):
        delivery = dict(result.get_series(f"delivery {scheduler}").points)
        assert delivery[fractions[-1]] <= delivery[0.0]
        assert delivery[fractions[-1]] > 0.0  # degrades, never collapses


def test_detailed_scenario_scen03(run_experiment):
    result = run_experiment("scen03", bench_scale())
    _assert_scen03_shape(result)


def test_detailed_scenario_scen03_reference_kernel(run_experiment):
    """Same regeneration on the event-heap loop, for the CI timing diff."""
    with execution(detailed_fast_path=False):
        result = run_experiment("scen03", bench_scale())
    _assert_scen03_shape(result)


# --------------------------------------------------------------------------
# Heap-vs-batched A/B harness (the __main__ entry point)
# --------------------------------------------------------------------------

#: Campaign points measured by the committed baseline: both sit on the
#: Figures 17-18 density sweep at full scale (Table 2's N=50, T=500 s,
#: q=0.25, 10 seeds per point).  The dense end is the headline — that is
#: where the heap loop hurts most — and Table 2's default density is
#: recorded alongside for transparency.
CAMPAIGN_POINTS = (
    {"label": "fig17-18 densest point", "p": 0.25, "q": 0.25, "density": 18.0},
    {"label": "fig17-18 default density", "p": 0.25, "q": 0.25, "density": 10.0},
)


def measure_point(
    p: float,
    q: float,
    density: float,
    n_nodes: int = 50,
    duration: float = 500.0,
    n_seeds: int = 10,
    reps: int = 5,
) -> dict:
    """Interleaved min-of-``reps`` A/B of one point's whole seed list."""
    params = PBBFParams(p, q)
    config = CodeDistributionParameters(
        n_nodes=n_nodes, density=density, duration=duration
    )
    seeds = list(range(n_seeds))

    def sims():
        return [DetailedSimulator(params, config, seed=s) for s in seeds]

    heap_s, batched_s = [], []
    for _ in range(reps):
        heap_sims = sims()
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        heap_results = [sim.run_reference() for sim in heap_sims]
        heap_s.append(time.perf_counter() - start)
        gc.enable()

        batch_sims = sims()
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        batched_results = run_batch(batch_sims)
        batched_s.append(time.perf_counter() - start)
        gc.enable()

        # A timing rep that is not bit-identical is a bug, not a datum.
        assert [r.node_joules for r in heap_results] == [
            r.node_joules for r in batched_results
        ]
        assert [vars(s) for r in heap_results for s in r.mac_stats] == [
            vars(s) for r in batched_results for s in r.mac_stats
        ]

    return {
        "p": p,
        "q": q,
        "density": density,
        "n_nodes": n_nodes,
        "duration_s": duration,
        "n_seeds": n_seeds,
        "heap_seconds": min(heap_s),
        "batched_seconds": min(batched_s),
        "speedup": round(min(heap_s) / min(batched_s), 2),
        "heap_seconds_reps": [round(t, 4) for t in heap_s],
        "batched_seconds_reps": [round(t, 4) for t in batched_s],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the event-heap vs seed-batched detailed kernels"
    )
    parser.add_argument(
        "--reps", type=int, default=5, help="interleaved A/B repetitions"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunk points for CI (smaller network, shorter runs)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_detailed.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    size = (
        {"n_nodes": 24, "duration": 150.0, "n_seeds": 4}
        if args.quick
        else {"n_nodes": 50, "duration": 500.0, "n_seeds": 10}
    )
    points = []
    for spec in CAMPAIGN_POINTS:
        spec = dict(spec)
        label = spec.pop("label") + (" (quick)" if args.quick else "")
        print(f"measuring {label} ...", flush=True)
        point = {"label": label}
        point.update(measure_point(**spec, **size, reps=args.reps))
        print(
            f"  heap {point['heap_seconds']:.3f}s"
            f"  batched {point['batched_seconds']:.3f}s"
            f"  speedup {point['speedup']:.2f}x",
            flush=True,
        )
        points.append(point)

    report = {
        "benchmark": "detailed-kernel-speedup",
        "description": (
            "Event-heap reference loop vs seed-batched SoA kernel on "
            "Figures 17-18 campaign points (one kernel call per point's "
            "seed list); parity asserted on every rep"
        ),
        "method": (
            f"interleaved A/B, min of {args.reps} reps, gc disabled "
            "inside timed regions"
        ),
        "command": "python benchmarks/bench_detailed_scenario.py",
        "quick": args.quick,
        "points": points,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
