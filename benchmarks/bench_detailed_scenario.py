"""Detailed-scenario bench: scen03 regeneration at a reduced scale.

Times one full regeneration of the mid-run-failure figure (the detailed
simulator running scenario-resolved worlds with death schedules), and
asserts the qualitative shape the figure exists for: delivery decays as
the mid-run death fraction rises, on every sleep scheduler.  CI uploads
the timing as ``BENCH_detailed.json`` next to the kernel and analysis
baselines.
"""

from dataclasses import replace

from conftest import clear_harness_caches  # noqa: F401  (shared helpers)

from repro.experiments import Scale


def bench_scale() -> Scale:
    """The fast preset shrunk to bench size (seconds, not minutes)."""
    return replace(
        Scale.fast(),
        name="bench-detailed-scenario",
        detailed_scenario_nodes=14,
        detailed_scenario_duration=150.0,
        midrun_failure_fractions=(0.0, 0.3),
        scenario_seeds=1,
    )


def test_detailed_scenario_scen03(run_experiment):
    result = run_experiment("scen03", bench_scale())
    fractions = sorted(
        {x for series in result.series for x, _ in series.points}
    )
    assert fractions[0] == 0.0 and fractions[-1] > 0.0
    for scheduler in ("PSM", "SMAC", "TMAC"):
        delivery = dict(result.get_series(f"delivery {scheduler}").points)
        assert delivery[fractions[-1]] <= delivery[0.0]
        assert delivery[fractions[-1]] > 0.0  # degrades, never collapses
