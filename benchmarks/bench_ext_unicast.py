"""Extension bench: unicast power-save integration (paper future work).

Measures the latency distribution of one-hop unicast exchanges under the
three regimes: plain announced PSM unicast, PBBF's immediate path with a
receptive (q=1) peer, and the immediate path falling back after a miss.
"""

import random
from typing import List

import pytest

from repro.core.params import PBBFParams
from repro.core.pbbf import PBBFAgent
from repro.energy.model import MICA2, RadioEnergyModel
from repro.mac.base import MacConfig
from repro.mac.unicast import UnicastPSMMac
from repro.net.channel import Channel
from repro.net.packet import Packet, PacketKind
from repro.net.topology import Topology
from repro.sim.engine import Engine


class _Node:
    def __init__(self, radio, mac):
        self.radio = radio
        self.mac = mac

    def is_listening_interval(self, start, end):
        return self.radio.is_listening_interval(start, end)

    def on_receive(self, packet):
        self.mac.handle_receive(packet)

    def on_collision(self, packet):
        self.mac.handle_collision(packet)


def _pair(p, q, seed):
    engine = Engine()
    topology = Topology([(0.0, 0.0), (1.0, 0.0)], [[1], [0]])
    channel = Channel(engine, topology, 19200.0)
    deliveries = []
    macs = []
    for node_id in range(2):
        radio = RadioEnergyModel(MICA2)
        agent = PBBFAgent(PBBFParams(p=p, q=q), random.Random(seed * 10 + node_id))
        mac = UnicastPSMMac(
            engine, channel, node_id, agent, radio,
            lambda pkt, t: deliveries.append(t),
            random.Random(seed * 20 + node_id),
            config=MacConfig(send_beacons=False),
        )
        channel.attach(node_id, _Node(radio, mac))
        macs.append(mac)
    for mac in macs:
        mac.start()
    return engine, macs, deliveries


def _one_exchange_latency(p, q, seed, inject_at=5.0) -> float:
    engine, macs, deliveries = _pair(p, q, seed)
    packet = Packet(
        kind=PacketKind.DATA, origin=0, sender=0, seqno=seed,
        size_bytes=64, destination=1,
    )
    engine.schedule(inject_at, lambda: macs[0].send_unicast(packet))
    engine.run(until=60.0)
    assert deliveries, "unicast must eventually deliver"
    return deliveries[0] - inject_at


def _mean_latency(p, q) -> float:
    values = [_one_exchange_latency(p, q, seed) for seed in range(1, 6)]
    return sum(values) / len(values)


def test_ext_unicast_latency_regimes(benchmark):
    latencies = benchmark.pedantic(
        lambda: {
            "announced (PSM)": _mean_latency(0.0, 0.0),
            "immediate, peer awake": _mean_latency(1.0, 1.0),
            "immediate, fallback": _mean_latency(1.0, 0.0),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print("== extension: one-hop unicast latency (injected mid-sleep) ==")
    for regime, latency in latencies.items():
        print(f"  {regime:<22}: {latency:.2f} s")
        benchmark.extra_info[regime] = latency

    # The immediate path with a receptive peer skips the next-window wait
    # entirely; the fallback pays it (plus the wasted attempt), landing at
    # or above plain announced PSM.
    assert latencies["immediate, peer awake"] < 1.0
    assert latencies["announced (PSM)"] > 4.0
    assert latencies["immediate, fallback"] >= latencies["announced (PSM)"] * 0.9
