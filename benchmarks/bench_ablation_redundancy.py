"""Ablation: broadcast redundancy under duplicate suppression.

The paper's Section 2 motivation: flooding creates redundant receptions
(every node hears each broadcast from several neighbours), which is pure
energy waste — and exactly what gives PBBF its slack to drop immediate
forwards.  This bench measures duplicate receptions per delivered packet
as density grows, the quantity Figure 18 leans on ("increasing delta
increases the number of redundant broadcasts that a node receives").
"""

import pytest

from repro.core.params import PBBFParams
from repro.detailed.config import CodeDistributionParameters
from repro.detailed.simulator import DetailedSimulator

DENSITIES = (8.0, 12.0, 16.0)


def _redundancy(density: float) -> float:
    config = CodeDistributionParameters(
        n_nodes=30, density=density, duration=300.0
    )
    result = DetailedSimulator(PBBFParams.psm(), config, seed=2).run()
    duplicates = sum(s.duplicates_dropped for s in result.mac_stats)
    fresh = sum(s.data_received for s in result.mac_stats)
    return duplicates / max(1, fresh)


def test_ablation_redundancy_vs_density(benchmark):
    redundancy = benchmark.pedantic(
        lambda: {d: _redundancy(d) for d in DENSITIES}, rounds=1, iterations=1
    )
    print()
    print("== ablation: duplicate receptions per fresh delivery (PSM) ==")
    for density, ratio in redundancy.items():
        print(f"  delta={density:g}: {ratio:.2f} duplicates per delivery")
        benchmark.extra_info[f"delta{density:g}"] = ratio
    assert redundancy[16.0] > redundancy[8.0]  # redundancy grows with density
    assert redundancy[8.0] > 0.5  # flooding is already wasteful at delta=8
