"""Figure 13: average energy consumption (detailed simulator).

Paper shape: PSM saves roughly 2 J per update over NO PSM; PBBF's energy
grows linearly with q and overlaps across p values (q dominates p).
"""

import pytest


def test_fig13_energy_detailed(run_experiment, benchmark):
    result = run_experiment("fig13")

    psm = result.get_series("PSM").points[0][1]
    no_psm = result.get_series("NO PSM").points[0][1]
    assert no_psm == pytest.approx(3.0, rel=0.05)
    assert 1.4 < no_psm - psm < 2.6  # "saves almost 2 Joules per update"

    # Energy increasing in q for every PBBF line, converging near NO PSM.
    for label in [s.label for s in result.series if s.label.startswith("PBBF")]:
        points = sorted(result.get_series(label).points)
        ys = [y for _, y in points if y is not None]
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(no_psm, rel=0.1)

    # q dominates p: PBBF lines overlap at matching q >= 0.25.
    labels = [s.label for s in result.series if s.label.startswith("PBBF")]
    reference = dict(result.get_series(labels[0]).points)
    for label in labels[1:]:
        for q, y in result.get_series(label).points:
            if q >= 0.25 and y is not None and reference.get(q) is not None:
                assert y == pytest.approx(reference[q], rel=0.1)

    benchmark.extra_info["psm_joules"] = psm
    benchmark.extra_info["no_psm_joules"] = no_psm
