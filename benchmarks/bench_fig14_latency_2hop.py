"""Figure 14: 2-hop average update latency (detailed simulator).

Paper shape: PSM flat near AW + BI (~11 s); NO PSM far below; PBBF starts
near/above PSM at small q and crosses below it as p and q grow.
"""

import pytest


def test_fig14_latency_2hop(run_experiment, benchmark):
    result = run_experiment("fig14")

    psm = result.get_series("PSM").points[0][1]
    no_psm = result.get_series("NO PSM").points[0][1]
    assert 10.0 < psm < 14.0  # ~AW + BI
    assert no_psm < 1.0

    # Crossover: the aggressive PBBF line beats PSM by the top of the sweep.
    aggressive = result.get_series("PBBF-0.5")
    assert aggressive.y_at(1.0) < psm
    # And is not clearly better at the bottom (no free lunch at low q).
    assert aggressive.y_at(0.0) > psm - 3.0

    benchmark.extra_info["psm_2hop_s"] = psm
    benchmark.extra_info["pbbf05_q1_2hop_s"] = aggressive.y_at(1.0)
