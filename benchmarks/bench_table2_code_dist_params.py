"""Table 2: code distribution parameter values."""


def test_table2_code_distribution_params(run_experiment):
    result = run_experiment("table2")
    rows = dict(result.table_rows)
    assert rows["N"] == "50"
    assert rows["Delta"] == "10"
    assert rows["Total Packet Size"] == "64 bytes"
    assert rows["Data Packet Payload"] == "30 bytes"
    assert rows["k"] == "1"
