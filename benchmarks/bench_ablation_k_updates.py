"""Ablation: the k most-recent-updates knob of the code distribution app.

Table 2 presents k=1, where a missed packet loses its update forever.
The paper notes k trades byte overhead against misses ("nodes do not need
to receive every broadcast as long as they receive about 1/k-th of the
packets").  This ablation injects random reception loss and shows delivery
recovering as k grows.
"""

import pytest

from repro.core.params import PBBFParams
from repro.detailed.config import CodeDistributionParameters
from repro.detailed.simulator import DetailedSimulator

K_VALUES = (1, 2, 4)
LOSS = 0.35
SEEDS = range(3)


def _delivery(k: int) -> float:
    values = []
    for seed in SEEDS:
        config = CodeDistributionParameters(
            n_nodes=24, density=10.0, duration=400.0, k=k
        )
        result = DetailedSimulator(
            PBBFParams.psm(), config, seed=seed, loss_probability=LOSS
        ).run()
        values.append(result.metrics.mean_updates_received_fraction())
    return sum(values) / len(values)


def test_ablation_k_updates(benchmark):
    delivery = benchmark.pedantic(
        lambda: {k: _delivery(k) for k in K_VALUES}, rounds=1, iterations=1
    )
    print()
    print(f"== ablation: k updates per packet (loss={LOSS}) ==")
    for k, fraction in delivery.items():
        print(f"  k={k}: delivery {fraction:.3f}")
        benchmark.extra_info[f"k{k}"] = fraction
    # Redundancy must recover deliveries lost to the injected packet loss.
    assert delivery[4] > delivery[1]
    assert delivery[2] >= delivery[1] - 0.02
