"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark regenerates one paper artifact at the reduced (``fast``)
scale, asserts the paper's qualitative shape, records headline values in
``benchmark.extra_info``, and prints the same rows/series the paper plots
(run pytest with ``-s`` to see them inline).

Timing methodology: memoization inside the harness would otherwise let a
second run return instantly, so every benchmark clears the harness caches
and times exactly one full regeneration (``rounds=1``).
"""

from __future__ import annotations

import pytest

from repro.experiments import Scale, get_experiment
from repro.experiments.detailed_figures import _detailed_run
from repro.experiments.ideal_figures import _ideal_point
from repro.experiments.percolation_figures import _critical_fraction


def clear_harness_caches() -> None:
    """Drop memoized simulation points so timings measure real work."""
    _ideal_point.cache_clear()
    _detailed_run.cache_clear()
    _critical_fraction.cache_clear()


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark one artifact regeneration and return its result."""

    def _run(experiment_id: str, scale: Scale = None):
        scale = scale if scale is not None else Scale.fast()
        spec = get_experiment(experiment_id)

        def regenerate():
            clear_harness_caches()
            return spec.run(scale)

        result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
        benchmark.extra_info["experiment"] = experiment_id
        benchmark.extra_info["scale"] = scale.name
        print()
        print(result.render())
        return result

    return _run
