"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark regenerates one paper artifact at the reduced (``fast``)
scale, asserts the paper's qualitative shape, records headline values in
``benchmark.extra_info``, and prints the same rows/series the paper plots
(run pytest with ``-s`` to see them inline).

Timing methodology: the campaign runner memoizes aggressively (in-process
memo, point-evaluator caches, on-disk result cache), so a second run
would otherwise return instantly.  Every benchmark therefore clears the
in-process layers, disables the disk cache for the duration of the timed
call, and times exactly one full regeneration (``rounds=1``).
"""

from __future__ import annotations

import pytest

from repro.experiments import Scale, get_experiment
from repro.runners import clear_run_caches, execution


def clear_harness_caches() -> None:
    """Drop every in-process memo so timings measure real work."""
    clear_run_caches()


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark one artifact regeneration and return its result."""

    def _run(experiment_id: str, scale: Scale = None):
        scale = scale if scale is not None else Scale.fast()
        spec = get_experiment(experiment_id)

        def regenerate():
            clear_harness_caches()
            with execution(use_cache=False):
                return spec.run(scale)

        result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
        benchmark.extra_info["experiment"] = experiment_id
        benchmark.extra_info["scale"] = scale.name
        print()
        print(result.render())
        return result

    return _run
