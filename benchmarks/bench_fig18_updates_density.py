"""Figure 18: fraction of updates received vs density (detailed, q=0.25).

Paper shape: PBBF's delivery fraction improves with density (more
redundant broadcast copies per node); PSM and NO PSM sit at ~1.0.
"""

import pytest


def test_fig18_updates_density(run_experiment, benchmark):
    result = run_experiment("fig18")

    for label in ("PSM", "NO PSM"):
        for _, y in result.get_series(label).points:
            assert y == pytest.approx(1.0, abs=0.05)

    aggressive = result.get_series("PBBF-0.5")
    points = sorted(aggressive.points)
    sparse, dense = points[0][1], points[-1][1]
    assert dense >= sparse  # delivery improves with density

    benchmark.extra_info["pbbf05_sparse"] = sparse
    benchmark.extra_info["pbbf05_dense"] = dense
