"""Figure 4: threshold behavior for 90% reliability (ideal grid).

Paper shape: PSM and NO PSM flat at 1.0; each PBBF-p curve low at small q,
jumping to 1.0 past a p-dependent threshold (larger p, larger threshold).
"""


def test_fig04_threshold_90(run_experiment, benchmark):
    result = run_experiment("fig04")

    assert all(y == 1.0 for _, y in result.get_series("PSM").points)
    assert all(y == 1.0 for _, y in result.get_series("NO PSM").points)

    # Threshold structure: every PBBF line ends at 1.0 at q=1 and the
    # larger-p lines start lower at q=0.
    small_p = result.get_series("PBBF-0.05")
    large_p = result.get_series("PBBF-0.75")
    assert small_p.y_at(1.0) == 1.0
    assert large_p.y_at(1.0) == 1.0
    assert large_p.y_at(0.0) <= small_p.y_at(0.0)
    assert large_p.y_at(0.0) < 0.5  # deep sub-threshold at q=0

    benchmark.extra_info["pbbf075_at_q0"] = large_p.y_at(0.0)
    benchmark.extra_info["pbbf075_at_q1"] = large_p.y_at(1.0)
