"""Ablation: q-coin scope — per frame (Figure 3) vs per broadcast.

The paper's Sleep-Decision-Handler flips the stay-awake coin once per
sleep period.  The bond-percolation analysis, strictly speaking, models a
*single* coin per (link, broadcast).  This ablation quantifies how much
that modelling gap matters: per-frame renewal gives a node multiple
chances to catch relayed copies arriving in different frames, so coverage
at a given (p, q) is at least as good as the one-shot variant.
"""

import pytest

from repro.core.params import PBBFParams
from repro.ideal.config import AnalysisParameters
from repro.ideal.simulator import IdealSimulator
from repro.net.topology import GridTopology

GRID = GridTopology(21)
CONFIG = AnalysisParameters(grid_side=21)
POINTS = [(0.5, 0.3), (0.5, 0.5), (0.75, 0.5)]
SEEDS = range(6)


def _coverage(scope: str) -> dict:
    coverage = {}
    for p, q in POINTS:
        values = []
        for seed in SEEDS:
            sim = IdealSimulator(
                GRID, PBBFParams(p=p, q=q), CONFIG, seed=seed,
                q_coin_scope=scope,
            )
            values.append(sim.run_broadcast(0).coverage)
        coverage[(p, q)] = sum(values) / len(values)
    return coverage


def test_ablation_qcoin_scope(benchmark):
    results = benchmark.pedantic(
        lambda: (_coverage("frame"), _coverage("broadcast")),
        rounds=1,
        iterations=1,
    )
    per_frame, per_broadcast = results
    print()
    print("== ablation: q-coin scope (mean coverage) ==")
    print("  (p, q)        per-frame   per-broadcast")
    for point in POINTS:
        print(
            f"  {point}:   {per_frame[point]:.3f}       "
            f"{per_broadcast[point]:.3f}"
        )
    for point in POINTS:
        # Per-frame renewal can only help coverage (fresh chances per frame).
        assert per_frame[point] >= per_broadcast[point] - 0.05
        benchmark.extra_info[f"frame_{point}"] = per_frame[point]
        benchmark.extra_info[f"broadcast_{point}"] = per_broadcast[point]
