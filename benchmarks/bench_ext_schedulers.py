"""Extension bench: PBBF across sleep schedulers (PSM / S-MAC / T-MAC).

The paper claims PBBF integrates with any sleep scheduler but evaluates
only 802.11 PSM.  This bench runs the identical workload and (p, q) over
the three schedulers and asserts each host's signature behaviour.
"""

import pytest

from repro.core.params import PBBFParams
from repro.detailed.config import CodeDistributionParameters
from repro.detailed.simulator import DetailedSimulator

CONFIG = CodeDistributionParameters(n_nodes=30, density=10.0, duration=300.0)
PARAMS = PBBFParams(p=0.25, q=0.4)
SEEDS = (5, 6)


def _measure(scheduler: str) -> dict:
    delivery, latency, joules = [], [], []
    for seed in SEEDS:
        metrics = DetailedSimulator(
            PARAMS, CONFIG, seed=seed, scheduler=scheduler
        ).run().metrics
        delivery.append(metrics.mean_updates_received_fraction())
        mean_latency = metrics.mean_update_latency()
        if mean_latency is not None:
            latency.append(mean_latency)
        joules.append(metrics.joules_per_update_per_node())
    return {
        "delivery": sum(delivery) / len(delivery),
        "latency": sum(latency) / len(latency),
        "joules": sum(joules) / len(joules),
    }


def test_ext_scheduler_portability(benchmark):
    results = benchmark.pedantic(
        lambda: {s: _measure(s) for s in ("psm", "smac", "tmac")},
        rounds=1,
        iterations=1,
    )
    print()
    print("== extension: PBBF(.25,.4) across sleep schedulers ==")
    for scheduler, metrics in results.items():
        print(
            f"  {scheduler:<5}: delivery {metrics['delivery']:.3f}  "
            f"latency {metrics['latency']:.2f}s  "
            f"{metrics['joules']:.2f} J/update"
        )
        benchmark.extra_info[scheduler] = metrics

    # PSM and S-MAC carry the workload essentially losslessly.
    assert results["psm"]["delivery"] > 0.9
    assert results["smac"]["delivery"] > 0.9
    # T-MAC exhibits its textbook *early-sleeping problem* on multi-hop
    # broadcast: nodes beyond earshot of the current transmission time out
    # and sleep while the flood is still hops away, so delivery dips —
    # exactly the behaviour the original T-MAC paper added FRTS to fight.
    assert 0.6 < results["tmac"]["delivery"] < results["smac"]["delivery"]
    # Host signatures: T-MAC cheapest on sparse traffic; S-MAC's
    # in-period flooding beats PSM's announce-then-wait latency.
    assert results["tmac"]["joules"] < results["psm"]["joules"]
    assert results["smac"]["latency"] < results["psm"]["latency"]
