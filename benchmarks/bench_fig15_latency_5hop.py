"""Figure 15: 5-hop average update latency (detailed simulator).

Paper shape: like Figure 14 scaled by distance (PSM near 4-5 beacon
intervals), with the PBBF-beats-PSM crossover arriving at a *lower* q.
"""

import pytest

from repro.experiments import Scale, get_experiment


def _crossover_q(series, baseline):
    """First q at which the series dips below the PSM baseline."""
    for q, y in sorted(series.points):
        if y is not None and y < baseline:
            return q
    return None


def test_fig15_latency_5hop(run_experiment, benchmark):
    scale = Scale.fast()
    result = run_experiment("fig15", scale)

    psm = result.get_series("PSM").points[0][1]
    assert 30.0 < psm < 55.0  # ~4-5 beacon intervals

    aggressive = result.get_series("PBBF-0.5")
    assert aggressive.y_at(1.0) < psm

    # Crossover at 5 hops happens no later than at 2 hops.
    fig14 = get_experiment("fig14").run(scale)
    cross_5 = _crossover_q(aggressive, psm)
    cross_2 = _crossover_q(
        fig14.get_series("PBBF-0.5"), fig14.get_series("PSM").points[0][1]
    )
    assert cross_5 is not None
    if cross_2 is not None:
        assert cross_5 <= cross_2

    benchmark.extra_info["psm_5hop_s"] = psm
    benchmark.extra_info["crossover_q"] = cross_5
