"""Micro-benchmarks of the simulation substrates.

Unlike the figure benches (one timed regeneration each), these measure the
steady-state throughput of the kernels every experiment leans on, and
guard against performance regressions in the hot paths.
"""

import random

import numpy as np

from repro.core.params import PBBFParams
from repro.ideal.config import AnalysisParameters
from repro.ideal.simulator import IdealSimulator
from repro.net.topology import GridTopology, RandomTopology
from repro.percolation.bond import bond_sweep
from repro.sim.engine import Engine
from repro.util.rng import hash_to_unit_interval, hash_to_unit_interval_array
from repro.util.union_find import UnionFind


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire cost of the event loop (10k events per round)."""

    def run():
        engine = Engine()
        for i in range(10_000):
            engine.schedule(float(i % 97) * 0.01, lambda: None)
        engine.run()
        return engine.events_fired

    fired = benchmark(run)
    assert fired == 10_000


def test_union_find_throughput(benchmark):
    """Union/find mix on 10k elements."""
    rng = random.Random(1)
    pairs = [(rng.randrange(10_000), rng.randrange(10_000)) for _ in range(20_000)]

    def run():
        uf = UnionFind(10_000)
        for a, b in pairs:
            uf.union(a, b)
        return uf.n_components

    components = benchmark(run)
    assert components >= 1


def test_bond_sweep_throughput(benchmark):
    """One full Newman-Ziff sweep of a 40x40 grid (the paper's largest)."""
    grid = GridTopology(40)

    def run():
        return bond_sweep(grid, random.Random(7)).n_edges

    edges = benchmark(run)
    assert edges == grid.n_edges


def test_ideal_broadcast_throughput(benchmark):
    """One broadcast on the paper's full 75x75 analysis grid.

    Uses the default execution path (the vectorized frontier kernel);
    compare against ``test_ideal_broadcast_scalar_reference`` for the
    fast-path speedup the parity suite certifies as bit-identical.
    """
    grid = GridTopology(75)
    sim = IdealSimulator(
        grid, PBBFParams(0.5, 0.6), AnalysisParameters(), seed=3
    )

    def run():
        return sim.run_broadcast(0).n_received

    received = benchmark(run)
    assert received > 1000


def test_ideal_broadcast_scalar_reference(benchmark):
    """The same 75x75 broadcast through the scalar reference loop."""
    grid = GridTopology(75)
    sim = IdealSimulator(
        grid, PBBFParams(0.5, 0.6), AnalysisParameters(), seed=3, fast_path=False
    )

    def run():
        return sim.run_broadcast(0).n_received

    received = benchmark(run)
    assert received > 1000


def test_random_topology_broadcast_throughput(benchmark):
    """One broadcast on a 600-node connected unit-disk deployment.

    The grid benches exercise the fast path's best case (uniform degree
    4, dense padded rows); this tracks the irregular-degree regime the
    scenario layer's random/clustered families run in, where the padded
    frontier matrix is ragged and the gather masks carry real weight.
    """
    topo = RandomTopology.connected(600, 10.0, 12.0, random.Random(42))
    sim = IdealSimulator(
        topo, PBBFParams(0.5, 0.6), AnalysisParameters(), seed=3, source=0
    )

    def run():
        return sim.run_broadcast(0).n_received

    received = benchmark(run)
    assert received > 300


def test_batched_coin_hash_throughput(benchmark):
    """One whole-network batched coin draw (the fast path's unit of work)."""
    nodes = np.arange(75 * 75)

    def run():
        return hash_to_unit_interval_array(7, nodes, 12345)

    coins = benchmark(run)
    assert coins.shape == nodes.shape
    assert float(coins[0]) == hash_to_unit_interval(7, 0, 12345)


def test_hop_distance_bfs_throughput(benchmark):
    """Vectorized CSR BFS over the 75x75 grid.

    A fresh topology per round (built in untimed setup) keeps the
    per-source memo cold without reaching into private cache state.
    """

    def fresh_grid():
        return (GridTopology(75),), {}

    def run(grid):
        return grid.hop_distance_array(grid.center_node())

    distances = benchmark.pedantic(run, setup=fresh_grid, rounds=30)
    assert int(distances.max()) == 74
