"""Micro-benchmarks of the simulation substrates.

Unlike the figure benches (one timed regeneration each), these measure the
steady-state throughput of the kernels every experiment leans on, and
guard against performance regressions in the hot paths.
"""

import random

from repro.core.params import PBBFParams
from repro.ideal.config import AnalysisParameters
from repro.ideal.simulator import IdealSimulator
from repro.net.topology import GridTopology
from repro.percolation.bond import bond_sweep
from repro.sim.engine import Engine
from repro.util.union_find import UnionFind


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire cost of the event loop (10k events per round)."""

    def run():
        engine = Engine()
        for i in range(10_000):
            engine.schedule(float(i % 97) * 0.01, lambda: None)
        engine.run()
        return engine.events_fired

    fired = benchmark(run)
    assert fired == 10_000


def test_union_find_throughput(benchmark):
    """Union/find mix on 10k elements."""
    rng = random.Random(1)
    pairs = [(rng.randrange(10_000), rng.randrange(10_000)) for _ in range(20_000)]

    def run():
        uf = UnionFind(10_000)
        for a, b in pairs:
            uf.union(a, b)
        return uf.n_components

    components = benchmark(run)
    assert components >= 1


def test_bond_sweep_throughput(benchmark):
    """One full Newman-Ziff sweep of a 40x40 grid (the paper's largest)."""
    grid = GridTopology(40)

    def run():
        return bond_sweep(grid, random.Random(7)).n_edges

    edges = benchmark(run)
    assert edges == grid.n_edges


def test_ideal_broadcast_throughput(benchmark):
    """One broadcast on the paper's full 75x75 analysis grid."""
    grid = GridTopology(75)
    sim = IdealSimulator(
        grid, PBBFParams(0.5, 0.6), AnalysisParameters(), seed=3
    )

    def run():
        return sim.run_broadcast(0).n_received

    received = benchmark(run)
    assert received > 1000
