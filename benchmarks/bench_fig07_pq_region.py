"""Figure 7: the p-q feasibility frontier per reliability level.

Paper shape: each curve is flat at q=0 for small p, then rises; higher
reliability levels lie strictly above lower ones; at p=1 the minimum q
equals the critical bond fraction.
"""

import pytest


def test_fig07_pq_region(run_experiment, benchmark):
    result = run_experiment("fig07")

    for label in ("80% reliability", "99% reliability", "100% reliability"):
        series = result.get_series(label)
        qs = [y for _, y in series.points]
        assert qs == sorted(qs)  # nondecreasing in p
        assert series.y_at(0.0) == 0.0

    low = dict(result.get_series("80% reliability").points)
    high = dict(result.get_series("100% reliability").points)
    assert all(high[p] >= low[p] for p in low)

    # At p=1 the frontier hits q = pc exactly (Remark 1 algebra).
    pc99 = result.get_series("99% reliability").y_at(1.0)
    assert 0.5 < pc99 < 1.0

    benchmark.extra_info["q_at_p1_99"] = pc99
