"""Figure 6: critical bond fraction for grid topologies.

Paper shape: more occupied bonds are needed for higher reliability levels;
the 100% level rises with grid size while partial levels drift toward the
infinite-lattice bond threshold (0.5) from above.
"""


def test_fig06_critical_bonds(run_experiment, benchmark):
    result = run_experiment("fig06")

    sizes = result.get_series("80% reliability").xs()
    for size in sizes:
        thresholds = [
            result.get_series(f"{level} reliability").y_at(size)
            for level in ("80%", "90%", "99%", "100%")
        ]
        assert thresholds == sorted(thresholds)  # ordered by reliability
        assert thresholds[0] > 0.5  # partial coverage still above bond pc
        assert thresholds[-1] < 1.0

    # 100% coverage gets harder with grid size (more sites must connect).
    full = result.get_series("100% reliability")
    assert full.y_at(sizes[-1]) > full.y_at(sizes[0])

    benchmark.extra_info["pc99_largest_grid"] = result.get_series(
        "99% reliability"
    ).y_at(sizes[-1])
