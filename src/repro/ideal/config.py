"""Table 1: the analysis parameter values."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.energy.model import MICA2, PowerProfile
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class AnalysisParameters:
    """The Section 4 configuration (paper Table 1).

    Attributes
    ----------
    grid_side:
        Side of the square analysis grid; N = grid_side**2 (75 -> 5625).
    power:
        Radio power profile; defaults to the Mica2 values
        (P_TX = 81 mW, P_I = 30 mW, P_S = 3 uW).
    update_rate:
        lambda, broadcasts generated at the source per second (0.01/s).
    l1:
        Time to transmit a data packet immediately — channel access plus
        serialization.  The paper uses ~1.5 s, calibrated from its ns-2
        runs; we keep that as the default and re-calibrate in
        EXPERIMENTS.md from our detailed simulator.
    t_frame:
        Frame (beacon-interval) length, 10 s.
    t_active:
        Active (ATIM-window) time per frame, 1 s.
    packet_size_bytes / bit_rate_bps:
        On-air sizing used only for the small transmit-energy premium
        (64 bytes at 19.2 kbps ~ 26.7 ms per transmission).
    """

    grid_side: int = 75
    power: PowerProfile = MICA2
    update_rate: float = 0.01
    l1: float = 1.5
    t_frame: float = 10.0
    t_active: float = 1.0
    packet_size_bytes: int = 64
    bit_rate_bps: float = 19200.0

    def __post_init__(self) -> None:
        check_positive_int("grid_side", self.grid_side)
        check_positive("update_rate", self.update_rate)
        check_positive("l1", self.l1)
        check_positive("t_frame", self.t_frame)
        check_positive("t_active", self.t_active)
        check_positive_int("packet_size_bytes", self.packet_size_bytes)
        check_positive("bit_rate_bps", self.bit_rate_bps)
        if self.t_active >= self.t_frame:
            raise ValueError(
                f"t_active ({self.t_active}) must be < t_frame ({self.t_frame})"
            )

    @property
    def n_nodes(self) -> int:
        """Total node count N (Table 1: 5625)."""
        return self.grid_side * self.grid_side

    @property
    def t_sleep(self) -> float:
        """Sleep time per frame, ``Tframe - Tactive``."""
        return self.t_frame - self.t_active

    @property
    def update_interval(self) -> float:
        """Seconds between updates at the source, ``1 / lambda``."""
        return 1.0 / self.update_rate

    @property
    def packet_airtime(self) -> float:
        """Serialization time of one data packet."""
        return self.packet_size_bytes * 8.0 / self.bit_rate_bps

    def table_rows(self) -> List[Tuple[str, str]]:
        """Render the Table 1 rows (parameter, value) for the bench harness."""
        return [
            ("N", f"{self.n_nodes} ({self.grid_side} x {self.grid_side})"),
            ("PTX", f"{self.power.tx_w * 1e3:g} mW"),
            ("PI", f"{self.power.listen_w * 1e3:g} mW"),
            ("PS", f"{self.power.sleep_w * 1e6:g} uW"),
            ("lambda", f"{self.update_rate:g} packets/s"),
            ("L1", f"~{self.l1:g} s"),
            ("Tframe", f"{self.t_frame:g} s"),
            ("Tactive", f"{self.t_active:g} s"),
        ]
