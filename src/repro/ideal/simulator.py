"""Earliest-arrival broadcast propagation on an ideal MAC/PHY.

Model (Section 4's "ideal MAC and physical layer with no collisions or
interference"):

* Time is divided into frames of ``Tframe`` seconds.  The first
  ``Tactive`` seconds of each frame are the ATIM window, during which
  **every** node is awake.  Outside the window a node is asleep unless its
  per-frame q-coin came up heads.
* An update is generated at the source inside an ATIM window, announced
  there, and transmitted right after the window (a *normal* broadcast):
  every neighbour receives it, ``L1`` channel-access seconds after the
  window closes.
* A node receiving a broadcast for the first time flips its p-coin
  (Figure 3): with probability p it forwards *immediately* — ``L1`` later,
  heard only by neighbours awake at that instant — otherwise it queues the
  packet, announces it in the next ATIM window, and transmits it ``L1``
  after that window closes, heard by every neighbour.
* Data packets are never sent inside an ATIM window (the 802.11 PSM rule
  the paper notes in Section 3); an immediate forward that would land in a
  window is deferred to the window's end.
* Duplicates are dropped and never re-forwarded, so each broadcast builds
  a spanning tree of first-arrival links.

Coin flips are *indexed* (hash-based on ``(node, frame)`` and
``(node, broadcast)``): the answer never depends on event processing
order, and overlapping broadcasts see consistent awake schedules.

The simulator is deliberately not built on :mod:`repro.sim` — propagation
on an ideal PHY is a deterministic earliest-arrival relaxation, so a
priority queue over arrival times is both simpler and an order of magnitude
faster than a full event-driven MAC, which matters at the paper's 5625-node
scale.  The detailed simulator (:mod:`repro.detailed`) is the event-driven
counterpart.
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.params import PBBFParams
from repro.ideal.config import AnalysisParameters
from repro.net.topology import Topology, bucket_by_distance
from repro.util.rng import hash_to_unit_interval, hash_to_unit_interval_array
from repro.util.validation import check_non_negative_int, check_probability


class SchedulingMode(enum.Enum):
    """Which radio schedule the network runs."""

    #: PSM frames with PBBF's p/q coins (plain PSM is the p=q=0 corner).
    PSM_PBBF = "psm_pbbf"
    #: Radios always listening, no frames at all (the paper's "NO PSM").
    ALWAYS_ON = "always_on"


@dataclass(frozen=True)
class BroadcastOutcome:
    """Per-broadcast propagation record.

    ``receive_times[v]`` / ``hops[v]`` are ``None`` for nodes the broadcast
    never reached.  The source has ``receive_times[source] == t_generated``
    and ``hops[source] == 0``.
    """

    index: int
    source: int
    t_generated: float
    receive_times: Tuple[Optional[float], ...]
    hops: Tuple[Optional[int], ...]
    n_transmissions: int
    n_immediate_forwards: int
    n_normal_forwards: int
    #: ``parents[v]`` is the node whose transmission delivered v's first
    #: copy (None for the source and for unreached nodes).  First-arrival
    #: links form the spanning tree the paper's Eq. 11 analysis is about.
    parents: Tuple[Optional[int], ...] = ()

    @property
    def n_nodes(self) -> int:
        """Network size."""
        return len(self.receive_times)

    @property
    def n_received(self) -> int:
        """Number of nodes (source included) that got the broadcast."""
        return sum(1 for t in self.receive_times if t is not None)

    @property
    def coverage(self) -> float:
        """Fraction of nodes that received the broadcast."""
        return self.n_received / self.n_nodes

    def reached_fraction(self, fraction: float) -> bool:
        """Did the broadcast reach at least ``fraction`` of the nodes?"""
        check_probability("fraction", fraction)
        return self.n_received >= fraction * self.n_nodes

    def latency(self, node: int) -> Optional[float]:
        """Generation-to-reception delay at ``node`` (None if missed)."""
        t = self.receive_times[node]
        return None if t is None else t - self.t_generated

    def tree_edges(self) -> List[Tuple[int, int]]:
        """The (parent, child) first-arrival links of this broadcast."""
        return [
            (parent, child)
            for child, parent in enumerate(self.parents)
            if parent is not None
        ]

    def per_hop_latencies(self) -> List[float]:
        """Latency-per-hop for every reached non-source node."""
        result: List[float] = []
        for node, (t, h) in enumerate(zip(self.receive_times, self.hops)):
            if node == self.source or t is None or not h:
                continue
            result.append((t - self.t_generated) / h)
        return result


@dataclass
class CampaignResult:
    """Aggregated outcomes of a multi-broadcast run (one parameter point)."""

    params: PBBFParams
    mode: SchedulingMode
    config: AnalysisParameters
    source: int
    outcomes: List[BroadcastOutcome]
    shortest_hops: List[Optional[int]]
    total_joules: float
    duration: float
    #: Lazy dist -> node-id buckets backing :meth:`nodes_at_distance`.
    _distance_buckets: Optional[Dict[int, List[int]]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_broadcasts(self) -> int:
        """Number of updates generated at the source."""
        return len(self.outcomes)

    def reliability(self, fraction: float) -> float:
        """Fraction of updates received by >= ``fraction`` of nodes (Figs 4-5)."""
        if not self.outcomes:
            raise ValueError("campaign has no outcomes")
        hits = sum(1 for o in self.outcomes if o.reached_fraction(fraction))
        return hits / len(self.outcomes)

    def mean_coverage(self) -> float:
        """Average per-broadcast coverage (the Fig 16/18 'updates received')."""
        if not self.outcomes:
            raise ValueError("campaign has no outcomes")
        return sum(o.coverage for o in self.outcomes) / len(self.outcomes)

    def joules_per_update(self) -> float:
        """Network-wide energy divided by updates generated."""
        if not self.outcomes:
            raise ValueError("campaign has no outcomes")
        return self.total_joules / len(self.outcomes)

    def joules_per_update_per_node(self) -> float:
        """Average per-node energy per update — the Figure 8/13 y-axis.

        The paper plots "the average energy consumed at a node, normalized
        for the number of updates generated" (Section 5.2).
        """
        return self.joules_per_update() / len(self.shortest_hops)

    def mean_per_hop_latency(self) -> Optional[float]:
        """Average latency-per-hop over all receptions (Fig 11 y-axis).

        ``None`` when nothing beyond the source ever received (deeply
        sub-threshold operating points).
        """
        values: List[float] = []
        for outcome in self.outcomes:
            values.extend(outcome.per_hop_latencies())
        if not values:
            return None
        return sum(values) / len(values)

    def nodes_at_distance(self, d: int) -> List[int]:
        """Node ids whose shortest-path distance from the source is ``d``."""
        if self._distance_buckets is None:
            # Built lazily once: figure code queries several hop buckets
            # per campaign and the scan is O(n) each time otherwise.
            self._distance_buckets = bucket_by_distance(self.shortest_hops)
        return list(self._distance_buckets.get(d, ()))

    def mean_hops_at_distance(self, d: int) -> Optional[float]:
        """Average hops actually travelled to reach distance-``d`` nodes.

        The Figures 9/10 metric: when reliability is marginal the broadcast
        worms along tortuous spanning-tree paths and this exceeds ``d``;
        at high reliability it collapses to ~``d``.
        """
        nodes = self.nodes_at_distance(d)
        values: List[float] = []
        for outcome in self.outcomes:
            for v in nodes:
                h = outcome.hops[v]
                if h is not None:
                    values.append(float(h))
        if not values:
            return None
        return sum(values) / len(values)

    def mean_latency_at_distance(self, d: int) -> Optional[float]:
        """Average generation-to-reception delay at distance-``d`` nodes."""
        nodes = self.nodes_at_distance(d)
        values: List[float] = []
        for outcome in self.outcomes:
            for v in nodes:
                latency = outcome.latency(v)
                if latency is not None:
                    values.append(latency)
        if not values:
            return None
        return sum(values) / len(values)


class IdealSimulator:
    """Collision-free broadcast simulator over an arbitrary topology.

    Parameters
    ----------
    topology:
        Usually a 75x75 :class:`~repro.net.topology.GridTopology`.
    params:
        PBBF's (p, q).  Ignored in ``ALWAYS_ON`` mode.
    config:
        Timing and power values (Table 1 defaults).
    seed:
        Root seed; every coin flip derives from it deterministically.
    source:
        Broadcast source; defaults to the grid centre (the paper's choice).
    mode:
        ``PSM_PBBF`` (default) or ``ALWAYS_ON``.
    q_coin_scope:
        Granularity of the stay-awake coin (a DESIGN.md ablation):
        ``"frame"`` (default, the paper's Figure 3 semantics — one coin per
        node per sleep period) or ``"broadcast"`` (one coin per node per
        broadcast — a sticky awake decision that collapses the per-frame
        renewal process onto exact bond percolation).
    fast_path:
        ``True`` forces the vectorized frontier-at-a-time kernel, ``False``
        forces the scalar heap loop (the reference implementation), and
        ``None`` (default) defers to the ambient execution config
        (:mod:`repro.runners.context`, the CLI's ``--no-fast-path``).
        Both paths produce bit-identical :class:`BroadcastOutcome`\\ s —
        the parity suite enforces it.
    failed_nodes:
        Failure injection: these nodes are dead before the first broadcast
        — they never receive, never forward, and count as unreached in
        every coverage metric.  The source must not be failed.  Energy
        accounting is untouched (a crashed radio's duty cycle is a
        modelling question this scenario knob deliberately leaves alone).
    """

    def __init__(
        self,
        topology: Topology,
        params: PBBFParams,
        config: Optional[AnalysisParameters] = None,
        seed: int = 0,
        source: Optional[int] = None,
        mode: SchedulingMode = SchedulingMode.PSM_PBBF,
        q_coin_scope: str = "frame",
        fast_path: Optional[bool] = None,
        failed_nodes: Optional[Sequence[int]] = None,
    ) -> None:
        if q_coin_scope not in ("frame", "broadcast"):
            raise ValueError(
                f"q_coin_scope must be 'frame' or 'broadcast', got {q_coin_scope!r}"
            )
        self.topology = topology
        self.params = params
        self.config = config if config is not None else AnalysisParameters()
        self.mode = mode
        self.q_coin_scope = q_coin_scope
        self._current_broadcast = 0
        if source is None:
            center = getattr(topology, "center_node", None)
            source = center() if callable(center) else 0
        if not 0 <= source < topology.n_nodes:
            raise IndexError(f"source {source} outside topology")
        self.source = source
        self.failed_nodes: Tuple[int, ...] = tuple(sorted(set(failed_nodes or ())))
        for node in self.failed_nodes:
            if not 0 <= node < topology.n_nodes:
                raise IndexError(f"failed node {node} outside topology")
        if source in self.failed_nodes:
            raise ValueError(f"source {source} cannot be a failed node")
        # Scalar-path membership list and fast-path mask; None when the
        # scenario has no failures so both kernels skip the extra work.
        self._failed_mask: Optional[np.ndarray] = None
        if self.failed_nodes:
            mask = np.zeros(topology.n_nodes, dtype=bool)
            mask[list(self.failed_nodes)] = True
            self._failed_mask = mask
        self.fast_path = fast_path
        self._seed = seed
        self._q_salt = 0x51C0FFEE  # distinguishes q-coins from p-coins
        self._p_salt = 0x9B0ADCA5

    def _use_fast_path(self) -> bool:
        """Resolve the per-run kernel choice (explicit flag, else ambient)."""
        if self.fast_path is not None:
            return self.fast_path
        # Imported lazily: repro.runners imports this module at package
        # init, so a top-level import here would be circular.
        from repro.runners.context import get_execution

        return get_execution().fast_path

    # -- schedule geometry ----------------------------------------------------

    def frame_of(self, t: float) -> int:
        """Index of the frame containing time ``t``."""
        return int(math.floor(t / self.config.t_frame))

    def frame_start(self, frame: int) -> float:
        """Start time of ``frame``."""
        return frame * self.config.t_frame

    def in_active_window(self, t: float) -> bool:
        """Is ``t`` inside an ATIM window (when everyone is awake)?"""
        phase = t - self.frame_start(self.frame_of(t))
        return phase < self.config.t_active

    def is_awake(self, node: int, t: float) -> bool:
        """Is ``node`` listening at time ``t``?

        Awake during every ATIM window; outside it, awake iff the node's
        per-frame q-coin came up heads (Figure 3's Sleep-Decision-Handler).
        """
        if self.mode is SchedulingMode.ALWAYS_ON:
            return True
        if self.in_active_window(t):
            return True
        if self.q_coin_scope == "frame":
            key = self.frame_of(t)
        else:  # per-broadcast scope (ablation)
            key = -1 - self._current_broadcast
        coin = hash_to_unit_interval(self._seed ^ self._q_salt, node, key)
        return coin < self.params.q

    def _forwards_immediately(self, node: int, broadcast_index: int) -> bool:
        """The node's p-coin for this broadcast (Figure 3's Receive-Broadcast)."""
        if self.mode is SchedulingMode.ALWAYS_ON:
            return True
        coin = hash_to_unit_interval(
            self._seed ^ self._p_salt, node, broadcast_index
        )
        return coin < self.params.p

    def _defer_out_of_window(self, t: float) -> float:
        """Data cannot be sent inside an ATIM window; push ``t`` past it."""
        if self.mode is SchedulingMode.ALWAYS_ON:
            return t
        if self.in_active_window(t):
            return self.frame_start(self.frame_of(t)) + self.config.t_active
        return t

    def _next_window_send_time(self, t: float) -> float:
        """Transmission time of a normal broadcast queued at time ``t``.

        Announced in the next frame's ATIM window, transmitted L1 after the
        window closes.
        """
        next_frame = self.frame_of(t) + 1
        return self.frame_start(next_frame) + self.config.t_active + self.config.l1

    # -- propagation -----------------------------------------------------------

    def run_broadcast(self, index: int) -> BroadcastOutcome:
        """Propagate broadcast number ``index`` and record its outcome.

        The update is generated at ``index * update_interval`` (shifted into
        the containing frame's ATIM window, where the paper's updates always
        arrive) and propagates until no transmission remains pending.

        Dispatches to the vectorized frontier kernel unless the scalar
        reference loop was requested (``fast_path=False`` or the ambient
        execution config); the two are bit-identical.
        """
        check_non_negative_int("index", index)
        self._current_broadcast = index
        if self._use_fast_path():
            return self._run_broadcast_fast(index)
        return self._run_broadcast_scalar(index)

    def _generation_times(self, index: int) -> Tuple[float, float]:
        """(generation time, first transmission time) of broadcast ``index``."""
        cfg = self.config
        t_nominal = index * cfg.update_interval
        if self.mode is SchedulingMode.ALWAYS_ON:
            return t_nominal, t_nominal + cfg.l1
        frame = self.frame_of(t_nominal)
        if t_nominal - self.frame_start(frame) >= cfg.t_active:
            frame += 1  # arrival fell past the window; use the next one
        t_gen = self.frame_start(frame)
        return t_gen, t_gen + cfg.t_active + cfg.l1

    def _run_broadcast_scalar(self, index: int) -> BroadcastOutcome:
        """Reference implementation: one heap entry per transmission."""
        cfg = self.config
        n = self.topology.n_nodes
        airtime = cfg.packet_airtime
        t_gen, first_tx = self._generation_times(index)

        receive_times: List[Optional[float]] = [None] * n
        hops: List[Optional[int]] = [None] * n
        parents: List[Optional[int]] = [None] * n
        receive_times[self.source] = t_gen
        hops[self.source] = 0
        n_transmissions = 0
        n_immediate = 0
        n_normal = 0

        # Heap of pending *transmissions*: (send_time, seq, sender, hop,
        # immediate?).  Receptions are resolved when the transmission fires,
        # which keeps arrival processing in global time order.
        heap: List[Tuple[float, int, int, int, bool]] = []
        seq = 0
        heapq.heappush(heap, (first_tx, seq, self.source, 0, False))
        n_normal += 1

        failed = self._failed_mask
        while heap:
            t_send, _, sender, hop, immediate = heapq.heappop(heap)
            n_transmissions += 1
            t_arrive = t_send + airtime
            for nbr in self.topology.neighbors(sender):
                if receive_times[nbr] is not None:
                    continue  # duplicate: dropped, never re-forwarded
                if failed is not None and failed[nbr]:
                    continue  # dead radio: the broadcast routes around it
                if immediate and not self.is_awake(nbr, t_send):
                    continue  # immediate forward missed a sleeping neighbour
                receive_times[nbr] = t_arrive
                hops[nbr] = hop + 1
                parents[nbr] = sender
                if self._forwards_immediately(nbr, index):
                    raw = t_arrive + cfg.l1
                    seq += 1
                    heapq.heappush(
                        heap,
                        (self._defer_out_of_window(raw), seq, nbr, hop + 1, True),
                    )
                    n_immediate += 1
                else:
                    seq += 1
                    heapq.heappush(
                        heap,
                        (self._next_window_send_time(t_arrive), seq, nbr, hop + 1, False),
                    )
                    n_normal += 1

        return BroadcastOutcome(
            index=index,
            source=self.source,
            t_generated=t_gen,
            receive_times=tuple(receive_times),
            hops=tuple(hops),
            n_transmissions=n_transmissions,
            n_immediate_forwards=n_immediate,
            n_normal_forwards=n_normal,
            parents=tuple(parents),
        )

    def _run_broadcast_fast(self, index: int) -> BroadcastOutcome:
        """Vectorized kernel: one array step per distinct send time.

        All transmissions sharing a send time resolve together — a masked
        neighbour gather over the topology's CSR view, one batched q-coin
        draw for the awake checks, first-arrival resolution via the first
        occurrence in claim order, and one batched p-coin draw for the
        winners.  Scalar-heap equivalence relies on three invariants:

        * transmissions created later always carry later sequence numbers,
          and batches are drained in (time, seq) order exactly as the heap
          would pop them (same-time chunks spawned mid-batch form the next
          batch at that time);
        * within a batch the flat gather enumerates (sender, neighbour)
          pairs in precisely the scalar visit order, so ``np.unique``'s
          first-occurrence index reproduces the scalar's first-claim
          tie-breaking;
        * every timestamp is computed by the same scalar float expression
          (``_defer_out_of_window``, ``_next_window_send_time``) on the
          same inputs, so grouping by exact float equality matches heap
          ordering.
        """
        cfg = self.config
        topo = self.topology
        padded_nbrs, padded_valid = topo.csr.padded
        csr_indices = topo.csr.indices
        csr_indptr = topo.csr.indptr
        n = topo.n_nodes
        airtime = cfg.packet_airtime
        always_on = self.mode is SchedulingMode.ALWAYS_ON
        t_gen, first_tx = self._generation_times(index)

        discovered = np.zeros(n, dtype=bool)
        receive_t = np.zeros(n, dtype=np.float64)
        hops_arr = np.full(n, -1, dtype=np.int64)
        parents_arr = np.full(n, -1, dtype=np.int64)
        claim_row = np.empty(n, dtype=np.int64)  # first-claim scratch
        if self._failed_mask is not None:
            # Failed radios are masked out of every frontier gather by
            # pre-marking them discovered; the unreached patch below puts
            # them back to None.  Zero per-batch cost when nothing failed.
            discovered |= self._failed_mask
        discovered[self.source] = True
        receive_t[self.source] = t_gen
        hops_arr[self.source] = 0
        n_transmissions = 0
        n_immediate = 0
        n_normal = 1  # the source's initial normal broadcast

        node_ids = np.arange(n, dtype=np.int64)
        # One whole-network p-coin draw covers the broadcast: the key is
        # (node, index), so every per-batch lookup is a slice of this table.
        if always_on:
            forwards_all = np.ones(n, dtype=bool)
        else:
            forwards_all = (
                hash_to_unit_interval_array(
                    self._seed ^ self._p_salt, node_ids, index
                )
                < self.params.p
            )
        # Awake masks are keyed per frame (or once per broadcast in the
        # sticky-ablation scope) and drawn whole-network on first need —
        # one vectorized draw per frame instead of one per batch.
        if self.q_coin_scope == "frame":
            q_key: Optional[int] = None  # depends on the batch's send time
        else:
            q_key = -1 - index
        awake_masks: Dict[int, np.ndarray] = {}

        def awake_mask(key: int) -> np.ndarray:
            mask = awake_masks.get(key)
            if mask is None:
                mask = (
                    hash_to_unit_interval_array(
                        self._seed ^ self._q_salt, node_ids, key
                    )
                    < self.params.q
                )
                awake_masks[key] = mask
            return mask

        # Pending transmissions, grouped by exact send time.  Each chunk is
        # (senders, hops, immediate-flags) in seq order; chunks within a
        # list and lists across times preserve global seq order because
        # appends only ever carry fresh (larger) sequence numbers.
        Chunk = Tuple[np.ndarray, np.ndarray, np.ndarray]
        pending: Dict[float, List[Chunk]] = {}
        times: List[float] = []

        def push(t: float, chunk: Chunk) -> None:
            bucket = pending.get(t)
            if bucket is None:
                pending[t] = [chunk]
                heapq.heappush(times, t)
            else:
                bucket.append(chunk)

        push(
            first_tx,
            (
                np.array([self.source], dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.zeros(1, dtype=bool),
            ),
        )

        while times:
            t_send = heapq.heappop(times)
            chunks = pending.pop(t_send)
            if len(chunks) == 1:
                senders, sender_hops, immediate = chunks[0]
            else:
                senders = np.concatenate([c[0] for c in chunks])
                sender_hops = np.concatenate([c[1] for c in chunks])
                immediate = np.concatenate([c[2] for c in chunks])
            n_transmissions += len(senders)
            t_arrive = t_send + airtime

            if len(senders) == 1:
                # Single transmitter: its CSR row is already duplicate-free
                # and in visit order, so no first-claim resolution needed.
                s = int(senders[0])
                row = csr_indices[csr_indptr[s] : csr_indptr[s + 1]]
                keep = ~discovered[row]
                if (
                    not always_on
                    and immediate[0]
                    and not self.in_active_window(t_send)
                ):
                    key = self.frame_of(t_send) if q_key is None else q_key
                    keep &= awake_mask(key)[row]
                winners = row[keep]
                if winners.size == 0:
                    continue
                receive_t[winners] = t_arrive
                discovered[winners] = True
                hops_arr[winners] = sender_hops[0] + 1
                parents_arr[winners] = s
            else:
                # Row-major over (sender, neighbour-position) = the scalar
                # visit order, so first occurrence = scalar first claim.
                nbrs2d = padded_nbrs[senders]
                keep2d = padded_valid[senders] & ~discovered[nbrs2d]
                if (
                    not always_on
                    and immediate.any()
                    and not self.in_active_window(t_send)
                ):
                    # Immediate forwards only reach neighbours whose q-coin
                    # kept them awake; normal ones (post-ATIM) reach all.
                    key = self.frame_of(t_send) if q_key is None else q_key
                    keep2d &= awake_mask(key)[nbrs2d] | ~immediate[:, None]
                rows, cols = np.nonzero(keep2d)
                if rows.size == 0:
                    continue
                cand = nbrs2d[rows, cols]
                # First-claim resolution without a sort: scatter row ids in
                # reverse so the earliest claim lands last, then keep exactly
                # the entries whose row won.  (Duplicate-index assignment is
                # last-write-wins; a row never lists a neighbour twice.)
                claim_row[cand[::-1]] = rows[::-1]
                first_mask = claim_row[cand] == rows
                winners = cand[first_mask]  # already in claim (seq) order
                winner_owner = rows[first_mask]

                receive_t[winners] = t_arrive
                discovered[winners] = True
                hops_arr[winners] = sender_hops[winner_owner] + 1
                parents_arr[winners] = senders[winner_owner]

            forwards = forwards_all[winners]
            winner_hops = hops_arr[winners]
            n_imm = int(forwards.sum())
            n_immediate += n_imm
            n_normal += len(winners) - n_imm
            t_imm = self._defer_out_of_window(t_arrive + cfg.l1)
            t_norm = self._next_window_send_time(t_arrive)
            if n_imm == len(winners):
                push(t_imm, (winners, winner_hops, forwards))
            elif n_imm == 0:
                push(t_norm, (winners, winner_hops, forwards))
            elif t_imm == t_norm:
                # Rare alignment: keep one interleaved chunk so intra-batch
                # seq order still matches the scalar push order.
                push(t_imm, (winners, winner_hops, forwards))
            else:
                push(t_imm, (winners[forwards], winner_hops[forwards], forwards[forwards]))
                quiet = ~forwards
                push(t_norm, (winners[quiet], winner_hops[quiet], forwards[quiet]))

        receive_list: List[Optional[float]] = receive_t.tolist()
        hops_list: List[Optional[int]] = hops_arr.tolist()
        parents_list: List[Optional[int]] = parents_arr.tolist()
        parents_list[self.source] = None
        # Patch only the unreached nodes back to None (usually few or none);
        # failed nodes were pre-marked discovered, so fold them back in.
        unreached = ~discovered
        if self._failed_mask is not None:
            unreached |= self._failed_mask
        for v in np.nonzero(unreached)[0].tolist():
            receive_list[v] = None
            hops_list[v] = None
            parents_list[v] = None
        return BroadcastOutcome(
            index=index,
            source=self.source,
            t_generated=t_gen,
            receive_times=tuple(receive_list),
            hops=tuple(hops_list),
            n_transmissions=n_transmissions,
            n_immediate_forwards=n_immediate,
            n_normal_forwards=n_normal,
            parents=tuple(parents_list),
        )

    def run_campaign(self, n_broadcasts: int) -> CampaignResult:
        """Generate ``n_broadcasts`` updates and aggregate their outcomes.

        Energy accounting follows the paper's analysis: the duty-cycle term
        is the Eq. 7 expectation (which Figure 8 verifies the simulation
        matches exactly), plus the transmit-power premium for every actual
        transmission.  See DESIGN.md's ablation notes for what is folded in.
        """
        if n_broadcasts <= 0:
            raise ValueError(f"n_broadcasts must be > 0, got {n_broadcasts}")
        from repro.obs import get_recorder

        with get_recorder().span(
            "kernel.ideal",
            broadcasts=n_broadcasts,
            nodes=self.topology.n_nodes,
            fast_path=self._use_fast_path(),
        ):
            outcomes = [self.run_broadcast(i) for i in range(n_broadcasts)]
        duration = n_broadcasts * self.config.update_interval
        total_joules = self._campaign_energy(outcomes, duration)
        return CampaignResult(
            params=self.params,
            mode=self.mode,
            config=self.config,
            source=self.source,
            outcomes=outcomes,
            shortest_hops=self.topology.hop_distances_from(self.source),
            total_joules=total_joules,
            duration=duration,
        )

    # -- energy ------------------------------------------------------------

    def _campaign_energy(
        self, outcomes: Sequence[BroadcastOutcome], duration: float
    ) -> float:
        cfg = self.config
        power = cfg.power
        if self.mode is SchedulingMode.ALWAYS_ON:
            duty_power = power.listen_w
        else:
            q = self.params.q
            awake_per_frame = cfg.t_active + q * cfg.t_sleep
            asleep_per_frame = (1.0 - q) * cfg.t_sleep
            duty_power = (
                awake_per_frame * power.listen_w + asleep_per_frame * power.sleep_w
            ) / cfg.t_frame
        base = self.topology.n_nodes * duty_power * duration
        n_tx = sum(o.n_transmissions for o in outcomes)
        tx_premium = n_tx * cfg.packet_airtime * (power.tx_w - power.listen_w)
        return base + tx_premium
