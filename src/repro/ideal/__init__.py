"""The Section 4 idealized simulator.

The paper's analysis combines closed forms with simulations on an *ideal*
MAC/PHY: no collisions, no interference, instantaneous reliable delivery to
every awake in-range neighbour.  This package reproduces that simulator:

* :class:`~repro.ideal.config.AnalysisParameters` -- Table 1's values
  (75x75 grid, Mica2 powers, lambda = 0.01 updates/s, Tframe = 10 s,
  Tactive = 1 s, L1 ~ 1.5 s);
* :class:`~repro.ideal.simulator.IdealSimulator` -- earliest-arrival
  broadcast propagation over a grid with PSM-style frames and PBBF's
  coin flips, producing the Figure 4/5 reliability curves, the Figure 8
  energy line, the Figure 9/10 hop-stretch plots, and the Figure 11
  per-hop latency plot.
"""

from repro.ideal.config import AnalysisParameters
from repro.ideal.simulator import (
    BroadcastOutcome,
    CampaignResult,
    IdealSimulator,
    SchedulingMode,
)

__all__ = [
    "AnalysisParameters",
    "BroadcastOutcome",
    "CampaignResult",
    "IdealSimulator",
    "SchedulingMode",
]
