"""The code-distribution workload (paper Section 5.1).

One node is the code-distribution source.  New updates are generated
*deterministically* at rate lambda; each broadcast packet carries the ``k``
most recent update ids, so a node that misses a packet can still recover
an update from the next k-1 packets (the paper presents k=1, where misses
are permanent; the general k is implemented and swept by an ablation
bench).

Generation times are aligned to fall inside ATIM windows — the paper notes
"new packets always arrive at the source during the ATIM window" — by
adding a small offset after each nominal arrival instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.mac.base import BroadcastMac
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class UpdateRecord:
    """One update generated at the source."""

    update_id: int
    generated_at: float


class CodeDistributionApp:
    """Generates updates at the source and records receptions everywhere.

    Parameters
    ----------
    engine:
        Simulation clock / scheduler.
    source:
        The code-distribution source node id.
    n_nodes:
        Network size (for coverage metrics).
    update_interval:
        Seconds between updates (``1 / lambda``).
    k:
        Updates carried per packet (Table 2 presents k = 1).
    packet_size_bytes:
        Total on-air packet size (Table 2: 64 bytes).
    first_offset:
        Delay from each nominal generation instant, used to land arrivals
        inside the ATIM window that opens at the same instant.
    """

    def __init__(
        self,
        engine: Engine,
        source: int,
        n_nodes: int,
        update_interval: float = 100.0,
        k: int = 1,
        packet_size_bytes: int = 64,
        first_offset: float = 0.01,
    ) -> None:
        check_positive("update_interval", update_interval)
        check_positive_int("k", k)
        check_positive_int("packet_size_bytes", packet_size_bytes)
        check_non_negative("first_offset", first_offset)
        self._engine = engine
        self.source = source
        self.n_nodes = n_nodes
        self.update_interval = update_interval
        self.k = k
        self.packet_size_bytes = packet_size_bytes
        self.first_offset = first_offset
        self.updates: List[UpdateRecord] = []
        #: ``receptions[node][update_id] -> first reception time``.
        self.receptions: Dict[int, Dict[int, float]] = {
            node: {} for node in range(n_nodes)
        }
        self._source_mac: Optional[BroadcastMac] = None
        self._next_update_id = 0

    def bind_source_mac(self, mac: BroadcastMac) -> None:
        """Attach the MAC through which the source broadcasts."""
        self._source_mac = mac

    def delivery_callback(self, node_id: int) -> Callable[[Packet, float], None]:
        """The per-node callback a MAC invokes on each new data packet."""

        def _deliver(packet: Packet, t: float) -> None:
            records = self.receptions[node_id]
            for update_id in packet.updates:
                if update_id not in records:
                    records[update_id] = t

        return _deliver

    def start(self, duration: float) -> None:
        """Schedule update generation over ``[0, duration)``."""
        check_positive("duration", duration)
        if self._source_mac is None:
            raise RuntimeError("bind_source_mac() must be called before start()")
        t = self.first_offset
        while t < duration:
            self._engine.schedule_at(t, self._generate)
            t += self.update_interval

    @property
    def n_updates(self) -> int:
        """Updates generated so far."""
        return len(self.updates)

    def _generate(self) -> None:
        now = self._engine.now
        update_id = self._next_update_id
        self._next_update_id += 1
        self.updates.append(UpdateRecord(update_id, now))
        # The source trivially "has" its own update the moment it exists.
        self.receptions[self.source][update_id] = now
        recent = tuple(
            record.update_id for record in self.updates[-self.k:]
        )
        packet = Packet(
            kind=PacketKind.DATA,
            origin=self.source,
            sender=self.source,
            seqno=update_id,
            size_bytes=self.packet_size_bytes,
            updates=recent,
        )
        assert self._source_mac is not None  # checked in start()
        self._source_mac.broadcast(packet)
