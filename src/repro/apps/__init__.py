"""Application layer: the code-distribution workload and its metrics.

Section 5 of the paper evaluates PBBF with a code-distribution application
"implemented at the routing layer of ns-2": one source node generates
updates at rate lambda and broadcasts packets carrying the ``k`` most
recent updates; every other node wants every update.

* :mod:`repro.apps.code_distribution` -- the update generator and
  per-node reception bookkeeping;
* :mod:`repro.apps.metrics` -- the derived quantities the figures plot
  (updates-received fraction, latency by hop distance, reliability).
"""

from repro.apps.code_distribution import CodeDistributionApp, UpdateRecord
from repro.apps.metrics import BroadcastMetrics

__all__ = [
    "BroadcastMetrics",
    "CodeDistributionApp",
    "UpdateRecord",
]
