"""Derived metrics over a code-distribution run.

Computes exactly the quantities plotted in the paper's Section 5 figures:

* **energy** — average per-node joules per generated update (Fig 13);
* **latency** — mean generation-to-first-reception delay at a given hop
  distance from the source (Figs 14-15) and overall (Fig 17);
* **delivery** — mean fraction of updates received per node (Figs 16, 18);
* **reliability** — fraction of updates received by at least a target
  fraction of nodes (the Section 4 metric, usable on detailed runs too).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.code_distribution import CodeDistributionApp, UpdateRecord
from repro.net.topology import bucket_by_distance
from repro.util.validation import check_probability


class BroadcastMetrics:
    """Figure-level metrics over one finished code-distribution run.

    Parameters
    ----------
    app:
        The finished application (updates + receptions).
    shortest_hops:
        BFS hop distance from the source for every node
        (:meth:`repro.net.topology.Topology.hop_distances_from`).
    node_joules:
        Per-node consumed energy over the run.
    """

    def __init__(
        self,
        app: CodeDistributionApp,
        shortest_hops: Sequence[Optional[int]],
        node_joules: Sequence[float],
    ) -> None:
        if len(shortest_hops) != app.n_nodes or len(node_joules) != app.n_nodes:
            raise ValueError(
                "shortest_hops and node_joules must cover every node "
                f"({len(shortest_hops)}, {len(node_joules)} vs {app.n_nodes})"
            )
        self._app = app
        self._shortest = list(shortest_hops)
        self._joules = list(node_joules)
        # Nodes bucketed by hop distance, built once: the figure code asks
        # for several hop buckets per run and the underlying topology BFS
        # is already memoized, so the scan here should be too.
        self._by_distance: Dict[int, List[int]] = bucket_by_distance(self._shortest)

    @property
    def n_updates(self) -> int:
        """Updates generated at the source during the run."""
        return self._app.n_updates

    # -- delivery ----------------------------------------------------------

    def updates_received_fraction(self, node: int) -> float:
        """Fraction of generated updates this node received."""
        if self._app.n_updates == 0:
            raise ValueError("no updates were generated")
        return len(self._app.receptions[node]) / self._app.n_updates

    def mean_updates_received_fraction(self) -> float:
        """Average delivery fraction over all non-source nodes (Figs 16/18)."""
        others = [
            self.updates_received_fraction(node)
            for node in range(self._app.n_nodes)
            if node != self._app.source
        ]
        if not others:
            raise ValueError("network has no non-source nodes")
        return sum(others) / len(others)

    def reliability(self, fraction: float) -> float:
        """Fraction of updates that reached >= ``fraction`` of all nodes."""
        check_probability("fraction", fraction)
        if self._app.n_updates == 0:
            raise ValueError("no updates were generated")
        needed = fraction * self._app.n_nodes
        hits = 0
        for update in self._app.updates:
            receivers = sum(
                1
                for node in range(self._app.n_nodes)
                if update.update_id in self._app.receptions[node]
            )
            if receivers >= needed:
                hits += 1
        return hits / self._app.n_updates

    # -- latency -------------------------------------------------------------

    def latency(self, node: int, update: UpdateRecord) -> Optional[float]:
        """Generation-to-first-reception delay, ``None`` if never received."""
        t = self._app.receptions[node].get(update.update_id)
        return None if t is None else t - update.generated_at

    def latencies_at_distance(self, d: int) -> List[float]:
        """All observed latencies at nodes exactly ``d`` hops from the source."""
        nodes = self.nodes_at_distance(d)
        values: List[float] = []
        for update in self._app.updates:
            for v in nodes:
                latency = self.latency(v, update)
                if latency is not None:
                    values.append(latency)
        return values

    def mean_latency_at_distance(self, d: int) -> Optional[float]:
        """Average latency at hop distance ``d`` (Figs 14-15); None if unseen."""
        values = self.latencies_at_distance(d)
        if not values:
            return None
        return sum(values) / len(values)

    def nodes_at_distance(self, d: int) -> List[int]:
        """Node ids exactly ``d`` hops from the source."""
        return list(self._by_distance.get(d, ()))

    def mean_update_latency(self) -> Optional[float]:
        """Average latency over every (node, update) reception (Fig 17)."""
        values: List[float] = []
        for update in self._app.updates:
            for node in range(self._app.n_nodes):
                if node == self._app.source:
                    continue
                latency = self.latency(node, update)
                if latency is not None:
                    values.append(latency)
        if not values:
            return None
        return sum(values) / len(values)

    # -- energy ------------------------------------------------------------

    def joules_per_update_per_node(self) -> float:
        """Average per-node energy per generated update (Fig 13 y-axis)."""
        if self._app.n_updates == 0:
            raise ValueError("no updates were generated")
        return (sum(self._joules) / len(self._joules)) / self._app.n_updates

    def total_joules(self) -> float:
        """Network-wide energy over the run."""
        return sum(self._joules)
