"""PBBF: Probability-Based Broadcast Forwarding.

A full reproduction of *"Exploring the Energy-Latency Trade-off for
Broadcasts in Energy-Saving Sensor Networks"* (Miller, Sengul, Gupta —
ICDCS 2005): the PBBF protocol, the percolation-based reliability analysis,
the idealized Section 4 simulator, an ns-2-like detailed simulator with an
802.11 PSM MAC, and a harness regenerating every table and figure.

Quickstart
----------
>>> from repro import GridTopology, IdealSimulator, PBBFParams
>>> sim = IdealSimulator(GridTopology(15), PBBFParams(p=0.5, q=0.8), seed=1)
>>> result = sim.run_campaign(n_broadcasts=5)
>>> result.reliability(0.99) >= 0.8
True

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro.adaptive import AdaptivePBBFAgent, AdaptivePolicy
from repro.analysis import (
    energy_latency_curve,
    energy_ratio_vs_original,
    expected_per_hop_latency,
)
from repro.core import PBBFAgent, PBBFParams, edge_open_probability
from repro.detailed import (
    CodeDistributionParameters,
    DetailedResult,
    DetailedSimulator,
)
from repro.energy import MICA2, PowerProfile, RadioEnergyModel, RadioState
from repro.ideal import AnalysisParameters, IdealSimulator, SchedulingMode
from repro.net import GridTopology, Packet, PacketKind, RandomTopology, Topology
from repro.percolation import (
    bond_sweep,
    estimate_critical_bond_fraction,
    minimum_q_for_reliability,
)
from repro.util import RandomStreams

__version__ = "1.0.0"

__all__ = [
    "AdaptivePBBFAgent",
    "AdaptivePolicy",
    "AnalysisParameters",
    "CodeDistributionParameters",
    "DetailedResult",
    "DetailedSimulator",
    "GridTopology",
    "IdealSimulator",
    "MICA2",
    "PBBFAgent",
    "PBBFParams",
    "Packet",
    "PacketKind",
    "PowerProfile",
    "RadioEnergyModel",
    "RadioState",
    "RandomStreams",
    "RandomTopology",
    "SchedulingMode",
    "Topology",
    "__version__",
    "bond_sweep",
    "edge_open_probability",
    "energy_latency_curve",
    "energy_ratio_vs_original",
    "estimate_critical_bond_fraction",
    "expected_per_hop_latency",
    "minimum_q_for_reliability",
]
