"""The Figure 12 energy-latency trade-off curve.

Section 4.4's recipe: fix a reliability level (the paper uses 99%), walk p
across (0, 1], pick for each p the *minimum* q that keeps
``pedge = 1 - p*(1-q)`` at the critical bond probability (just across the
reliability boundary), and evaluate the Eq. 8 energy and Eq. 9 latency at
that operating point.  The resulting (latency, energy) pairs trace the
inverse relationship the paper's title refers to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.equations import (
    energy_ratio_vs_original,
    expected_per_hop_latency,
    joules_per_update,
)
from repro.core.reliability import edge_open_probability
from repro.energy.model import MICA2, PowerProfile
from repro.percolation.threshold import minimum_q_for_reliability
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point on the reliability frontier."""

    p: float
    q: float
    edge_open_probability: float
    per_hop_latency_s: float
    energy_ratio: float
    joules_per_update: float


def energy_latency_curve(
    critical_bond_fraction: float,
    p_values: Sequence[float],
    l1: float,
    l2: float,
    t_active: float,
    t_sleep: float,
    update_interval: float,
    profile: Optional[PowerProfile] = None,
    tx_seconds_per_update: float = 0.0,
) -> List[TradeoffPoint]:
    """Trace the Figure 12 curve for one reliability level.

    Parameters
    ----------
    critical_bond_fraction:
        The percolation threshold ``pc`` for the desired reliability level
        (estimate it with
        :func:`repro.percolation.threshold.estimate_critical_bond_fraction`).
    p_values:
        The p grid to walk.  Points whose minimum q is 0 collapse onto the
        PSM corner and are still included (the flat start of the curve).
    l1, l2:
        Eq. 9's latency components (immediate-access time, next-window wait).
    t_active, t_sleep:
        The sleep schedule (Table 1: 1 s active, 9 s sleep).
    update_interval:
        Seconds between updates at the source (``1/lambda``; Table 1: 100 s).
    profile:
        Radio power profile (defaults to the Mica2 values).
    tx_seconds_per_update:
        Transmit airtime a node spends per update (small correction term).
    """
    pc = check_probability("critical_bond_fraction", critical_bond_fraction)
    check_positive("t_active", t_active)
    profile = profile if profile is not None else MICA2
    points: List[TradeoffPoint] = []
    for p in p_values:
        p = check_probability("p", p)
        q = minimum_q_for_reliability(p, pc)
        points.append(
            TradeoffPoint(
                p=p,
                q=q,
                edge_open_probability=edge_open_probability(p, q),
                per_hop_latency_s=expected_per_hop_latency(p, q, l1, l2),
                energy_ratio=energy_ratio_vs_original(q, t_active, t_sleep),
                joules_per_update=joules_per_update(
                    q,
                    t_active,
                    t_sleep,
                    update_interval,
                    profile,
                    tx_seconds_per_update,
                ),
            )
        )
    return points
