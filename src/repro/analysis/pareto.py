"""Pareto-frontier extraction with deterministic tie-breaking.

A point *dominates* another when it is at least as good on every
objective (after orienting each so smaller is better) and strictly
better on at least one.  The frontier is the non-dominated subset, and
the paper's Figure 12 is exactly this structure: the set of (p, q)
operating points where energy cannot improve without latency paying.

Determinism contract: the frontier's point *order* (ascending first
objective, then remaining objectives, then the canonical parameter
token) and its membership under exact value ties (duplicate objective
vectors collapse onto the token-smallest point) depend only on point
content — golden tests pin frontiers across serial, process-pool and
warm-cache executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.objectives import Objective, OperatingPoint


def oriented_values(point: OperatingPoint, objectives: Sequence[Objective]) -> Tuple[float, ...]:
    """The point's objective vector mapped so smaller is always better."""
    return tuple(
        objective.oriented(value) for objective, value in zip(objectives, point.values)
    )


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether oriented vector ``a`` Pareto-dominates oriented vector ``b``."""
    if len(a) != len(b):
        raise ValueError(f"objective counts differ: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


@dataclass(frozen=True)
class Frontier:
    """A non-dominated point set over a fixed objective pair (or tuple)."""

    objectives: Tuple[Objective, ...]
    #: Non-dominated points, ascending in the first oriented objective.
    points: Tuple[OperatingPoint, ...]
    #: How many candidate points were pruned as dominated / duplicated.
    n_dominated: int

    def __len__(self) -> int:
        return len(self.points)

    def oriented(self) -> List[Tuple[float, ...]]:
        """Every frontier point's oriented objective vector, in order."""
        return [oriented_values(point, self.objectives) for point in self.points]

    def labels(self) -> List[str]:
        """Frontier point labels, in frontier order."""
        return [point.label for point in self.points]


def pareto_frontier(
    points: Sequence[OperatingPoint],
    objectives: Sequence[Objective],
) -> Frontier:
    """Prune ``points`` to the non-dominated frontier.

    The scan sorts candidates by (oriented values, params token) first,
    so exact-duplicate objective vectors deterministically collapse onto
    the token-smallest point and the surviving order never depends on
    input enumeration order.  O(n^2) pairwise pruning — frontier sizes
    here are campaign grids (tens to low thousands of points), where the
    simple scan beats fancier divide-and-conquer overhead.
    """
    objectives = tuple(objectives)
    if not objectives:
        raise ValueError("pareto_frontier() needs at least one objective")
    for point in points:
        if len(point.values) != len(objectives):
            raise ValueError(
                f"point {point.label!r} has {len(point.values)} objective "
                f"values for {len(objectives)} objectives"
            )
    decorated = sorted(
        ((oriented_values(pt, objectives), pt.token, pt) for pt in points),
        key=lambda entry: entry[:2],
    )
    survivors: List[OperatingPoint] = []
    survivor_vectors: List[Tuple[float, ...]] = []
    seen_vectors = set()
    for vector, _, candidate in decorated:
        if vector in seen_vectors:
            continue  # exact tie: token-smallest already kept
        if any(dominates(keeper, vector) for keeper in survivor_vectors):
            continue
        # Sorted order guarantees no later candidate dominates an earlier
        # survivor on the first objective; ties on it are resolved by the
        # remaining coordinates, so a full reverse sweep is still needed
        # only against equal-first-coordinate survivors — which the
        # dominance check above already covers because they sort earlier.
        seen_vectors.add(vector)
        survivors.append(candidate)
        survivor_vectors.append(vector)
    return Frontier(
        objectives=objectives,
        points=tuple(survivors),
        n_dominated=len(points) - len(survivors),
    )
