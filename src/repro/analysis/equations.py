"""Closed forms for Equations 3-12.

All times are in seconds, powers in watts, energies in joules.  Function
names reference the paper's equation numbers so the experiment index in
DESIGN.md can be followed line by line.
"""

from __future__ import annotations

from repro.energy.model import PowerProfile
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)

#: The exponent of Eq. 11: on the uniform spanning tree a broadcast builds,
#: the expected path length to a node at lattice distance d grows as
#: ``d**(5/4 + o(1))`` (loop-erased random walk scaling, refs [4, 10]).
LOOP_ERASED_WALK_EXPONENT = 1.25


# -- energy (Section 4.2) ----------------------------------------------------

def relative_energy_original(t_active: float, t_frame: float) -> float:
    """Eq. 3: duty-cycle energy of the base sleep protocol, ``Ta / Tframe``."""
    t_active = check_non_negative("t_active", t_active)
    t_frame = check_positive("t_frame", t_frame)
    if t_active > t_frame:
        raise ValueError(f"t_active ({t_active}) exceeds t_frame ({t_frame})")
    return t_active / t_frame


def pbbf_active_time(t_active: float, t_sleep: float, q: float) -> float:
    """Eq. 5: PBBF's expected awake time per frame, ``Ta + q*Ts``."""
    t_active = check_non_negative("t_active", t_active)
    t_sleep = check_non_negative("t_sleep", t_sleep)
    q = check_probability("q", q)
    return t_active + q * t_sleep


def pbbf_sleep_time(t_sleep: float, q: float) -> float:
    """Eq. 6: PBBF's expected asleep time per frame, ``(1-q)*Ts``."""
    t_sleep = check_non_negative("t_sleep", t_sleep)
    q = check_probability("q", q)
    return (1.0 - q) * t_sleep


def relative_energy_pbbf(t_active: float, t_sleep: float, q: float) -> float:
    """Eq. 7: PBBF duty-cycle energy, ``(Ta + q*Ts) / Tframe``."""
    t_frame = t_active + t_sleep
    check_positive("t_frame", t_frame)
    return pbbf_active_time(t_active, t_sleep, q) / t_frame


def energy_ratio_vs_original(q: float, t_active: float, t_sleep: float) -> float:
    """Eq. 8: ``E_PBBF / E_original = 1 + q * Tsleep / Tactive``.

    The paper's headline energy law: linear in q, independent of p.
    """
    q = check_probability("q", q)
    t_active = check_positive("t_active", t_active)
    t_sleep = check_non_negative("t_sleep", t_sleep)
    return 1.0 + q * t_sleep / t_active


def joules_per_update(
    q: float,
    t_active: float,
    t_sleep: float,
    update_interval: float,
    profile: PowerProfile,
    tx_seconds_per_update: float = 0.0,
) -> float:
    """Absolute per-node energy per generated update (the Figure 8 y-axis).

    Over one update inter-arrival time (``1/lambda``, 100 s at Table 1's
    rate) a node is awake for the Eq. 7 fraction of time drawing listen
    power, asleep for the rest drawing sleep power, plus the transmit-power
    premium for the brief time it spends forwarding the update.
    """
    update_interval = check_positive("update_interval", update_interval)
    tx_seconds = check_non_negative("tx_seconds_per_update", tx_seconds_per_update)
    awake_fraction = relative_energy_pbbf(t_active, t_sleep, q)
    listen_energy = awake_fraction * update_interval * profile.listen_w
    sleep_energy = (1.0 - awake_fraction) * update_interval * profile.sleep_w
    tx_premium = tx_seconds * (profile.tx_w - profile.listen_w)
    return listen_energy + sleep_energy + tx_premium


def joules_per_update_always_on(
    update_interval: float,
    profile: PowerProfile,
    tx_seconds_per_update: float = 0.0,
) -> float:
    """Per-update energy with the radio always on (the "NO PSM" line)."""
    update_interval = check_positive("update_interval", update_interval)
    tx_seconds = check_non_negative("tx_seconds_per_update", tx_seconds_per_update)
    return (
        update_interval * profile.listen_w
        + tx_seconds * (profile.tx_w - profile.listen_w)
    )


# -- latency (Section 4.3) ---------------------------------------------------

def expected_per_hop_latency(p: float, q: float, l1: float, l2: float) -> float:
    """Eq. 9: expected one-hop delivery latency, conditioned on delivery.

    ``L = L1 + L2 * (1-p) / (1-p + p*q)``

    * L1 — channel-access time of an immediate transmission;
    * L2 — extra wait for the next scheduled wake-up window.

    The corner ``p=1, q=0`` (all forwards immediate, nobody awake to hear
    them) conditions on an impossible event; we return L1 by continuity,
    matching ``lim_{q->0+} L`` at p=1.
    """
    p = check_probability("p", p)
    q = check_probability("q", q)
    l1 = check_non_negative("l1", l1)
    l2 = check_non_negative("l2", l2)
    denominator = 1.0 - p + p * q
    if denominator == 0.0:
        return l1
    return l1 + l2 * (1.0 - p) / denominator


def q_for_per_hop_latency(latency: float, p: float, l1: float, l2: float) -> float:
    """Invert Eq. 9: the q achieving a target per-hop ``latency`` at fixed p.

    Valid targets lie in ``(L1, L1 + L2]`` for ``0 < p < 1``; raises
    :class:`ValueError` outside the achievable range or at the degenerate
    p values (p=0 pins latency to L1+L2; p=1 pins it to L1).
    """
    latency = check_non_negative("latency", latency)
    p = check_probability("p", p)
    l1 = check_non_negative("l1", l1)
    l2 = check_positive("l2", l2)
    if p == 0.0:
        raise ValueError("p=0 pins per-hop latency to L1+L2; q has no effect")
    if p == 1.0:
        raise ValueError("p=1 pins per-hop latency to L1; q has no effect")
    if not l1 < latency <= l1 + l2:
        raise ValueError(
            f"latency {latency} outside achievable range ({l1}, {l1 + l2}]"
        )
    q = (1.0 - p) * (l1 + l2 - latency) / (p * (latency - l1))
    if q > 1.0 + 1e-12:
        raise ValueError(
            f"latency {latency} unreachable at p={p}: would need q={q:.4f} > 1"
        )
    return min(1.0, max(0.0, q))


def path_latency(per_hop_latency: float, path_hops: float) -> float:
    """Eq. 10: source-to-node latency, ``L * len(S, B)``."""
    check_non_negative("per_hop_latency", per_hop_latency)
    check_non_negative("path_hops", path_hops)
    return per_hop_latency * path_hops


def path_latency_upper_bound(per_hop_latency: float, shortest_distance: float) -> float:
    """Eq. 11: ``L * d**(5/4)`` — spanning-tree path-stretch upper bound.

    Each broadcast builds a uniform spanning tree; the expected tree-path
    length to a node at lattice distance d is ``d**(5/4+o(1))``.  At high
    reliability the paper observes the actual exponent collapses to ~1
    (Figures 9-10), making this a (loose) upper bound.
    """
    check_non_negative("per_hop_latency", per_hop_latency)
    check_non_negative("shortest_distance", shortest_distance)
    return per_hop_latency * shortest_distance**LOOP_ERASED_WALK_EXPONENT


# -- the trade-off (Section 4.4) ----------------------------------------------

def relative_energy_for_latency(
    latency: float,
    p: float,
    l1: float,
    l2: float,
    t_active: float,
    t_sleep: float,
) -> float:
    """Eq. 12 (corrected): relative energy needed to hit a latency target.

    Substituting the inverted Eq. 9 into Eq. 8::

        E_PBBF/E_orig = 1 + ((L1 + L2 - L)/(L - L1)) * ((1-p)/p) * (Ts/Ta)

    The paper prints a minus sign in front of the second term; that form
    would make energy *fall* as the latency target tightens, contradicting
    Eq. 8 + Eq. 9 (and Figure 12 itself).  See DESIGN.md, "Known paper
    erratum".
    """
    q = q_for_per_hop_latency(latency, p, l1, l2)
    ratio = energy_ratio_vs_original(q, t_active, t_sleep)
    return ratio * relative_energy_original(t_active, t_active + t_sleep)
