"""Operating-point selection on a Pareto frontier.

Two selectors, matching how the paper's results get *used*:

* **knee point** — the max-curvature elbow of the trade-off curve, found
  as the frontier point farthest from the chord between the frontier's
  endpoints in min-max-normalised objective space (the discrete
  "kneedle" criterion).  This is where Figure 12's curve stops paying:
  past the knee, buying more latency reduction costs disproportionate
  energy.  Remark 1's frontier discussion in :mod:`repro.adaptive`
  motivates the same point as the natural static target an adaptive
  controller should hover around.
* **epsilon-constraint** — "the cheapest point with latency below X":
  bound one objective, optimise the other.  This is the deployment
  planner's query (meet a latency SLO at minimum energy, or maximise
  battery life subject to a delivery floor).

Both return frontier *indices* with deterministic tie-breaking (lowest
index wins, and frontier order is itself content-deterministic), so
selections are reproducible across backends and cached replays.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.analysis.objectives import Objective, OperatingPoint
from repro.analysis.pareto import Frontier


def _normalised(frontier: Frontier) -> Sequence[Tuple[float, ...]]:
    """Oriented objective vectors min-max scaled to [0, 1] per objective.

    Degenerate objectives (every frontier point equal) scale to 0.0, so
    they contribute nothing to distances — the knee then falls back to
    the remaining objectives.
    """
    oriented = frontier.oriented()
    n_objectives = len(frontier.objectives)
    lows = [min(vec[j] for vec in oriented) for j in range(n_objectives)]
    highs = [max(vec[j] for vec in oriented) for j in range(n_objectives)]
    scaled = []
    for vec in oriented:
        row = []
        for j, value in enumerate(vec):
            span = highs[j] - lows[j]
            row.append((value - lows[j]) / span if span > 0.0 else 0.0)
        scaled.append(tuple(row))
    return scaled


def knee_index(frontier: Frontier) -> int:
    """Index of the frontier's knee (max distance to the endpoint chord).

    Defined for two-objective frontiers.  Frontiers with fewer than three
    points have no interior curvature, so there is nothing to select: the
    first frontier point (lowest first oriented objective, itself a
    content-deterministic order) is returned.
    """
    if len(frontier.objectives) != 2:
        raise ValueError(
            f"knee selection is defined for 2 objectives, "
            f"got {len(frontier.objectives)}"
        )
    if not frontier.points:
        raise ValueError("knee_index() of an empty frontier")
    if len(frontier.points) < 3:
        return 0
    scaled = _normalised(frontier)
    first, last = scaled[0], scaled[-1]
    chord_x = last[0] - first[0]
    chord_y = last[1] - first[1]
    chord_len = math.hypot(chord_x, chord_y)
    if chord_len == 0.0:
        return 0
    best_index = 0
    best_distance = -1.0
    for index, (x, y) in enumerate(scaled):
        # Perpendicular distance from the chord through the endpoints.
        distance = abs(
            chord_x * (first[1] - y) - (first[0] - x) * chord_y
        ) / chord_len
        if distance > best_distance + 1e-15:
            best_distance = distance
            best_index = index
    return best_index


def knee_point(frontier: Frontier) -> OperatingPoint:
    """The frontier's knee-point (see :func:`knee_index`)."""
    return frontier.points[knee_index(frontier)]


def epsilon_constraint_index(
    frontier: Frontier,
    bounded: Objective,
    bound: float,
) -> Optional[int]:
    """Best frontier point subject to ``bounded`` meeting ``bound``.

    The bound is read in the objective's own units and orientation: a
    ``min`` objective must come in at or below ``bound``, a ``max``
    objective at or above it.  Among feasible points the selector
    optimises the *other* objectives lexicographically in frontier-oriented
    order; returns ``None`` when no frontier point is feasible.
    """
    try:
        bounded_index = next(
            j for j, obj in enumerate(frontier.objectives) if obj.name == bounded.name
        )
    except StopIteration:
        raise ValueError(
            f"objective {bounded.name!r} is not on this frontier "
            f"({[o.name for o in frontier.objectives]})"
        ) from None
    oriented_bound = bounded.oriented(bound)
    best: Optional[int] = None
    best_key: Optional[Tuple[float, ...]] = None
    for index, vector in enumerate(frontier.oriented()):
        if vector[bounded_index] > oriented_bound:
            continue
        key = tuple(
            value for j, value in enumerate(vector) if j != bounded_index
        )
        if best_key is None or key < best_key:
            best = index
            best_key = key
    return best
