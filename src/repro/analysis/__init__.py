"""The paper's analytical model (Section 4, Equations 3-12).

Pure closed-form functions — no simulation — for:

* **energy** (Section 4.2): duty-cycle energy of the base sleep protocol
  (Eq. 3), PBBF's inflated active time (Eqs. 5-7), and the headline linear
  law ``E_PBBF/E_orig = 1 + q * Tsleep/Tactive`` (Eq. 8);
* **latency** (Section 4.3): the expected per-hop latency
  ``L = L1 + L2 * (1-p)/(1-p+p*q)`` (Eq. 9), path latency (Eq. 10) and the
  spanning-tree upper bound ``L * d^(5/4+o(1))`` (Eq. 11);
* **the energy-latency trade-off** (Section 4.4, Eq. 12): energy as a
  function of target latency at fixed p, and the Figure 12 curve obtained
  by walking the reliability frontier.

Note on Eq. 12: the paper's printed equation has a sign error (see
DESIGN.md, "Known paper erratum").  :func:`relative_energy_for_latency`
implements the corrected form, and the test suite pins it to Eqs. 8-9 by
round-trip substitution.
"""

from repro.analysis.equations import (
    LOOP_ERASED_WALK_EXPONENT,
    energy_ratio_vs_original,
    expected_per_hop_latency,
    joules_per_update,
    joules_per_update_always_on,
    path_latency,
    path_latency_upper_bound,
    pbbf_active_time,
    pbbf_sleep_time,
    q_for_per_hop_latency,
    relative_energy_for_latency,
    relative_energy_original,
    relative_energy_pbbf,
)
from repro.analysis.stretch import ExponentFit, fit_power_law, stretch_exponent
from repro.analysis.tradeoff import TradeoffPoint, energy_latency_curve

__all__ = [
    "ExponentFit",
    "LOOP_ERASED_WALK_EXPONENT",
    "TradeoffPoint",
    "energy_latency_curve",
    "fit_power_law",
    "stretch_exponent",
    "energy_ratio_vs_original",
    "expected_per_hop_latency",
    "joules_per_update",
    "joules_per_update_always_on",
    "path_latency",
    "path_latency_upper_bound",
    "pbbf_active_time",
    "pbbf_sleep_time",
    "q_for_per_hop_latency",
    "relative_energy_for_latency",
    "relative_energy_original",
    "relative_energy_pbbf",
]
