"""The paper's analytical model (Section 4, Equations 3-12).

Pure closed-form functions — no simulation — for:

* **energy** (Section 4.2): duty-cycle energy of the base sleep protocol
  (Eq. 3), PBBF's inflated active time (Eqs. 5-7), and the headline linear
  law ``E_PBBF/E_orig = 1 + q * Tsleep/Tactive`` (Eq. 8);
* **latency** (Section 4.3): the expected per-hop latency
  ``L = L1 + L2 * (1-p)/(1-p+p*q)`` (Eq. 9), path latency (Eq. 10) and the
  spanning-tree upper bound ``L * d^(5/4+o(1))`` (Eq. 11);
* **the energy-latency trade-off** (Section 4.4, Eq. 12): energy as a
  function of target latency at fixed p, and the Figure 12 curve obtained
  by walking the reliability frontier.

Note on Eq. 12: the paper's printed equation has a sign error (see
DESIGN.md, "Known paper erratum").  :func:`relative_energy_for_latency`
implements the corrected form, and the test suite pins it to Eqs. 8-9 by
round-trip substitution.

On top of the closed forms sits the **trade-off analysis subsystem** —
the layer that *interprets* campaign results instead of producing them:

* :mod:`repro.analysis.objectives` — named/oriented objectives,
  epsilon-constraints and seed-averaged operating points with
  deterministic bootstrap confidence intervals;
* :mod:`repro.analysis.pareto` — dominated-point pruning into a
  :class:`Frontier` with deterministic tie-breaking;
* :mod:`repro.analysis.selectors` — knee-point (max-curvature) and
  epsilon-constraint operating-point selection;
* :mod:`repro.analysis.denomination` — frontier energies re-denominated
  as battery-days through :mod:`repro.energy.lifetime`;
* :mod:`repro.analysis.compare` — hypervolume and two-set coverage
  across scenario families or controller variants.

The ``pareto01``-``pareto03`` figures and the ``pbbf-experiments
pareto`` CLI subcommand are the packaged entry points.
"""

from repro.analysis.equations import (
    LOOP_ERASED_WALK_EXPONENT,
    energy_ratio_vs_original,
    expected_per_hop_latency,
    joules_per_update,
    joules_per_update_always_on,
    path_latency,
    path_latency_upper_bound,
    pbbf_active_time,
    pbbf_sleep_time,
    q_for_per_hop_latency,
    relative_energy_for_latency,
    relative_energy_original,
    relative_energy_pbbf,
)
from repro.analysis.bootstrap import bootstrap_ci95, bootstrap_mean_samples
from repro.analysis.compare import (
    FrontierComparison,
    FrontierSummary,
    compare_frontiers,
    coverage_fraction,
    frontier_weakly_dominates,
    hypervolume,
    shared_reference,
)
from repro.analysis.denomination import lifetime_days_metric, lifetime_objective
from repro.analysis.objectives import (
    Constraint,
    Objective,
    OperatingPoint,
    operating_points,
)
from repro.analysis.pareto import Frontier, dominates, pareto_frontier
from repro.analysis.streaming import StreamingFrontier
from repro.analysis.selectors import (
    epsilon_constraint_index,
    knee_index,
    knee_point,
)
from repro.analysis.stretch import ExponentFit, fit_power_law, stretch_exponent
from repro.analysis.tradeoff import TradeoffPoint, energy_latency_curve

__all__ = [
    "Constraint",
    "Frontier",
    "FrontierComparison",
    "FrontierSummary",
    "Objective",
    "OperatingPoint",
    "StreamingFrontier",
    "bootstrap_ci95",
    "bootstrap_mean_samples",
    "compare_frontiers",
    "coverage_fraction",
    "dominates",
    "epsilon_constraint_index",
    "frontier_weakly_dominates",
    "hypervolume",
    "knee_index",
    "knee_point",
    "lifetime_days_metric",
    "lifetime_objective",
    "operating_points",
    "pareto_frontier",
    "shared_reference",
    "ExponentFit",
    "LOOP_ERASED_WALK_EXPONENT",
    "TradeoffPoint",
    "energy_latency_curve",
    "fit_power_law",
    "stretch_exponent",
    "energy_ratio_vs_original",
    "expected_per_hop_latency",
    "joules_per_update",
    "joules_per_update_always_on",
    "path_latency",
    "path_latency_upper_bound",
    "pbbf_active_time",
    "pbbf_sleep_time",
    "q_for_per_hop_latency",
    "relative_energy_for_latency",
    "relative_energy_original",
    "relative_energy_pbbf",
]
