"""Lifetime denomination: frontiers in battery-days instead of joules.

The paper's opening motivation is deployment lifetime ("a few weeks on a
pair of AA batteries"), and Lipinski's maximum-lifetime broadcasting
frames the whole trade-off in that unit.  This module re-denominates an
energy objective (joules per update per node, the Figure 8/13 y-axis)
through :mod:`repro.energy.lifetime` so frontier tables and figures read
in projected battery-days — the number a deployment planner actually
compares against a maintenance schedule.

The mapping ``days = battery / (J_per_update / update_interval) / 86400``
is strictly decreasing in energy, so re-denominating *per seed* and
re-averaging preserves which points are Pareto-optimal in the continuous
sense while reporting honest means in the new unit (the mean of
transformed samples, not the transformed mean).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analysis.objectives import MetricFn, Objective
from repro.energy.lifetime import AA_PAIR_JOULES, lifetime_from_joules_per_update


def lifetime_days_metric(
    energy_metric: MetricFn,
    update_interval_s: float,
    battery_joules: float = AA_PAIR_JOULES,
) -> MetricFn:
    """Wrap a joules-per-update metric into projected battery-days.

    ``None`` propagates (a run with no defined energy has no defined
    lifetime); non-positive energies (an idle node whose accounting
    rounds to zero) also map to ``None`` rather than an infinite
    lifetime, so they drop out of means the same way undefined latencies
    do.
    """

    def metric(bundle: Any) -> Optional[float]:
        joules = energy_metric(bundle)
        if joules is None or joules <= 0.0:
            return None
        return lifetime_from_joules_per_update(
            joules, update_interval_s, battery_joules
        ).days

    return metric


def lifetime_objective(
    energy_objective: Objective,
    update_interval_s: float,
    battery_joules: float = AA_PAIR_JOULES,
    name: str = "lifetime",
    label: str = "projected lifetime (battery-days)",
) -> Objective:
    """The battery-days counterpart of a joules-per-update objective.

    The sense flips to ``"max"``: minimising joules is maximising days.
    Use this objective when *extracting* operating points so that means
    and bootstrap intervals are computed in the reported unit.
    """
    if energy_objective.sense != "min":
        raise ValueError(
            "lifetime denomination expects a minimised energy objective, "
            f"got sense={energy_objective.sense!r}"
        )
    return Objective(
        name=name,
        label=label,
        metric=lifetime_days_metric(
            energy_objective.metric, update_interval_s, battery_joules
        ),
        sense="max",
    )
