"""Deterministic bootstrap confidence intervals for seed-averaged metrics.

The campaign runner averages every metric over a handful of independent
seeds; the analysis layer reports how trustworthy those means are.  With
n <= 10 seeds the Student-t interval leans hard on normality, so the
frontier tables use a percentile bootstrap of the mean instead — and,
like everything else in the runner stack, the resampling must be a pure
function of content: the resample index stream derives from
:func:`repro.util.rng.fold_seed` over caller-supplied labels (point
token, objective name), never from global RNG state, so serial runs,
process pools and warm-cache replays all report bit-identical intervals.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.util.rng import fold_seed


def bootstrap_mean_samples(
    values: Sequence[float],
    base_seed: int,
    *labels: object,
    n_resamples: int = 200,
) -> list:
    """Resampled means of ``values``, drawn from a content-derived stream.

    Each resample draws ``len(values)`` observations with replacement
    using ``random.Random(fold_seed(base_seed, *labels))``; the stream
    depends only on the seed and labels, so any process reproduces it.
    """
    values = list(values)
    if not values:
        raise ValueError("bootstrap of an empty sequence")
    if n_resamples <= 0:
        raise ValueError(f"n_resamples must be > 0, got {n_resamples}")
    n = len(values)
    rng = random.Random(fold_seed(base_seed, *labels))
    means = []
    for _ in range(n_resamples):
        total = 0.0
        for _ in range(n):
            total += values[rng.randrange(n)]
        means.append(total / n)
    return means


def bootstrap_ci95(
    values: Sequence[float],
    base_seed: int,
    *labels: object,
    n_resamples: int = 200,
) -> float:
    """Half-width of the 95% percentile-bootstrap interval for the mean.

    Returns 0.0 for single observations (nothing to resample), matching
    :func:`repro.util.stats.confidence_interval_95`'s convention.
    """
    values = list(values)
    if len(values) <= 1:
        if not values:
            raise ValueError("bootstrap_ci95() of an empty sequence")
        return 0.0
    means = sorted(
        bootstrap_mean_samples(values, base_seed, *labels, n_resamples=n_resamples)
    )
    lo = _percentile(means, 0.025)
    hi = _percentile(means, 0.975)
    # Clamp: identical resampled means can differ by one ulp after the
    # percentile interpolation, which would print as a -1e-17 width.
    return max(0.0, (hi - lo) / 2.0)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    position = fraction * (n - 1)
    low = int(position)
    high = min(low + 1, n - 1)
    weight = position - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight
