"""Objectives, constraints and operating points over campaign results.

The trade-off layer interprets a finished campaign as a set of *operating
points* in objective space: each campaign point contributes one vector of
objective values (energy per update, per-hop latency, battery-days, ...)
averaged over its seeds, with a deterministic bootstrap confidence
interval per objective.  Everything downstream — Pareto pruning
(:mod:`repro.analysis.pareto`), knee selection
(:mod:`repro.analysis.selectors`), cross-family comparison
(:mod:`repro.analysis.compare`) — consumes these points, so the
extraction here is the single place where metrics bundles are turned
into numbers.

Determinism: objective means are plain means over the campaign's
bit-identical per-seed metrics, and bootstrap resampling draws from a
:func:`repro.util.rng.fold_seed` stream labelled by the point's canonical
parameter token — a pure function of (spec, point, objective), identical
in any process and for any backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.bootstrap import bootstrap_ci95
from repro.util.canonical import canonical_json

#: Extracts one scalar (or ``None`` where undefined) from a metrics bundle.
MetricFn = Callable[[Any], Optional[float]]

#: Objective orientations.
SENSES = ("min", "max")


@dataclass(frozen=True)
class Objective:
    """One axis of the trade-off: a named, oriented metric.

    ``sense`` declares the *better* direction: ``"min"`` for costs
    (energy, latency), ``"max"`` for benefits (coverage, battery-days).
    Dominance checks normalise through :meth:`oriented`, so mixed-sense
    objective pairs compare correctly.
    """

    name: str
    label: str
    metric: MetricFn
    sense: str = "min"

    def __post_init__(self) -> None:
        if self.sense not in SENSES:
            raise ValueError(f"sense must be one of {SENSES}, got {self.sense!r}")

    def oriented(self, value: float) -> float:
        """``value`` mapped so that smaller is always better."""
        return value if self.sense == "min" else -value


@dataclass(frozen=True)
class Constraint:
    """An epsilon-constraint on a point's mean metric (e.g. reliability).

    Points failing the constraint are excluded from the frontier
    entirely — the paper's "at 99% reliability" qualifier expressed as a
    filter rather than an objective.
    """

    name: str
    metric: MetricFn
    bound: float
    #: ``"ge"``: mean must be >= bound; ``"le"``: mean must be <= bound.
    sense: str = "ge"

    def __post_init__(self) -> None:
        if self.sense not in ("ge", "le"):
            raise ValueError(f"sense must be 'ge' or 'le', got {self.sense!r}")

    def satisfied(self, value: Optional[float]) -> bool:
        """Whether a point's mean metric value passes the constraint."""
        if value is None:
            return False
        return value >= self.bound if self.sense == "ge" else value <= self.bound


@dataclass(frozen=True)
class OperatingPoint:
    """One campaign point in objective space.

    ``values`` are seed-averaged objective values in objective order;
    ``ci95`` the matching bootstrap half-widths; ``samples`` the raw
    per-seed values each mean came from (what the bootstrap resampled).
    """

    params: Tuple[Tuple[str, Any], ...]
    label: str
    values: Tuple[float, ...]
    ci95: Tuple[float, ...]
    samples: Tuple[Tuple[float, ...], ...]

    @property
    def token(self) -> str:
        """Canonical JSON of the parameters: the deterministic tie-breaker."""
        return canonical_json(dict(self.params))

    def params_dict(self) -> Dict[str, Any]:
        """The point's campaign parameters as a plain dict."""
        return dict(self.params)

    def value(self, index: int) -> float:
        """The mean value of objective ``index``."""
        return self.values[index]


def _default_label(params: Mapping[str, Any]) -> str:
    """``p=0.5 q=0.25``-style label from the point's swept parameters."""
    interesting = {
        name: value
        for name, value in params.items()
        if name in ("p", "q") or isinstance(value, (int, float))
    }
    if "p" in params and "q" in params:
        return f"p={params['p']:g} q={params['q']:g}"
    return " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))


def operating_points(
    campaign: Any,
    objectives: Sequence[Objective],
    constraints: Sequence[Constraint] = (),
    where: Optional[Callable[[Mapping[str, Any]], bool]] = None,
    label: Optional[Callable[[Mapping[str, Any]], str]] = None,
    n_resamples: int = 200,
) -> List[OperatingPoint]:
    """Extract the campaign's points into objective space.

    Parameters
    ----------
    campaign:
        A :class:`~repro.runners.campaign.CampaignResult`.
    objectives:
        The objective axes, in output order.
    constraints:
        Epsilon-constraints evaluated on each point's seed-mean metric;
        failing points are dropped (with their whole objective vector).
    where:
        Optional parameter filter (e.g. one scenario family of a
        multi-family campaign).
    label:
        Optional display-label builder from the point's parameters.
    n_resamples:
        Bootstrap resamples per (point, objective) for the ``ci95``
        half-widths; resampling is deterministic per point content.

    Points where any objective is undefined for every seed are skipped,
    mirroring :meth:`CampaignResult.mean_metric`'s None-propagation.
    """
    if not objectives:
        raise ValueError("operating_points() needs at least one objective")
    spec = campaign.spec
    result: List[OperatingPoint] = []
    for params in spec.points():
        if where is not None and not where(params):
            continue
        bundles = campaign.metrics_over_seeds(**params)
        satisfied = True
        for constraint in constraints:
            values = [
                v for v in (constraint.metric(b) for b in bundles) if v is not None
            ]
            mean = sum(values) / len(values) if values else None
            if not constraint.satisfied(mean):
                satisfied = False
                break
        if not satisfied:
            continue
        token = canonical_json(params)
        values_t: List[float] = []
        ci_t: List[float] = []
        samples_t: List[Tuple[float, ...]] = []
        defined = True
        for objective in objectives:
            samples = tuple(
                v for v in (objective.metric(b) for b in bundles) if v is not None
            )
            if not samples:
                defined = False
                break
            values_t.append(sum(samples) / len(samples))
            ci_t.append(
                bootstrap_ci95(
                    samples,
                    spec.base_seed,
                    "bootstrap",
                    token,
                    objective.name,
                    n_resamples=n_resamples,
                )
            )
            samples_t.append(samples)
        if not defined:
            continue
        result.append(
            OperatingPoint(
                params=tuple(sorted(params.items())),
                label=label(params) if label is not None else _default_label(params),
                values=tuple(values_t),
                ci95=tuple(ci_t),
                samples=tuple(samples_t),
            )
        )
    return result
