"""Incremental frontier extraction from a streaming campaign.

``run_campaign(on_point=...)`` delivers each run's typed metrics the
moment it materialises — reused points during the cache scan, computed
points as workers finish them.  :class:`StreamingFrontier` is the
consumer side: feed it those ``(run, metrics)`` events and ask for the
current :class:`~repro.analysis.pareto.Frontier` whenever a panel wants
to redraw::

    stream = StreamingFrontier((latency, energy), constraints=(floor,),
                               base_seed=spec.base_seed)
    result = run_campaign(spec, on_point=stream.on_point)
    frontier = stream.frontier()     # == batch extraction, same bits

Snapshots are deterministic functions of the points fed so far: samples
are ordered by seed index (never arrival order), constraint and
objective means match :func:`~repro.analysis.objectives.operating_points`
exactly, and with ``base_seed`` set the bootstrap confidence intervals
reuse the batch layer's named streams — so the *final* snapshot of a
completed campaign is bit-identical to the batch frontier, whichever
backend computed the points and in whatever order they arrived.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.bootstrap import bootstrap_ci95
from repro.analysis.objectives import (
    Constraint,
    Objective,
    OperatingPoint,
    _default_label,
)
from repro.analysis.pareto import Frontier, pareto_frontier
from repro.util.canonical import canonical_json


class StreamingFrontier:
    """Accumulate streamed campaign points into an updatable frontier.

    Parameters mirror :func:`~repro.analysis.objectives.operating_points`:
    the objective axes, epsilon-constraints, an optional parameter
    filter and label builder.  ``base_seed`` (the campaign spec's) turns
    on the batch layer's deterministic bootstrap half-widths; without it
    snapshots carry zero half-widths (objective means, constraint
    filtering and Pareto membership are unaffected).
    """

    def __init__(
        self,
        objectives: Sequence[Objective],
        constraints: Sequence[Constraint] = (),
        where: Optional[Callable[[Mapping[str, Any]], bool]] = None,
        label: Optional[Callable[[Mapping[str, Any]], str]] = None,
        base_seed: Optional[int] = None,
        n_resamples: int = 200,
    ) -> None:
        if not objectives:
            raise ValueError("StreamingFrontier needs at least one objective")
        self.objectives = tuple(objectives)
        self.constraints = tuple(constraints)
        self.where = where
        self.label = label
        self.base_seed = base_seed
        self.n_resamples = n_resamples
        #: Streamed metrics bundles: token -> {seed_index -> metrics}.
        self._bundles: Dict[str, Dict[int, Any]] = {}
        #: The params behind each token (first arrival wins; identical).
        self._params: Dict[str, Dict[str, Any]] = {}
        #: Points fed so far (post-filter), counting duplicates once.
        self.n_seen = 0

    def on_point(self, run: Any, metrics: Any) -> None:
        """Consume one streamed result (pass this to ``run_campaign``).

        ``run`` is the :class:`~repro.runners.spec.CampaignRun`; points
        rejected by ``where`` are ignored, re-deliveries of a seen
        (point, seed) overwrite with identical bits.
        """
        params = run.params_dict()
        if self.where is not None and not self.where(params):
            return
        token = canonical_json(params)
        bundle = self._bundles.setdefault(token, {})
        if run.seed_index not in bundle:
            self.n_seen += 1
        bundle[run.seed_index] = metrics
        self._params.setdefault(token, params)

    def operating_points(self) -> List[OperatingPoint]:
        """The accumulated points in objective space (current snapshot).

        Constraint filtering, None-skipping and sample ordering follow
        :func:`~repro.analysis.objectives.operating_points`; points are
        emitted in token order so the snapshot is independent of arrival
        order.
        """
        result: List[OperatingPoint] = []
        for token in sorted(self._bundles):
            params = self._params[token]
            bundles = [
                self._bundles[token][index]
                for index in sorted(self._bundles[token])
            ]
            satisfied = True
            for constraint in self.constraints:
                values = [
                    v
                    for v in (constraint.metric(b) for b in bundles)
                    if v is not None
                ]
                mean = sum(values) / len(values) if values else None
                if not constraint.satisfied(mean):
                    satisfied = False
                    break
            if not satisfied:
                continue
            values_t: List[float] = []
            ci_t: List[float] = []
            samples_t: List[Tuple[float, ...]] = []
            defined = True
            for objective in self.objectives:
                samples = tuple(
                    v
                    for v in (objective.metric(b) for b in bundles)
                    if v is not None
                )
                if not samples:
                    defined = False
                    break
                values_t.append(sum(samples) / len(samples))
                if self.base_seed is not None:
                    ci_t.append(
                        bootstrap_ci95(
                            samples,
                            self.base_seed,
                            "bootstrap",
                            token,
                            objective.name,
                            n_resamples=self.n_resamples,
                        )
                    )
                else:
                    ci_t.append(0.0)
                samples_t.append(samples)
            if not defined:
                continue
            result.append(
                OperatingPoint(
                    params=tuple(sorted(params.items())),
                    label=(
                        self.label(params)
                        if self.label is not None
                        else _default_label(params)
                    ),
                    values=tuple(values_t),
                    ci95=tuple(ci_t),
                    samples=tuple(samples_t),
                )
            )
        return result

    def frontier(self) -> Frontier:
        """The Pareto frontier of everything streamed so far."""
        return pareto_frontier(self.operating_points(), self.objectives)

    def __len__(self) -> int:
        """Distinct (point, seed) results accumulated."""
        return self.n_seen
