"""Empirical path-stretch exponents (the Eq. 11 analysis).

Equation 11 bounds broadcast latency by ``L * d**(5/4+o(1))`` via the
loop-erased-random-walk scaling of uniform spanning trees (the paper's
refs [4, 10]); Figures 9-10 then *observe* that at high reliability the
effective exponent collapses to ~1.  This module measures that effective
exponent from simulator output: fit ``log(hops) = alpha * log(d) + c``
over the (distance, mean-hops-travelled) pairs of a campaign.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ideal.simulator import CampaignResult


@dataclass(frozen=True)
class ExponentFit:
    """A fitted power law ``hops ~ distance**alpha``."""

    alpha: float
    intercept: float
    n_points: int
    r_squared: float

    def predicted_hops(self, distance: float) -> float:
        """Hops the fit predicts at ``distance``."""
        return math.exp(self.intercept) * distance**self.alpha


def fit_power_law(points: Sequence[Tuple[float, float]]) -> ExponentFit:
    """Least-squares fit of ``log y = alpha log x + c``.

    Points with non-positive coordinates are rejected (power laws live in
    the positive quadrant).
    """
    if len(points) < 2:
        raise ValueError(f"need at least 2 points to fit, got {len(points)}")
    for x, y in points:
        if x <= 0.0 or y <= 0.0:
            raise ValueError(f"power-law fit needs positive data, got ({x}, {y})")
    logs = [(math.log(x), math.log(y)) for x, y in points]
    n = len(logs)
    mean_x = sum(lx for lx, _ in logs) / n
    mean_y = sum(ly for _, ly in logs) / n
    sxx = sum((lx - mean_x) ** 2 for lx, _ in logs)
    if sxx == 0.0:
        raise ValueError("all x values identical; exponent is undefined")
    sxy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in logs)
    alpha = sxy / sxx
    intercept = mean_y - alpha * mean_x
    ss_res = sum(
        (ly - (alpha * lx + intercept)) ** 2 for lx, ly in logs
    )
    ss_tot = sum((ly - mean_y) ** 2 for _, ly in logs)
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return ExponentFit(
        alpha=alpha, intercept=intercept, n_points=n, r_squared=r_squared
    )


def stretch_exponent(
    campaign: CampaignResult,
    distances: Optional[Sequence[int]] = None,
) -> ExponentFit:
    """The effective hops-vs-distance exponent of one campaign.

    Collects mean hops-travelled at each shortest distance (the Figures
    9-10 metric) and fits the power law.  The paper's observation is that
    this exponent sits near 1 at high reliability, well below the
    ``5/4`` upper bound of Eq. 11 (:data:`LOOP_ERASED_WALK_EXPONENT`).

    Parameters
    ----------
    campaign:
        A finished :class:`~repro.ideal.simulator.CampaignResult`.
    distances:
        Distances to sample; defaults to every distance (>= 2) present in
        the topology with at least one reached node.
    """
    if distances is None:
        present = {
            d for d in campaign.shortest_hops if d is not None and d >= 2
        }
        distances = sorted(present)
    points: List[Tuple[float, float]] = []
    for d in distances:
        mean_hops = campaign.mean_hops_at_distance(d)
        if mean_hops is not None:
            points.append((float(d), mean_hops))
    return fit_power_law(points)
