"""Cross-frontier comparison: hypervolume and frontier-shift summaries.

Once every scenario family (or controller variant) has its own frontier,
the questions become comparative: which family's trade-off curve encloses
more of objective space, and does one frontier *dominate* another —
Klonowski & Pajak's time-vs-energy comparison, and this repo's
adaptive-vs-static question (pareto02), made quantitative.

All comparisons happen in oriented (smaller-is-better) space against a
shared reference point, so mixed-sense objective pairs (latency-min vs
battery-days-max) compare correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.analysis.pareto import Frontier


def shared_reference(
    frontiers: Sequence[Frontier], margin: float = 0.05
) -> Tuple[float, ...]:
    """A reference point weakly dominated by every point of every frontier.

    The nadir (per-objective worst) across all frontiers, pushed out by
    ``margin`` of each objective's observed span (so boundary points
    still enclose positive volume).  Deterministic given the frontiers.
    """
    if not frontiers:
        raise ValueError("shared_reference() needs at least one frontier")
    n_objectives = len(frontiers[0].objectives)
    for frontier in frontiers:
        if len(frontier.objectives) != n_objectives:
            raise ValueError("frontiers have mismatched objective counts")
    vectors = [vec for frontier in frontiers for vec in frontier.oriented()]
    if not vectors:
        raise ValueError("shared_reference() over empty frontiers")
    reference = []
    for j in range(n_objectives):
        worst = max(vec[j] for vec in vectors)
        best = min(vec[j] for vec in vectors)
        span = worst - best
        reference.append(worst + (span if span > 0.0 else abs(worst) or 1.0) * margin)
    return tuple(reference)


def hypervolume(frontier: Frontier, reference: Sequence[float]) -> float:
    """Area of objective space the frontier dominates, up to ``reference``.

    Two-objective exact sweep: points sorted ascending in the first
    oriented objective contribute disjoint strips between consecutive
    x-coordinates.  Points not dominating the reference contribute
    nothing (clipped, not an error), so one shared reference can score
    frontiers of very different quality.
    """
    if len(frontier.objectives) != 2:
        raise ValueError(
            f"hypervolume is implemented for 2 objectives, "
            f"got {len(frontier.objectives)}"
        )
    rx, ry = reference
    vectors = [vec for vec in frontier.oriented() if vec[0] <= rx and vec[1] <= ry]
    if not vectors:
        return 0.0
    vectors.sort()
    area = 0.0
    best_y = ry
    for index, (x, y) in enumerate(vectors):
        next_x = vectors[index + 1][0] if index + 1 < len(vectors) else rx
        best_y = min(best_y, y)
        area += max(0.0, min(next_x, rx) - x) * max(0.0, ry - best_y)
    return area


def coverage_fraction(a: Frontier, b: Frontier, tolerance: float = 0.0) -> float:
    """Fraction of ``b``'s points weakly dominated by some point of ``a``.

    Zitzler's two-set coverage C(a, b): 1.0 means frontier ``a`` matches
    or beats every operating point ``b`` offers; ``tolerance`` (in
    oriented objective units) absorbs metric noise when comparing
    finite-seed estimates.
    """
    if not b.points:
        return 1.0
    a_vectors = a.oriented()
    covered = 0
    for vector in b.oriented():
        relaxed = tuple(value + tolerance for value in vector)
        if any(
            all(c <= r for c, r in zip(candidate, relaxed))
            for candidate in a_vectors
        ):
            covered += 1
    return covered / len(b.points)


def frontier_weakly_dominates(
    a: Frontier, b: Frontier, tolerance: float = 0.0
) -> bool:
    """Whether ``a`` matches-or-beats *every* point of ``b`` (pareto02's claim)."""
    return coverage_fraction(a, b, tolerance) == 1.0


@dataclass(frozen=True)
class FrontierSummary:
    """One frontier's scorecard within a comparison."""

    name: str
    n_points: int
    n_dominated: int
    hypervolume: float
    knee_label: str
    knee_values: Tuple[float, ...]


@dataclass(frozen=True)
class FrontierComparison:
    """Hypervolume scores and pairwise coverage across named frontiers."""

    reference: Tuple[float, ...]
    summaries: Tuple[FrontierSummary, ...]
    #: ``coverage[(a, b)]`` = fraction of b's points a weakly dominates.
    coverage: Mapping[Tuple[str, str], float]

    def summary(self, name: str) -> FrontierSummary:
        """Look up one frontier's scorecard by name."""
        for entry in self.summaries:
            if entry.name == name:
                return entry
        raise KeyError(f"no frontier named {name!r}")

    def best_by_hypervolume(self) -> FrontierSummary:
        """The summary with the largest hypervolume (name-ordered ties)."""
        return max(self.summaries, key=lambda s: (s.hypervolume, s.name))


def compare_frontiers(
    frontiers: Mapping[str, Frontier],
    reference: Optional[Sequence[float]] = None,
    tolerance: float = 0.0,
) -> FrontierComparison:
    """Score every named frontier against the others.

    Names iterate in sorted order, so the comparison is deterministic
    regardless of mapping insertion order.
    """
    from repro.analysis.selectors import knee_index

    if not frontiers:
        raise ValueError("compare_frontiers() needs at least one frontier")
    names = sorted(frontiers)
    ordered = [frontiers[name] for name in names]
    ref = tuple(reference) if reference is not None else shared_reference(ordered)
    summaries = []
    for name in names:
        frontier = frontiers[name]
        knee = frontier.points[knee_index(frontier)]
        summaries.append(
            FrontierSummary(
                name=name,
                n_points=len(frontier.points),
                n_dominated=frontier.n_dominated,
                hypervolume=hypervolume(frontier, ref),
                knee_label=knee.label,
                knee_values=knee.values,
            )
        )
    coverage: Dict[Tuple[str, str], float] = {}
    for a in names:
        for b in names:
            if a != b:
                coverage[(a, b)] = coverage_fraction(
                    frontiers[a], frontiers[b], tolerance
                )
    return FrontierComparison(
        reference=ref, summaries=tuple(summaries), coverage=coverage
    )
