"""Bond percolation sweeps (Newman-Ziff algorithm).

One *sweep* activates every edge of a graph exactly once, in a uniformly
random order, merging endpoints in a union-find structure.  Because cluster
growth is monotone, the first activation count at which a predicate becomes
true (e.g. "the source's cluster covers 90% of nodes") is that run's
critical bond count; dividing by the number of edges gives the critical
*fraction* plotted in Figure 6.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.net.topology import Topology
from repro.util.union_find import UnionFind
from repro.util.validation import check_probability


@dataclass(frozen=True)
class BondSweepResult:
    """Outcome of one bond-percolation sweep.

    Attributes
    ----------
    n_nodes / n_edges:
        Size of the swept graph.
    source_cluster_sizes:
        ``source_cluster_sizes[m]`` is the size of the cluster containing
        the tracked source after the first ``m`` bonds are occupied
        (index 0 = no bonds = 1, the source alone).
    largest_cluster_sizes:
        Same, for the largest cluster in the graph.
    """

    n_nodes: int
    n_edges: int
    source_cluster_sizes: Tuple[int, ...]
    largest_cluster_sizes: Tuple[int, ...]

    def first_bond_count_reaching(self, coverage: float) -> Optional[int]:
        """Smallest occupied-bond count where source coverage >= ``coverage``.

        Returns ``None`` when even the fully-occupied graph never reaches it
        (e.g. a disconnected graph).
        """
        check_probability("coverage", coverage)
        needed = max(1, math.ceil(coverage * self.n_nodes))
        for m, size in enumerate(self.source_cluster_sizes):
            if size >= needed:
                return m
        return None

    def coverage_fraction_at(self, bond_fraction: float) -> float:
        """Source-cluster coverage when ``bond_fraction`` of bonds are open."""
        check_probability("bond_fraction", bond_fraction)
        m = min(self.n_edges, int(round(bond_fraction * self.n_edges)))
        return self.source_cluster_sizes[m] / self.n_nodes


def bond_sweep(
    topology: Topology,
    rng: random.Random,
    source: Optional[int] = None,
) -> BondSweepResult:
    """Run one Newman-Ziff bond sweep over ``topology``.

    Parameters
    ----------
    topology:
        The graph whose edges are activated (typically a
        :class:`~repro.net.topology.GridTopology`).
    rng:
        Randomness for the edge permutation.
    source:
        Node whose cluster is tracked; defaults to the grid centre for
        grids and node 0 otherwise, matching the paper's "source as near
        to the center of the grid as possible".
    """
    if source is None:
        source = _default_source(topology)
    csr = topology.csr
    n_edges = csr.n_edges
    # Shuffling index positions draws exactly the same permutation as
    # shuffling the edge list itself (Fisher-Yates only looks at length),
    # so results stay bit-identical while the edge reorder becomes one
    # vectorized gather from the topology's cached CSR edge arrays.
    order = list(range(n_edges))
    rng.shuffle(order)
    us = csr.edge_u[order].tolist()
    vs = csr.edge_v[order].tolist()
    uf = UnionFind(topology.n_nodes)
    union = uf.union
    find = uf.find
    component_size = uf.component_size
    source_sizes: List[int] = [1]
    largest_sizes: List[int] = [1 if topology.n_nodes else 0]
    append_source = source_sizes.append
    append_largest = largest_sizes.append
    # Track the source's root incrementally: after a merge the old root is
    # at most one parent hop from the new one, so this replaces a full
    # find-from-source per bond with a near-free root check.
    source_root = find(source)
    source_size = 1
    for u, v in zip(us, vs):
        if union(u, v):
            root = find(u)
            if find(source_root) == root:
                source_root = root
                source_size = component_size(root)
        append_source(source_size)
        append_largest(uf.largest_component_size)
    return BondSweepResult(
        n_nodes=topology.n_nodes,
        n_edges=n_edges,
        source_cluster_sizes=tuple(source_sizes),
        largest_cluster_sizes=tuple(largest_sizes),
    )


def coverage_bond_fraction(
    topology: Topology,
    coverage: float,
    rng: random.Random,
    runs: int = 20,
    source: Optional[int] = None,
) -> List[float]:
    """Per-run critical bond fractions for reaching ``coverage``.

    Runs ``runs`` independent sweeps and returns each run's
    ``critical_bond_count / n_edges``.  Aggregate with
    :func:`repro.util.stats.summarize`.  Runs that never reach the coverage
    (impossible on a connected graph) raise :class:`RuntimeError` so silent
    bias is impossible.
    """
    if runs <= 0:
        raise ValueError(f"runs must be > 0, got {runs}")
    fractions: List[float] = []
    for _ in range(runs):
        sweep = bond_sweep(topology, rng, source)
        count = sweep.first_bond_count_reaching(coverage)
        if count is None:
            raise RuntimeError(
                f"sweep never reached coverage {coverage}; is the graph connected?"
            )
        fractions.append(count / sweep.n_edges)
    return fractions


def _default_source(topology: Topology) -> int:
    center = getattr(topology, "center_node", None)
    if callable(center):
        return center()
    return 0
