"""Reliability thresholds and the p-q feasibility frontier.

Connects the percolation machinery to PBBF's knobs:

* :func:`estimate_critical_bond_fraction` reproduces Figure 6 — the
  fraction of bonds that must be open for the source's cluster to cover a
  reliability level (80/90/99/100%) on 10x10 .. 40x40 grids;
* :func:`minimum_q_for_reliability` inverts Remark 1
  (``pedge = 1 - p*(1-q) >= pc``) into the minimum q for a given p;
* :func:`minimum_q_frontier` sweeps p to produce the Figure 7 curves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.net.topology import GridTopology, Topology
from repro.util.stats import Summary, summarize
from repro.util.validation import check_probability


@dataclass(frozen=True)
class ReliabilityThresholds:
    """Critical bond fractions per reliability level for one topology."""

    grid_label: str
    thresholds: Tuple[Tuple[float, Summary], ...]

    def threshold_for(self, reliability: float) -> Summary:
        """Critical bond-fraction summary for ``reliability``."""
        for level, summary in self.thresholds:
            if abs(level - reliability) < 1e-12:
                return summary
        raise KeyError(f"no threshold estimated for reliability {reliability}")


def estimate_critical_bond_fraction(
    topology: Topology,
    reliability_levels: Sequence[float],
    rng: random.Random,
    runs: int = 20,
    grid_label: str = "",
) -> ReliabilityThresholds:
    """Estimate critical bond fractions for several reliability levels.

    A single set of sweeps serves every level (each sweep's occupation
    curve is monotone, so thresholds for all levels can be read from the
    same runs) — the efficiency trick that makes the Newman-Ziff approach
    "fast" in the cited technical report.
    """
    levels = [check_probability("reliability", level) for level in reliability_levels]
    if not levels:
        raise ValueError("reliability_levels must be non-empty")
    per_level: Dict[float, List[float]] = {level: [] for level in levels}
    for _ in range(runs):
        fractions = _sweep_thresholds(topology, levels, rng)
        for level, fraction in zip(levels, fractions):
            per_level[level].append(fraction)
    thresholds = tuple(
        (level, summarize(per_level[level])) for level in levels
    )
    return ReliabilityThresholds(grid_label=grid_label or repr(topology), thresholds=thresholds)


def _sweep_thresholds(
    topology: Topology,
    levels: Sequence[float],
    rng: random.Random,
) -> List[float]:
    """One sweep, thresholds for every level read off the same run."""
    from repro.percolation.bond import bond_sweep  # local to avoid cycle at import

    sweep = bond_sweep(topology, rng)
    fractions: List[float] = []
    for level in levels:
        count = sweep.first_bond_count_reaching(level)
        if count is None:
            raise RuntimeError(
                f"sweep never reached coverage {level}; is the topology connected?"
            )
        fractions.append(count / sweep.n_edges)
    return fractions


def minimum_q_for_reliability(p: float, critical_bond_fraction: float) -> float:
    """Minimum q such that ``pedge = 1 - p*(1-q)`` meets the threshold.

    Solving Remark 1 for q::

        1 - p*(1-q) >= pc
        p*(1-q)     <= 1 - pc
        q           >= 1 - (1 - pc)/p        (for p > 1 - pc)

    For ``p <= 1 - pc`` even ``q = 0`` satisfies the threshold (enough
    broadcasts go through the always-delivered "normal" path).
    """
    p = check_probability("p", p)
    pc = check_probability("critical_bond_fraction", critical_bond_fraction)
    if p == 0.0:
        return 0.0
    return max(0.0, 1.0 - (1.0 - pc) / p)


def minimum_q_frontier(
    p_values: Sequence[float],
    critical_bond_fraction: float,
) -> List[Tuple[float, float]]:
    """The Figure 7 frontier: ``(p, q_min)`` pairs for one reliability level.

    Operating points above the frontier satisfy Remark 1's threshold; points
    below it fall into the unreliable region.
    """
    return [
        (p, minimum_q_for_reliability(p, critical_bond_fraction))
        for p in p_values
    ]


def default_grid_suite(sizes: Sequence[int] = (10, 20, 30, 40)) -> List[GridTopology]:
    """The grid family of Figure 6 (10x10 through 40x40)."""
    return [GridTopology(size) for size in sizes]
