"""Site percolation sweeps.

The gossip-based routing protocol the paper contrasts PBBF against [5]
corresponds to *site* percolation: each node independently decides to relay
(to all neighbours) or to stay silent.  We include the site sweep both as a
baseline for examples and to demonstrate the structural difference Remark 1
relies on (bond thresholds sit below site thresholds on the same lattice).

The Newman-Ziff formulation activates sites one at a time in random order;
an activated site merges with every already-active neighbour.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.net.topology import Topology
from repro.util.union_find import UnionFind
from repro.util.validation import check_probability


@dataclass(frozen=True)
class SiteSweepResult:
    """Outcome of one site-percolation sweep.

    ``largest_cluster_sizes[m]`` is the largest active-cluster size once the
    first ``m`` sites are occupied.
    """

    n_nodes: int
    largest_cluster_sizes: Tuple[int, ...]

    def first_site_count_reaching(self, coverage: float) -> Optional[int]:
        """Smallest active-site count whose largest cluster covers ``coverage``."""
        check_probability("coverage", coverage)
        needed = max(1, math.ceil(coverage * self.n_nodes))
        for m, size in enumerate(self.largest_cluster_sizes):
            if size >= needed:
                return m
        return None


def site_sweep(topology: Topology, rng: random.Random) -> SiteSweepResult:
    """Run one Newman-Ziff site sweep over ``topology``."""
    order = list(topology.nodes())
    rng.shuffle(order)
    uf = UnionFind(topology.n_nodes)
    union = uf.union
    neighbors = topology.neighbors
    active = [False] * topology.n_nodes
    sizes: List[int] = [0]
    append = sizes.append
    # Inactive nodes stay singletons and unions only ever join active
    # sites, so the union-find's O(1) largest-component counter *is* the
    # largest active cluster once any site is active — no per-site find.
    for site in order:
        active[site] = True
        for nbr in neighbors(site):
            if active[nbr]:
                union(site, nbr)
        append(uf.largest_component_size)
    return SiteSweepResult(
        n_nodes=topology.n_nodes,
        largest_cluster_sizes=tuple(sizes),
    )


def coverage_site_fraction(
    topology: Topology,
    coverage: float,
    rng: random.Random,
    runs: int = 20,
) -> List[float]:
    """Per-run critical site fractions for the largest cluster to reach ``coverage``."""
    if runs <= 0:
        raise ValueError(f"runs must be > 0, got {runs}")
    fractions: List[float] = []
    for _ in range(runs):
        sweep = site_sweep(topology, rng)
        count = sweep.first_site_count_reaching(coverage)
        if count is None:
            raise RuntimeError(
                f"sweep never reached coverage {coverage}; is the graph connected?"
            )
        fractions.append(count / topology.n_nodes)
    return fractions
