"""Percolation machinery for PBBF's reliability analysis.

The paper characterizes PBBF reliability as a *bond* percolation problem:
every directed link of the network delivers a given broadcast with
probability ``pedge = 1 - p*(1-q)``, and the broadcast blankets the network
iff ``pedge`` exceeds the topology's critical bond probability (Remark 1).
Gossip-style protocols, by contrast, are *site* percolation (a node either
relays to all neighbours or to none).

This package re-implements the cited Newman-Ziff fast Monte Carlo
algorithm [9]: bonds (or sites) are activated in a random permutation, each
activation is a near-O(1) union-find merge, and every statistic of interest
is read off incrementally — one sweep yields the entire occupation curve.

Modules
-------
* :mod:`repro.percolation.bond` -- bond sweeps and coverage thresholds;
* :mod:`repro.percolation.site` -- site sweeps (gossip baseline);
* :mod:`repro.percolation.threshold` -- the reliability-level thresholds of
  Figure 6 and the p-q feasibility frontier of Figure 7.
"""

from repro.percolation.bond import (
    BondSweepResult,
    bond_sweep,
    coverage_bond_fraction,
)
from repro.percolation.site import SiteSweepResult, coverage_site_fraction, site_sweep
from repro.percolation.threshold import (
    ReliabilityThresholds,
    estimate_critical_bond_fraction,
    minimum_q_frontier,
    minimum_q_for_reliability,
)

__all__ = [
    "BondSweepResult",
    "ReliabilityThresholds",
    "SiteSweepResult",
    "bond_sweep",
    "coverage_bond_fraction",
    "coverage_site_fraction",
    "estimate_critical_bond_fraction",
    "minimum_q_frontier",
    "minimum_q_for_reliability",
    "site_sweep",
]
