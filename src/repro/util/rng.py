"""Named, independently-seeded random streams.

A multi-protocol wireless simulation draws randomness for many unrelated
purposes: PBBF coin flips, MAC backoff slots, node placement, traffic
arrival jitter.  If all of them share one generator, changing the number of
draws in one place (say, adding a retry to the MAC) perturbs every other
source and makes seed-for-seed comparisons between protocol variants
meaningless.

:class:`RandomStreams` hands out one :class:`random.Random` per *named*
stream, each seeded deterministically from ``(root_seed, name)``.  Two
simulations built from the same root seed therefore see identical node
placements and traffic even when their protocols consume different amounts
of randomness — the standard "common random numbers" variance-reduction
technique for paired comparisons.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, Optional

import numpy as np

_MASK64 = (1 << 64) - 1


def fold_seed(base_seed: int, *labels: object) -> int:
    """A stable integer seed from ``base_seed`` and a sequence of labels.

    Labels are stringified and folded with a cheap deterministic string
    hash; quality is irrelevant because the value becomes the root of a
    hashed stream family (:class:`RandomStreams`,
    :func:`hash_to_unit_interval`).  The fold depends only on the label
    *values*, never on execution order, which is what lets campaign
    results be bit-identical across serial and parallel backends.
    """
    key = ":".join(str(label) for label in labels)
    acc = base_seed
    for ch in key:
        acc = (acc * 1000003 + ord(ch)) & 0x7FFFFFFFFFFFFFFF
    return acc


def _splitmix64(x: int) -> int:
    """One splitmix64 step: a well-mixed 64-bit permutation."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def hash_to_unit_interval(seed: int, *keys: int) -> float:
    """Deterministic pseudo-random float in [0, 1) from integer keys.

    Used for *indexed* coin flips — e.g. "was node v awake in frame f?" —
    where the answer must not depend on the order in which the simulation
    happens to ask.  Two calls with the same ``(seed, keys)`` always agree;
    distinct keys give independent-looking values (splitmix64 mixing).
    """
    state = _splitmix64(seed & _MASK64)
    for key in keys:
        state = _splitmix64(state ^ (key & _MASK64))
    return state / float(1 << 64)


_U64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_U64_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_U64_MIX2 = np.uint64(0x94D049BB133111EB)


def _as_uint64(keys: object) -> np.ndarray:
    """View integer keys as uint64 with two's-complement wrap.

    Matches the scalar path's ``key & _MASK64`` for any key in the int64
    range (frame indices, node ids, and the negative per-broadcast salts
    all are).
    """
    arr = np.asarray(keys)
    if arr.dtype == np.uint64:
        return arr
    return arr.astype(np.int64, copy=False).view(np.uint64)


def _splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_splitmix64` (uint64 arithmetic wraps mod 2^64)."""
    x = x + _U64_GAMMA
    x = (x ^ (x >> np.uint64(30))) * _U64_MIX1
    x = (x ^ (x >> np.uint64(27))) * _U64_MIX2
    return x ^ (x >> np.uint64(31))


def hash_to_unit_interval_array(seed: int, *keys: object) -> np.ndarray:
    """Vectorized :func:`hash_to_unit_interval` over arrays of keys.

    Each ``keys`` argument may be an integer array or a scalar; they are
    broadcast together and the splitmix64 chain is applied elementwise, so

    >>> bool(hash_to_unit_interval_array(1, [2], [3])[0]
    ...      == hash_to_unit_interval(1, 2, 3))
    True

    holds element-for-element for any key combination (the parity suite
    asserts this exhaustively).  Used to flip whole frontiers of indexed
    coins — e.g. "which of these 400 nodes are awake in frame f?" — in one
    shot instead of one Python call per node.
    """
    scalar_state: Optional[int] = _splitmix64(seed & _MASK64)
    state: Optional[np.ndarray] = None
    for key in keys:
        if isinstance(key, int) and state is None:
            # Fold leading scalar keys without touching arrays: exact same
            # chain as the scalar function, zero per-element cost.
            scalar_state = _splitmix64(scalar_state ^ (key & _MASK64))
        elif state is None:
            state = _splitmix64_array(np.uint64(scalar_state) ^ _as_uint64(key))
            scalar_state = None
        elif isinstance(key, int):
            state = _splitmix64_array(state ^ np.uint64(key & _MASK64))
        else:
            state = _splitmix64_array(state ^ _as_uint64(key))
    if state is None:
        state = np.asarray(np.uint64(scalar_state))
    # Exact power-of-two scaling: bit-identical to ``state / float(1 << 64)``.
    return state.astype(np.float64) * 2.0**-64


class RandomStreams:
    """A family of independent named random generators.

    Parameters
    ----------
    root_seed:
        Any integer.  The same root seed always reproduces the same family
        of streams.

    Examples
    --------
    >>> streams = RandomStreams(7)
    >>> placement = streams.stream("placement")
    >>> backoff = streams.stream("mac.backoff")
    >>> placement is streams.stream("placement")
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        if isinstance(root_seed, bool) or not isinstance(root_seed, int):
            raise TypeError(f"root_seed must be an int, got {root_seed!r}")
        self._root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this family was built from."""
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"stream name must be a non-empty string, got {name!r}")
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child family whose root derives from ``(seed, name)``.

        Used to give each simulation *run* in a sweep its own stream family
        while keeping the whole sweep a pure function of one root seed.
        """
        return RandomStreams(self._derive_seed(name))

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def _derive_seed(self, name: str) -> int:
        payload = f"{self._root_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(root_seed={self._root_seed}, streams={sorted(self._streams)})"
