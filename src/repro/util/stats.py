"""Summary statistics for experiment aggregation.

The experiment harness repeats every simulation point over several seeds and
reports mean plus a 95% confidence interval, matching the paper's
"each data point is averaged over ten runs" methodology.  These helpers are
deliberately dependency-light (no scipy import at module scope) so that the
core library stays importable in minimal environments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: Two-sided 97.5% standard-normal quantile, used for large-sample CIs.
_Z_95 = 1.959963984540054

#: Two-sided 97.5% Student-t quantiles for small sample sizes (df 1..30).
_T_95 = {
    1: 12.7062, 2: 4.3027, 3: 3.1824, 4: 2.7764, 5: 2.5706,
    6: 2.4469, 7: 2.3646, 8: 2.3060, 9: 2.2622, 10: 2.2281,
    11: 2.2010, 12: 2.1788, 13: 2.1604, 14: 2.1448, 15: 2.1314,
    16: 2.1199, 17: 2.1098, 18: 2.1009, 19: 2.0930, 20: 2.0860,
    21: 2.0796, 22: 2.0739, 23: 2.0687, 24: 2.0639, 25: 2.0595,
    26: 2.0555, 27: 2.0518, 28: 2.0484, 29: 2.0452, 30: 2.0423,
}


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("mean() of an empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Sample (n-1) standard deviation; 0.0 for sequences of length 1."""
    values = list(values)
    if not values:
        raise ValueError("sample_std() of an empty sequence")
    if len(values) == 1:
        return 0.0
    centre = mean(values)
    variance = sum((v - centre) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance)


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the two-sided 95% CI for the mean of ``values``.

    Uses Student-t quantiles for n <= 31 and the normal quantile beyond.
    Returns 0.0 for single observations.
    """
    values = list(values)
    if not values:
        raise ValueError("confidence_interval_95() of an empty sequence")
    n = len(values)
    if n == 1:
        return 0.0
    quantile = _T_95.get(n - 1, _Z_95)
    return quantile * sample_std(values) / math.sqrt(n)


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary for one aggregated measurement."""

    mean: float
    ci95: float
    n: int
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` from raw per-run observations."""
    values = list(values)
    if not values:
        raise ValueError("summarize() of an empty sequence")
    return Summary(
        mean=mean(values),
        ci95=confidence_interval_95(values),
        n=len(values),
        minimum=min(values),
        maximum=max(values),
    )


class SeriesAccumulator:
    """Accumulates ``(x, value)`` observations into per-x summaries.

    The figure harness sweeps an x-axis (q, Δ, grid size, ...) over several
    seeds; this class groups the repeated observations and produces the
    plotted series.

    Examples
    --------
    >>> acc = SeriesAccumulator()
    >>> acc.add(0.1, 2.0)
    >>> acc.add(0.1, 4.0)
    >>> acc.add(0.2, 5.0)
    >>> [(x, s.mean) for x, s in acc.series()]
    [(0.1, 3.0), (0.2, 5.0)]
    """

    def __init__(self) -> None:
        self._observations: Dict[float, List[float]] = {}

    def add(self, x: float, value: float) -> None:
        """Record one observation of ``value`` at x-coordinate ``x``."""
        if math.isnan(value):
            raise ValueError(f"refusing to accumulate NaN at x={x}")
        self._observations.setdefault(x, []).append(value)

    def extend(self, x: float, values: Iterable[float]) -> None:
        """Record several observations at the same x-coordinate."""
        for value in values:
            self.add(x, value)

    def series(self) -> List[Tuple[float, Summary]]:
        """Return ``(x, Summary)`` pairs sorted by x."""
        return [(x, summarize(vals)) for x, vals in sorted(self._observations.items())]

    def xs(self) -> List[float]:
        """Sorted x-coordinates observed so far."""
        return sorted(self._observations)

    def is_empty(self) -> bool:
        """True when nothing has been accumulated yet."""
        return not self._observations
