"""The canonical JSON wire format shared by every content-hashing layer.

Scenario tokens (:mod:`repro.scenarios`) are embedded verbatim inside
campaign run-key payloads (:mod:`repro.runners.spec`), so both layers
must serialize through one function: if their formats ever diverged,
every cached scenario entry would silently re-key.  It lives here (not
in either consumer) because scenarios deliberately never imports the
runner.
"""

from __future__ import annotations

import json
from typing import Any


def canonical_json(obj: Any) -> str:
    """Key-sorted, whitespace-free JSON: the hashing wire format."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))
