"""Shared low-level utilities for the PBBF reproduction.

This package holds the pieces that every other layer leans on but that have
no sensor-network semantics of their own:

* :mod:`repro.util.validation` -- argument checking helpers that raise
  uniform, descriptive errors.
* :mod:`repro.util.rng` -- named, independently-seeded random streams so
  that simulations are reproducible and individual noise sources can be
  replayed in isolation.
* :mod:`repro.util.stats` -- tiny summary-statistics helpers (mean,
  confidence intervals, series aggregation) used by the experiment harness.
* :mod:`repro.util.union_find` -- disjoint-set forest used by the
  Newman-Ziff percolation sweep.
"""

from repro.util.rng import RandomStreams, hash_to_unit_interval
from repro.util.stats import (
    SeriesAccumulator,
    Summary,
    confidence_interval_95,
    mean,
    summarize,
)
from repro.util.union_find import UnionFind
from repro.util.validation import (
    check_in_closed_unit_interval,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RandomStreams",
    "SeriesAccumulator",
    "Summary",
    "UnionFind",
    "check_in_closed_unit_interval",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "confidence_interval_95",
    "hash_to_unit_interval",
    "mean",
    "summarize",
]
