"""Uniform argument validation helpers.

Every public constructor in the library validates its inputs through these
functions so that a bad parameter fails fast with a message naming the
offending argument, rather than surfacing later as a confusing simulation
artifact (e.g. a negative sleep time silently producing negative energy).
"""

from __future__ import annotations

import math
from typing import Any


def _check_real(name: str, value: Any) -> float:
    """Return ``value`` as a float, rejecting non-numeric and NaN inputs."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    result = float(value)
    if math.isnan(result):
        raise ValueError(f"{name} must not be NaN")
    return result


def check_probability(name: str, value: Any) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``.

    Returns the value as a ``float``.  Raises :class:`ValueError` (range) or
    :class:`TypeError` (type) otherwise.
    """
    result = _check_real(name, value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result}")
    return result


def check_in_closed_unit_interval(name: str, value: Any) -> float:
    """Alias of :func:`check_probability` for non-probability fractions."""
    return check_probability(name, value)


def check_positive(name: str, value: Any) -> float:
    """Validate that ``value`` is a strictly positive real number."""
    result = _check_real(name, value)
    if not result > 0.0:
        raise ValueError(f"{name} must be > 0, got {result}")
    return result


def check_non_negative(name: str, value: Any) -> float:
    """Validate that ``value`` is a real number >= 0."""
    result = _check_real(name, value)
    if result < 0.0:
        raise ValueError(f"{name} must be >= 0, got {result}")
    return result


def check_positive_int(name: str, value: Any) -> int:
    """Validate that ``value`` is a strictly positive integer."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative_int(name: str, value: Any) -> int:
    """Validate that ``value`` is an integer >= 0."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value
