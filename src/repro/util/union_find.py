"""Disjoint-set forest (union-find) with size tracking.

This is the data structure at the heart of the Newman-Ziff fast Monte Carlo
percolation algorithm (paper reference [9]): bonds are added to the lattice
one at a time and each addition is a near-O(1) ``union``; cluster sizes are
maintained incrementally so coverage thresholds can be read off without
re-scanning the lattice.

Implements union by size with full path compression, giving the usual
inverse-Ackermann amortized complexity.
"""

from __future__ import annotations

from typing import List


class UnionFind:
    """Disjoint sets over the integers ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of elements.  Each starts in its own singleton set.
    """

    def __init__(self, n: int) -> None:
        if isinstance(n, bool) or not isinstance(n, int):
            raise TypeError(f"n must be an int, got {n!r}")
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._parent: List[int] = list(range(n))
        self._size: List[int] = [1] * n
        self._n_components = n
        self._max_size = 1 if n else 0

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Current number of disjoint sets."""
        return self._n_components

    @property
    def largest_component_size(self) -> int:
        """Size of the largest set (0 for an empty structure)."""
        return self._max_size

    def find(self, x: int) -> int:
        """Return the canonical representative of ``x``'s set."""
        self._check_index(x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the walk directly at root.
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns ``True`` when a merge happened, ``False`` when the two were
        already in the same set (idempotence).
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        # Union by size: hang the smaller tree beneath the larger.
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        if self._size[root_a] > self._max_size:
            self._max_size = self._size[root_a]
        self._n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        """Number of elements in the set containing ``x``."""
        return self._size[self.find(x)]

    def _check_index(self, x: int) -> None:
        if isinstance(x, bool) or not isinstance(x, int):
            raise TypeError(f"element must be an int, got {x!r}")
        if not 0 <= x < len(self._parent):
            raise IndexError(f"element {x} out of range [0, {len(self._parent)})")
