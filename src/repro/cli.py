"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    pbbf-experiments list
    pbbf-experiments scenarios
    pbbf-experiments run fig08 [--scale fast|full] [--jobs N] [--progress]
    pbbf-experiments run-all [--scale fast|full] [--out results.txt]
                             [--jobs N] [--cache-dir DIR] [--no-cache]
    pbbf-experiments cache stats [--cache-dir DIR] [--cache-tier sqlite]
    pbbf-experiments cache purge [--cache-dir DIR]
                                 [--max-age-days N] [--max-size-mb M]
    pbbf-experiments worker --queue DIR [--linger-s S] [--block N]
    pbbf-experiments queue status --queue DIR [--window-s S]
    pbbf-experiments queue compact --queue DIR [--heartbeat-max-age-s S]
    pbbf-experiments trace export [--telemetry DIR] [--out trace.json]
    pbbf-experiments pareto [--scale fast|full] [--simulator ideal|detailed]
                            [--family grid] [--coverage 0.9] [--lifetime]
                            [--latency-budget S] [--watch-frontier]

(Equivalently: ``python -m repro.cli ...``.)

Execution flags plug into the campaign runner (:mod:`repro.runners`):
``--jobs N`` fans simulation points out over N worker processes
(bit-identical to ``--jobs 1``), and results are cached on disk by
content hash — a repeated invocation recomputes nothing unless
parameters changed.  ``--no-cache`` forces fresh simulation;
``--cache-dir`` relocates the cache (default ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``); ``--cache-max-size-mb`` (or
``$REPRO_CACHE_MAX_MB``) arms the evict-on-insert size budget.
``--backend sharded [--queue DIR]`` fans the campaign out through an
on-disk work queue that ``pbbf-experiments worker --queue DIR``
processes on other machines can join, and ``--cache-tier sqlite``
serves warm campaigns from batched SQLite reads — results are
bit-identical on every backend and tier.  ``--telemetry [DIR]`` (or
``$REPRO_TELEMETRY``) records structured spans/counters/events as JSONL
under DIR and prints a metrics summary at exit; ``trace export`` turns
the logs into a Perfetto-loadable Chrome trace, and ``queue status``
shows a live sharded-queue snapshot.  Telemetry never perturbs results:
campaign outputs are bit-identical with it on, off, or crashing
mid-write.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.experiments import Scale, all_experiment_ids, get_experiment
from repro.runners import FailurePolicy, execution, get_stats, reset_stats


def _scale_from_name(name: str) -> Scale:
    if name == "full":
        return Scale.full()
    if name == "fast":
        return Scale.fast()
    raise argparse.ArgumentTypeError(f"unknown scale {name!r} (use fast or full)")


def _positive_jobs(value: str) -> int:
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"--jobs must be an integer, got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"--jobs must be >= 1, got {jobs}")
    return jobs


def _positive_block(value: str) -> int:
    try:
        block = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--lease-block must be an integer, got {value!r}"
        )
    if block < 1:
        raise argparse.ArgumentTypeError(f"--lease-block must be >= 1, got {block}")
    return block


def _nonnegative_int(value: str) -> int:
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--max-retries must be an integer, got {value!r}"
        )
    if count < 0:
        raise argparse.ArgumentTypeError(f"--max-retries must be >= 0, got {count}")
    return count


def _positive_seconds(value: str) -> float:
    try:
        seconds = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--task-timeout-s must be a number, got {value!r}"
        )
    if seconds <= 0:
        raise argparse.ArgumentTypeError(
            f"--task-timeout-s must be > 0, got {seconds:g}"
        )
    return seconds


def _nonnegative_mb(value: str) -> float:
    try:
        budget = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--cache-max-size-mb must be a number, got {value!r}"
        )
    if budget < 0:
        raise argparse.ArgumentTypeError(
            f"--cache-max-size-mb must be >= 0, got {budget:g}"
        )
    return budget


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_positive_jobs, default=1,
                        help="worker processes for simulation points "
                             "(default 1: serial; results are identical)")
    parser.add_argument("--backend", choices=("auto", "serial", "pool", "sharded"),
                        default="auto",
                        help="execution backend: auto (serial or pool from "
                             "--jobs; default), serial, pool, or sharded "
                             "(fan out through an on-disk work queue that "
                             "`pbbf-experiments worker` processes on other "
                             "machines can join; results are identical on "
                             "all of them)")
    parser.add_argument("--queue", default=None, metavar="DIR",
                        help="work-queue directory for --backend sharded "
                             "(default: a private temporary queue; point "
                             "it at a shared directory to let workers on "
                             "other machines join)")
    parser.add_argument("--lease-block", type=_positive_block, default=1,
                        metavar="N",
                        help="points a sharded-backend worker claims (and "
                             "completes) per queue transaction (default 1; "
                             "larger blocks amortize queue I/O over many "
                             "points for million-point campaigns — a "
                             "mid-block worker crash still re-queues only "
                             "its unfinished points)")
    parser.add_argument("--object-store", action="store_true",
                        help="store large flat-metrics payloads once in a "
                             "content-addressed object store and reference "
                             "them by hash from queue rows, journal lines "
                             "and both cache tiers (results are "
                             "bit-identical; references stay readable "
                             "after the flag is dropped)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory "
                             "(default ~/.cache/repro or $REPRO_CACHE_DIR)")
    parser.add_argument("--cache-tier", choices=("file", "sqlite"),
                        default="file",
                        help="result-cache tier: file (one JSON entry per "
                             "point; default) or sqlite (batched reads and "
                             "concurrent-writer-safe writes through one "
                             "WAL database, write-through to the file "
                             "layer)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache entirely")
    parser.add_argument("--cache-max-size-mb", type=_nonnegative_mb, default=None,
                        help="evict-on-insert cache budget: writes that "
                             "push the cache past this many MiB trigger "
                             "the oldest-first purge automatically "
                             "(default: $REPRO_CACHE_MAX_MB, else "
                             "unbudgeted)")
    parser.add_argument("--no-fast-path", action="store_true",
                        help="use the scalar reference simulator kernels "
                             "instead of the vectorized fast path "
                             "(results are bit-identical; this is an "
                             "escape hatch and parity-debugging aid)")
    parser.add_argument("--no-detailed-fast-path", action="store_true",
                        help="use the event-heap reference loop for "
                             "detailed-simulator runs instead of the "
                             "seed-batched kernel (results are "
                             "bit-identical; escape hatch and "
                             "parity-debugging aid)")
    parser.add_argument("--progress", action="store_true",
                        help="print periodic campaign progress lines "
                             "(completed/total with cached vs computed) "
                             "to stderr")
    parser.add_argument("--resume", action="store_true",
                        help="replay the campaign journals an interrupted "
                             "invocation left beside the cache and "
                             "simulate only the remaining points")
    parser.add_argument("--telemetry", nargs="?", const="telemetry",
                        default=None, metavar="DIR",
                        help="record structured telemetry (phase spans, "
                             "queue/retry events, cache counters) as JSONL "
                             "under DIR (default ./telemetry; or set "
                             "$REPRO_TELEMETRY) and print a metrics "
                             "summary at exit; results are bit-identical "
                             "with telemetry on or off")
    parser.add_argument("--max-retries", type=_nonnegative_int, default=None,
                        help="re-attempts per simulation task after a "
                             "failure (worker crash, hang past the "
                             "timeout, invalid result) before the "
                             "exhaustion action applies (default 3)")
    parser.add_argument("--task-timeout-s", type=_positive_seconds,
                        default=None,
                        help="wall-clock budget per simulation task; a "
                             "task past it counts as one failed attempt "
                             "and is retried (default: no timeout)")
    parser.add_argument("--on-exhausted",
                        choices=("raise", "skip", "degrade"), default=None,
                        help="what to do with a task that stays failed "
                             "after every retry: raise (abort after the "
                             "rest of the campaign completes; default), "
                             "skip (record the failure and keep going), "
                             "or degrade (one last in-process attempt on "
                             "the reference kernels)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pbbf-experiments",
        description="Regenerate the tables and figures of the PBBF paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every experiment id")

    sub.add_parser(
        "scenarios",
        help="list registered topology families and source policies",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk campaign result cache"
    )
    cache.add_argument("action", choices=("stats", "purge"),
                       help="stats: entry counts and sizes; "
                            "purge: delete stored entries (all of them, "
                            "or by age/size with the flags below)")
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory to operate on "
                            "(default ~/.cache/repro or $REPRO_CACHE_DIR)")
    cache.add_argument("--max-age-days", type=float, default=None,
                       help="purge only: evict entries older than this "
                            "many days (by file modification time)")
    cache.add_argument("--max-size-mb", type=float, default=None,
                       help="purge only: evict oldest entries until the "
                            "cache fits this many megabytes")
    cache.add_argument("--cache-tier", choices=("file", "sqlite"),
                       default="file",
                       help="operate on the file layer (default) or the "
                            "SQLite tier (which cascades to the file "
                            "layer)")

    worker = sub.add_parser(
        "worker",
        help="run a work-queue worker for a sharded campaign "
             "(started on any machine sharing the queue/cache directory)",
    )
    worker.add_argument("--queue", required=True, metavar="DIR",
                        help="the campaign's work-queue directory "
                             "(the parent's `run ... --backend sharded "
                             "--queue DIR`)")
    worker.add_argument("--poll-s", type=float, default=0.05,
                        help="idle sleep between claim attempts "
                             "(default 0.05s)")
    worker.add_argument("--linger-s", type=float, default=0.0,
                        help="keep polling this long after the queue "
                             "drains, for long-lived shared queues "
                             "(default 0: exit once drained)")
    worker.add_argument("--block", type=_positive_block, default=None,
                        metavar="N",
                        help="points to claim per queue transaction "
                             "(default: the block size the campaign "
                             "parent published in the queue config)")

    queue = sub.add_parser(
        "queue",
        help="inspect a sharded campaign's work queue "
             "(live depth, worker heartbeats, completion-rate ETA)",
    )
    queue.add_argument("action", choices=("status", "compact"),
                       help="status: one snapshot of task counts, per-"
                            "worker heartbeat ages and the recent "
                            "completion rate with an ETA; "
                            "compact: drop completed rows, sweep dead "
                            "heartbeats and unreferenced objects, and "
                            "reclaim the freed database pages")
    queue.add_argument("--queue", required=True, metavar="DIR",
                       help="the campaign's work-queue directory")
    queue.add_argument("--window-s", type=float, default=60.0,
                       help="completion-rate window in seconds "
                            "(default 60)")
    queue.add_argument("--heartbeat-max-age-s", type=float, default=3600.0,
                       help="compact only: drop worker heartbeat rows "
                            "not refreshed within this many seconds "
                            "(default 3600)")

    trace = sub.add_parser(
        "trace",
        help="export recorded telemetry as a Chrome trace-event file "
             "(load in Perfetto / chrome://tracing)",
    )
    trace.add_argument("action", choices=("export",),
                       help="export: convert a telemetry directory's "
                            "JSONL event logs into one trace file")
    trace.add_argument("--telemetry", default=None, metavar="DIR",
                       help="telemetry directory to export "
                            "(default $REPRO_TELEMETRY)")
    trace.add_argument("--out", default="trace.json", metavar="FILE",
                       help="output trace file (default trace.json)")

    pareto = sub.add_parser(
        "pareto",
        help="extract the energy-latency Pareto frontier from a campaign "
             "and select operating points",
    )
    pareto.add_argument("--scale", type=_scale_from_name, default=Scale.fast(),
                        help="fast (default) or full (paper scale)")
    pareto.add_argument("--simulator", choices=("ideal", "detailed"),
                        default="ideal",
                        help="which simulator's campaign to extract the "
                             "frontier from: ideal (per-hop latency vs "
                             "energy, coverage floor; default) or "
                             "detailed (end-to-end update latency vs "
                             "energy, delivery floor, the Figures 13-16 "
                             "q-sweep campaign)")
    pareto.add_argument("--family", default=None,
                        help="scenario family to analyse (default grid; "
                             "see `pbbf-experiments scenarios`; ideal "
                             "simulator only)")
    pareto.add_argument("--coverage", type=float, default=None,
                        help="reliability floor: mean coverage (ideal) or "
                             "updates-received fraction (detailed) "
                             "(default: the scale's pareto_coverage / "
                             "pareto_delivery)")
    pareto.add_argument("--lifetime", action="store_true",
                        help="denominate energy as projected battery-days "
                             "(AA pair) instead of joules per update")
    pareto.add_argument("--latency-budget", type=float, default=None,
                        help="also report the cheapest operating point "
                             "with latency at or below this bound "
                             "(seconds, per-hop for ideal / end-to-end "
                             "for detailed; epsilon-constraint selection)")
    pareto.add_argument("--watch-frontier", action="store_true",
                        help="redraw the frontier and knee live on stderr "
                             "as points stream in (the final stdout table "
                             "is unchanged and bit-identical)")
    _add_execution_flags(pareto)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="e.g. fig08, table1")
    run.add_argument("--scale", type=_scale_from_name, default=Scale.fast(),
                     help="fast (default) or full (paper scale)")
    run.add_argument("--chart", action="store_true",
                     help="also draw an ASCII chart of the series")
    run.add_argument("--profile", action="store_true",
                     help="wrap the regeneration in cProfile and print a "
                          "per-phase (realize/simulate/analyze/cache) "
                          "time table")
    _add_execution_flags(run)

    run_all = sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--scale", type=_scale_from_name, default=Scale.fast(),
                         help="fast (default) or full (paper scale)")
    run_all.add_argument("--out", default=None,
                         help="also write the report to this file")
    run_all.add_argument("--profile", action="store_true",
                         help="wrap every regeneration in cProfile and "
                              "print one per-phase (realize/simulate/"
                              "analyze/cache) time table at the end")
    _add_execution_flags(run_all)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in all_experiment_ids():
            spec = get_experiment(experiment_id)
            print(f"{experiment_id:8s}  [section {spec.section}]  {spec.title}")
        return 0
    if args.command == "scenarios":
        return _run_scenarios()
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "queue":
        return _run_queue(args)
    if args.command == "trace":
        return _run_trace(args)
    telemetry_dir = args.telemetry or os.environ.get("REPRO_TELEMETRY")
    if telemetry_dir:
        from repro.obs import install_recorder

        install_recorder(telemetry_dir, role="parent")
    try:
        with execution(
            jobs=args.jobs,
            backend=args.backend,
            queue_dir=args.queue,
            cache_dir=args.cache_dir,
            cache_tier=args.cache_tier,
            use_cache=not args.no_cache,
            cache_max_size_mb=args.cache_max_size_mb,
            fast_path=not args.no_fast_path,
            detailed_fast_path=not args.no_detailed_fast_path,
            progress=_progress_printer() if args.progress else None,
            failure_policy=_failure_policy_from(args),
            resume=args.resume,
            lease_block=args.lease_block,
            object_store=args.object_store,
            telemetry_dir=telemetry_dir,
        ):
            if args.command == "run":
                return _run_one(args)
            if args.command == "pareto":
                return _run_pareto(args)
            return _run_all(args)
    finally:
        if telemetry_dir:
            _close_telemetry(telemetry_dir)


def _close_telemetry(telemetry_dir: str) -> None:
    """Flush the recorder and print the end-of-run metrics summary.

    Runs in a ``finally`` so an interrupted campaign still reports what
    its telemetry captured; stderr, so stdout stays the deterministic
    report.
    """
    from repro.obs import aggregate_metrics, render_metrics_table, reset_recorder

    reset_recorder()
    try:
        summary = aggregate_metrics(telemetry_dir)
    except OSError:  # pragma: no cover - unreadable directory
        return
    if not summary["n_records"]:
        return
    for line in render_metrics_table(summary):
        print(line, file=sys.stderr)


def _failure_policy_from(args: argparse.Namespace) -> Optional[FailurePolicy]:
    """A policy from the retry flags, or ``None`` (built-in defaults)."""
    if (
        args.max_retries is None
        and args.task_timeout_s is None
        and args.on_exhausted is None
    ):
        return None
    defaults = FailurePolicy()
    return FailurePolicy(
        max_retries=(
            args.max_retries
            if args.max_retries is not None
            else defaults.max_retries
        ),
        timeout_s=args.task_timeout_s,
        on_exhausted=(
            args.on_exhausted
            if args.on_exhausted is not None
            else defaults.on_exhausted
        ),
    )


def _progress_printer(min_interval: float = 1.0):
    """A progress callback printing throttled lines to stderr.

    Campaigns fire one callback per completed point; printing each would
    swamp small terminals, so lines are rate-limited to one per
    ``min_interval`` seconds — except the final one, which always prints.
    Each line breaks completions down (cached vs computed, plus failed
    and retried tasks when the failure machinery fired) and carries an
    ETA extrapolated from the campaign's own completion rate.
    """
    from repro.obs import format_duration

    last = 0.0
    started: Optional[float] = None

    def progress(completed: int, total: int, cached: int, computed: int) -> None:
        nonlocal last, started
        now = time.monotonic()
        if started is None:
            started = now
        if completed < total and now - last < min_interval:
            return
        last = now
        stats = get_stats()
        extra = ""
        if stats.failed:
            extra += f", {stats.failed} failed"
        if stats.retried:
            extra += f", {stats.retried} retried"
        eta = ""
        elapsed = now - started
        if 0 < completed < total and elapsed > 0:
            rate = completed / elapsed
            if rate > 0:
                eta = f"; ETA {format_duration((total - completed) / rate)}"
        print(
            f"  campaign progress: {completed}/{total} points "
            f"({cached} cached, {computed} computed{extra}){eta}",
            file=sys.stderr,
        )

    return progress


def _run_scenarios() -> int:
    """List the registered topology families and source policies."""
    from repro.scenarios import SOURCE_POLICIES, available_families

    print("topology families (ScenarioSpec.build(family, params, ...)):")
    for family in available_families():
        defaults = ", ".join(f"{k}={v!r}" for k, v in family.defaults)
        suffix = f"  [defaults: {defaults}]" if defaults else ""
        print(f"  {family.name:12s} {family.description}{suffix}")
    print(f"source policies: {', '.join(SOURCE_POLICIES)}")
    print(
        "perturbations: failure_fraction (pre-broadcast node failures), "
        "failure_times (mid-run death schedule: fraction @ [start, end] "
        "window), clock_skew (per-node sleep-schedule offsets, "
        "half-normal std)"
    )
    return 0


def _format_bytes(n: int) -> str:
    """Human-readable byte count (binary units)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(n)} B"  # pragma: no cover - unreachable


def _run_cache(args: argparse.Namespace) -> int:
    """The ``cache stats`` / ``cache purge`` subcommand."""
    from repro.runners import ResultCache, SQLiteCacheTier

    if args.cache_tier == "sqlite":
        store = SQLiteCacheTier(args.cache_dir)
    else:
        store = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        print(f"cache directory: {stats.root}")
        print(
            f"entries: {stats.n_entries} "
            f"({_format_bytes(stats.total_bytes)}, {stats.n_stale} stale)"
        )
        if stats.n_quarantined:
            print(
                f"quarantined: {stats.n_quarantined} corrupt entries moved "
                "aside (removed by `cache purge`)"
            )
        if stats.n_journals:
            print(
                f"journals: {stats.n_journals} orphaned campaign journals "
                f"({_format_bytes(stats.journal_bytes)}; interrupted "
                "campaigns resume from these — swept by `cache purge` "
                "[--max-age-days N])"
            )
        if stats.n_objects:
            print(
                f"objects: {stats.n_objects} content-addressed payloads "
                f"({_format_bytes(stats.object_bytes)}; unreferenced ones "
                "swept by `cache purge`)"
            )
        for kind, count in stats.by_kind:
            print(f"  {kind:12s} {count}")
        return 0
    if args.max_age_days is not None and args.max_age_days < 0:
        print("--max-age-days must be >= 0", file=sys.stderr)
        return 2
    if args.max_size_mb is not None and args.max_size_mb < 0:
        print("--max-size-mb must be >= 0", file=sys.stderr)
        return 2
    removed = store.purge(
        max_age_days=args.max_age_days, max_size_mb=args.max_size_mb
    )
    criteria = []
    if args.max_age_days is not None:
        criteria.append(f"older than {args.max_age_days:g} days")
    if args.max_size_mb is not None:
        criteria.append(f"shrunk to {args.max_size_mb:g} MiB")
    suffix = f" ({', '.join(criteria)})" if criteria else ""
    print(f"purged {removed} cache entries from {store.root}{suffix}")
    if removed.tmp_swept:
        print(
            f"swept {removed.tmp_swept} stale tmp files from crashed "
            f"writers ({_format_bytes(removed.tmp_bytes)} reclaimed)"
        )
    if removed.corrupt_swept:
        print(f"removed {removed.corrupt_swept} quarantined corrupt entries")
    if removed.journals_swept:
        print(
            f"swept {removed.journals_swept} orphaned campaign journals "
            f"({_format_bytes(removed.journal_bytes)} reclaimed)"
        )
    if removed.objects_swept:
        print(
            f"swept {removed.objects_swept} unreferenced objects "
            f"({_format_bytes(removed.object_bytes)} reclaimed)"
        )
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    """The ``worker`` subcommand: serve one sharded campaign's queue."""
    from repro.runners.queue import new_worker_id, worker_loop

    worker_id = new_worker_id()
    print(f"worker {worker_id} serving queue at {args.queue}", file=sys.stderr)
    try:
        completed = worker_loop(
            args.queue,
            worker_id=worker_id,
            poll_s=args.poll_s,
            linger_s=args.linger_s,
            block=args.block,
        )
    except KeyboardInterrupt:
        print(f"worker {worker_id} interrupted", file=sys.stderr)
        return 130
    print(f"worker {worker_id} done: {completed} tasks", file=sys.stderr)
    return 0


def _run_queue(args: argparse.Namespace) -> int:
    """The ``queue status`` / ``queue compact`` subcommands."""
    from pathlib import Path

    from repro.obs import render_queue_status
    from repro.runners.queue import QUEUE_FILENAME, WorkQueue

    if args.window_s <= 0:
        print("--window-s must be > 0", file=sys.stderr)
        return 2
    queue_dir = Path(args.queue)
    if not (queue_dir / QUEUE_FILENAME).exists():
        print(f"no work queue at {queue_dir}", file=sys.stderr)
        return 1
    if args.action == "compact":
        if args.heartbeat_max_age_s < 0:
            print("--heartbeat-max-age-s must be >= 0", file=sys.stderr)
            return 2
        report = WorkQueue(queue_dir).compact(
            heartbeat_max_age_s=args.heartbeat_max_age_s
        )
        print(
            f"compacted work queue at {queue_dir}: "
            f"dropped {report['tasks_dropped']} completed tasks and "
            f"{report['results_dropped']} orphaned results, "
            f"swept {report['heartbeats_swept']} dead heartbeats"
        )
        if report["objects_swept"]:
            print(
                f"swept {report['objects_swept']} unreferenced objects "
                f"({_format_bytes(report['object_bytes'])} reclaimed)"
            )
        print(
            f"database: {_format_bytes(report['bytes_before'])} -> "
            f"{_format_bytes(report['bytes_after'])} "
            f"({_format_bytes(report['reclaimed_bytes'])} reclaimed)"
        )
        return 0
    snapshot = WorkQueue(queue_dir).status_snapshot(window_s=args.window_s)
    for line in render_queue_status(snapshot):
        print(line)
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """The ``trace export`` subcommand: telemetry JSONL -> Chrome trace."""
    from repro.obs import event_files, export_chrome_trace

    telemetry_dir = args.telemetry or os.environ.get("REPRO_TELEMETRY")
    if not telemetry_dir:
        print(
            "trace export needs a telemetry directory "
            "(--telemetry DIR or $REPRO_TELEMETRY)",
            file=sys.stderr,
        )
        return 2
    if not event_files(telemetry_dir):
        print(f"no telemetry event logs under {telemetry_dir}", file=sys.stderr)
        return 1
    count = export_chrome_trace(telemetry_dir, args.out)
    print(
        f"wrote {count} trace events to {args.out} "
        "(load in https://ui.perfetto.dev or chrome://tracing)"
    )
    return 0


def _run_pareto(args: argparse.Namespace) -> int:
    """The ``pareto`` subcommand: frontier + operating-point selection.

    Runs (or reuses from cache) a frontier campaign — the pareto01 family
    campaign on the ideal simulator, or the Figures 13-16 q-sweep on the
    detailed one (``--simulator detailed``) — prints its non-dominated
    operating points with bootstrap confidence intervals, marks the knee,
    and optionally re-denominates energy in battery-days or applies a
    latency budget.
    """
    from dataclasses import replace

    from repro.analysis import operating_points, pareto_frontier
    from repro.experiments.pareto_figures import (
        coverage_constraint,
        delivery_constraint,
        energy_objective,
        hop_latency_objective,
        lifetime_objective,
        pareto_family_panel,
        static_frontier_campaign,
        update_latency_objective,
    )
    from repro.runners import run_campaign

    scale = args.scale
    started = time.perf_counter()
    if args.simulator == "detailed":
        from repro.detailed.config import CodeDistributionParameters
        from repro.experiments.detailed_figures import q_sweep_campaign
        from repro.experiments.pareto_figures import static_pbbf_where

        if args.family is not None:
            # The detailed frontier runs the fixed q-sweep deployment;
            # accepting --family here would silently analyse the wrong
            # world for every family value.
            print(
                "--family applies to the ideal simulator only "
                "(the detailed frontier runs the Figures 13-16 q-sweep "
                "deployment)",
                file=sys.stderr,
            )
            return 2
        label = "detailed q-sweep"
        latency = update_latency_objective()
        update_interval = CodeDistributionParameters().update_interval
        constraint = delivery_constraint(scale)
        floor_name = "delivery"
        spec = q_sweep_campaign(scale)
        where = static_pbbf_where()
    else:
        from repro.ideal.config import AnalysisParameters

        family = args.family if args.family is not None else "grid"
        if family not in scale.pareto_families:
            scale = replace(scale, pareto_families=(family,))
        panel = dict(pareto_family_panel(scale))
        token = panel[family].token
        label = family
        latency = hop_latency_objective()
        update_interval = AnalysisParameters().update_interval
        constraint = coverage_constraint(scale)
        floor_name = "coverage"
        spec = static_frontier_campaign(scale)
        where = lambda params: params.get("scenario") == token  # noqa: E731

    if args.lifetime:
        second = lifetime_objective(energy_objective(), update_interval)
    else:
        second = energy_objective()
    objectives = (latency, second)
    if args.coverage is not None:
        constraint = replace(constraint, bound=args.coverage)

    watcher = None
    if args.watch_frontier:
        # Live view only: the watcher folds the on_point stream into
        # stderr redraws, while the final stdout table below is still
        # computed by the batch path from the completed campaign.
        from repro.analysis.streaming import StreamingFrontier
        from repro.obs import FrontierWatcher

        watcher = FrontierWatcher(
            StreamingFrontier(
                objectives,
                constraints=(constraint,),
                where=where,
                base_seed=spec.base_seed,
                n_resamples=scale.bootstrap_resamples,
            )
        )
    campaign = run_campaign(
        spec, on_point=watcher.on_point if watcher is not None else None
    )
    if watcher is not None:
        watcher.final()
    points = operating_points(
        campaign,
        objectives,
        constraints=(constraint,),
        where=where,
        n_resamples=scale.bootstrap_resamples,
    )
    frontier = pareto_frontier(points, objectives)
    elapsed = time.perf_counter() - started
    subject = (
        f"the {label}" if args.simulator == "detailed" else f"family {label!r}"
    )
    print(
        f"pareto frontier for {subject} "
        f"({latency.label} vs {second.label}, "
        f"{floor_name} >= {constraint.bound:g}):"
    )
    return _report_frontier(
        args, scale, label, frontier, len(points), latency, second,
        floor_name, elapsed,
    )


def _report_frontier(
    args: argparse.Namespace,
    scale: Scale,
    label: str,
    frontier,
    n_feasible: int,
    latency,
    second,
    floor_name: str,
    elapsed: float,
) -> int:
    """Render one frontier: table, knee, optional budget selection."""
    from repro.analysis import epsilon_constraint_index
    from repro.experiments.pareto_figures import frontier_table

    if not frontier.points:
        print(f"  no operating point met the {floor_name} floor at this scale")
        print(f"  ({elapsed:.1f}s at scale={scale.name})")
        return 1
    from repro.experiments.report import aligned_table

    header, rows = frontier_table({label: frontier})
    for line in aligned_table(header, rows):
        print(line)
    # The knee is whatever frontier_table starred — one selection, one
    # source of truth for both the table marker and this summary line.
    knee_row = next(row for row in rows if row[0] == "*")
    print(
        f"  knee: {knee_row[2]} at {latency.label}={knee_row[3]}, "
        f"{second.label}={knee_row[5]}"
    )
    print(
        f"  pruned {frontier.n_dominated} dominated/duplicate of "
        f"{n_feasible} feasible points"
    )
    if args.latency_budget is not None:
        index = epsilon_constraint_index(frontier, latency, args.latency_budget)
        if index is None:
            print(
                f"  no frontier point meets latency <= "
                f"{args.latency_budget:g}s"
            )
        else:
            chosen = frontier.points[index]
            print(
                f"  within latency <= {args.latency_budget:g}s: "
                f"{chosen.label} at {latency.label}={chosen.values[0]:.4g}, "
                f"{second.label}={chosen.values[1]:.4g}"
            )
    print(f"  ({elapsed:.1f}s at scale={scale.name})")
    return 0


#: Phase buckets for ``--profile``: package path fragments (under
#: ``repro/``) mapped, first match wins, onto the pipeline stage whose
#: regression a hot function would indicate.
_PROFILE_PHASES = (
    ("realize", ("scenarios",)),
    ("simulate", ("detailed", "ideal", "percolation", "mac", "net", "sim",
                  "apps", "core", "energy", "adaptive")),
    ("analyze", ("analysis", "experiments", "util")),
    ("cache", ("runners",)),
)


def _print_profile(profiler) -> None:
    """Per-phase time table from one cProfile capture.

    Each profiled function's exclusive (``tottime``) cost is attributed
    to the pipeline phase owning its module, so the table sums to the
    profiled wall-clock and a hot path shows up as its phase swelling —
    diagnosable without re-running under ad-hoc scripts.
    """
    import pstats

    stats = pstats.Stats(profiler)
    totals = {name: 0.0 for name, _ in _PROFILE_PHASES}
    other = 0.0
    for (filename, _lineno, _name), stat in stats.stats.items():
        tottime = stat[2]
        path = filename.replace("\\", "/")
        marker = path.rfind("/repro/")
        phase = None
        if marker >= 0:
            subpackage = path[marker + len("/repro/"):].split("/", 1)[0]
            for name, subpackages in _PROFILE_PHASES:
                if subpackage in subpackages:
                    phase = name
                    break
        if phase is None:
            other += tottime
        else:
            totals[phase] += tottime
    total = sum(totals.values()) + other
    print("profile (exclusive time by phase):")
    for name, _ in _PROFILE_PHASES:
        share = 100.0 * totals[name] / total if total else 0.0
        print(f"  {name:10s} {totals[name]:8.3f}s  {share:5.1f}%")
    share = 100.0 * other / total if total else 0.0
    print(f"  {'other':10s} {other:8.3f}s  {share:5.1f}%")


def _run_one(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment_id)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    started = time.perf_counter()
    if profiler is not None:
        result = profiler.runcall(spec.run, args.scale)
    else:
        result = spec.run(args.scale)
    elapsed = time.perf_counter() - started
    print(result.render())
    if profiler is not None:
        _print_profile(profiler)
    if args.chart:
        from repro.experiments.ascii_plot import render_ascii_chart

        try:
            print()
            print(render_ascii_chart(result))
        except ValueError as exc:
            print(f"  (no chart: {exc})")
    print(f"  ({elapsed:.1f}s at scale={args.scale.name})")
    return 0


def _resume_invocation(args: argparse.Namespace) -> str:
    """The exact ``run-all`` command that picks this invocation back up."""
    parts = ["pbbf-experiments", "run-all", "--resume"]
    if args.scale.name != "fast":
        parts.append(f"--scale {args.scale.name}")
    if args.jobs != 1:
        parts.append(f"--jobs {args.jobs}")
    if args.cache_dir:
        parts.append(f"--cache-dir {args.cache_dir}")
    if args.out:
        parts.append(f"--out {args.out}")
    if args.max_retries is not None:
        parts.append(f"--max-retries {args.max_retries}")
    if args.task_timeout_s is not None:
        parts.append(f"--task-timeout-s {args.task_timeout_s:g}")
    if args.on_exhausted is not None:
        parts.append(f"--on-exhausted {args.on_exhausted}")
    return " ".join(parts)


def _run_all(args: argparse.Namespace) -> int:
    reset_stats()
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    chunks: List[str] = []
    experiment_ids = all_experiment_ids()
    for finished, experiment_id in enumerate(experiment_ids):
        spec = get_experiment(experiment_id)
        started = time.perf_counter()
        try:
            if profiler is not None:
                # One capture across every experiment, enabled only around
                # the regenerations so rendering/IO stay out of the table.
                result = profiler.runcall(spec.run, args.scale)
            else:
                result = spec.run(args.scale)
        except KeyboardInterrupt:
            # Completed points are already in the cache and the journal;
            # a clean summary beats the pool's traceback storm.
            stats = get_stats()
            remaining = experiment_ids[finished:]
            print(file=sys.stderr)
            print("interrupted.", file=sys.stderr)
            print(
                f"  experiments finished: {finished}/{len(experiment_ids)} "
                f"(remaining: {', '.join(remaining)})",
                file=sys.stderr,
            )
            print(
                f"  campaign points so far: {stats.computed} simulated, "
                f"{stats.reused} reused (cache/journal/memory)",
                file=sys.stderr,
            )
            print(
                "  completed points are saved; pick up where this left "
                "off with:",
                file=sys.stderr,
            )
            print(f"    {_resume_invocation(args)}", file=sys.stderr)
            return 130
        elapsed = time.perf_counter() - started
        text = result.render() + f"\n  ({elapsed:.1f}s at scale={args.scale.name})"
        print(text)
        print()
        chunks.append(text)
    stats = get_stats()
    journal_note = (
        f", {stats.reused_journal} from journal"
        if stats.reused_journal
        else ""
    )
    print(
        f"campaign points: {stats.computed} simulated, "
        f"{stats.reused_disk} from disk cache, "
        f"{stats.reused_memory} from memory"
        f"{journal_note}"
    )
    if profiler is not None:
        _print_profile(profiler)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(chunks) + "\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
