"""Remark 1: the bond-percolation reliability algebra.

For a node A that holds the broadcast and a neighbour B, the link A -> B
delivers a copy with probability::

    pedge = p*q + (1 - p) = 1 - p*(1 - q)

(immediate forward caught because B stayed awake, plus the always-heard
next-window forward).  The broadcast percolates — reaches a macroscopic
fraction of the network — iff ``pedge`` is at or above the topology's
critical bond probability ``pc`` (Remark 1).

These functions are the pure algebra; critical probabilities themselves
come from :mod:`repro.percolation`.
"""

from __future__ import annotations

from repro.util.validation import check_probability


def edge_open_probability(p: float, q: float) -> float:
    """``pedge = 1 - p*(1-q)``, the per-link delivery probability."""
    p = check_probability("p", p)
    q = check_probability("q", q)
    return 1.0 - p * (1.0 - q)


def satisfies_reliability_threshold(p: float, q: float, critical_bond_probability: float) -> bool:
    """Remark 1's condition: does (p, q) sit in the high-reliability region?"""
    pc = check_probability("critical_bond_probability", critical_bond_probability)
    return edge_open_probability(p, q) >= pc


def minimum_q_for_edge_probability(p: float, pedge_target: float) -> float:
    """Smallest q making ``edge_open_probability(p, q) >= pedge_target``.

    Raises :class:`ValueError` when no q in [0, 1] can reach the target
    (impossible only for ``pedge_target > 1``, excluded by validation).
    """
    p = check_probability("p", p)
    target = check_probability("pedge_target", pedge_target)
    if p == 0.0:
        return 0.0  # pedge is already 1.0
    # 1 - p*(1-q) >= target  <=>  q >= 1 - (1-target)/p
    return max(0.0, 1.0 - (1.0 - target) / p)


def minimum_p_for_edge_probability(q: float, pedge_target: float) -> float:
    """Largest p keeping ``edge_open_probability(p, q) >= pedge_target``.

    Note the inversion: pedge *decreases* in p, so the feasible set is
    ``p <= result``.  Returns 1.0 when every p is feasible (q high enough).
    """
    q = check_probability("q", q)
    target = check_probability("pedge_target", pedge_target)
    if q == 1.0 or target == 0.0:
        return 1.0
    # 1 - p*(1-q) >= target  <=>  p <= (1-target)/(1-q)
    return min(1.0, (1.0 - target) / (1.0 - q))
