"""The paper's primary contribution: PBBF decision logic.

PBBF (Probability-Based Broadcast Forwarding) adds two probabilistic knobs
to any sleep-scheduling MAC:

* ``p`` — on receiving a broadcast, forward it *immediately* (without
  waiting to announce it in the next wake-up window) with probability p;
* ``q`` — at each sleep decision point, stay awake through the sleep
  period with probability q, so immediate broadcasts can be caught.

This package is deliberately simulator-free.  The same
:class:`~repro.core.pbbf.PBBFAgent` coin-flip logic drives the idealized
Section 4 simulator, the detailed Section 5 simulator, and the adaptive
extension, so the protocol has exactly one implementation of its brain.

Modules
-------
* :mod:`repro.core.params` -- validated parameter bundles (PSM and
  always-on appear as the corner cases ``p=q=0`` and ``p=q=1``);
* :mod:`repro.core.pbbf` -- the Figure 3 pseudo-code
  (``Sleep-Decision-Handler`` / ``Receive-Broadcast``) as testable logic;
* :mod:`repro.core.reliability` -- the Remark 1 bond-percolation algebra
  (``pedge = 1 - p*(1-q)``) and the feasible-region queries.
"""

from repro.core.params import PBBFParams
from repro.core.pbbf import ForwardingDecision, PBBFAgent, SleepDecision
from repro.core.reliability import (
    edge_open_probability,
    minimum_p_for_edge_probability,
    minimum_q_for_edge_probability,
    satisfies_reliability_threshold,
)

__all__ = [
    "ForwardingDecision",
    "PBBFAgent",
    "PBBFParams",
    "SleepDecision",
    "edge_open_probability",
    "minimum_p_for_edge_probability",
    "minimum_q_for_edge_probability",
    "satisfies_reliability_threshold",
]
