"""Validated PBBF parameter bundles."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_probability


@dataclass(frozen=True)
class PBBFParams:
    """The (p, q) pair configuring PBBF.

    Attributes
    ----------
    p:
        Probability of forwarding a received broadcast immediately, in the
        current active period, without ensuring neighbours are awake.
    q:
        Probability of staying awake through a sleep period the node's
        schedule would normally spend sleeping.

    The original sleep-scheduling protocol is the special case ``p=q=0``;
    always-on operation is approximated by ``p=q=1`` (approximated, because
    PBBF still pays the sleep protocol's beacon/ATIM overheads — the paper
    makes the same caveat in Section 3).
    """

    p: float
    q: float

    def __post_init__(self) -> None:
        check_probability("p", self.p)
        check_probability("q", self.q)

    @classmethod
    def psm(cls) -> "PBBFParams":
        """Plain sleep scheduling (no immediate forwards, no extra wake)."""
        return cls(p=0.0, q=0.0)

    @classmethod
    def always_on(cls) -> "PBBFParams":
        """The always-awake corner of the parameter space."""
        return cls(p=1.0, q=1.0)

    @property
    def edge_open_probability(self) -> float:
        """Remark 1's per-link delivery probability ``1 - p*(1-q)``.

        A link carries a given broadcast unless the sender chose an
        immediate forward (probability p) *and* the receiver was asleep for
        it (probability 1-q).
        """
        return 1.0 - self.p * (1.0 - self.q)

    def is_degenerate_psm(self) -> bool:
        """True when these parameters reduce to the base sleep protocol."""
        return self.p == 0.0 and self.q == 0.0

    def label(self) -> str:
        """Figure-legend label (paper style: "PBBF-<p>"; corners named)."""
        if self.is_degenerate_psm():
            return "PSM"
        if self.p == 1.0 and self.q == 1.0:
            return "ALWAYS-ON"
        return f"PBBF-{self.p:g}"
