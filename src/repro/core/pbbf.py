"""The PBBF decision procedures (Figure 3 of the paper).

Two decision points, transcribed from the paper's pseudo-code:

``Sleep-Decision-Handler`` (end of each active time)::

    stayOn <- false
    if DataToSend or DataToRecv: stayOn <- true
    elif Uniform-Rand(0,1) < q:  stayOn <- true

``Receive-Broadcast(pkt)`` (on each *new* broadcast reception)::

    if Uniform-Rand(0,1) < p: Send(pkt)            # immediate forward
    else: Enqueue(nextPktQueue, pkt)               # announce next window

:class:`PBBFAgent` packages both coin flips around a dedicated random
stream plus the duplicate suppression the paper assumes ("nodes drop a
broadcast packet if they receive a duplicate"), so every simulator shares
identical protocol behaviour.
"""

from __future__ import annotations

import enum
import random
from typing import Hashable, Optional, Set

from repro.core.params import PBBFParams


class ForwardingDecision(enum.Enum):
    """What to do with a freshly received broadcast."""

    IMMEDIATE = "immediate"  # forward now, whoever happens to be awake
    NEXT_WINDOW = "next_window"  # queue for the next announced active time
    DUPLICATE = "duplicate"  # already seen: drop silently


class SleepDecision(enum.Enum):
    """What to do at the end of an active period."""

    STAY_AWAKE = "stay_awake"
    SLEEP = "sleep"


class PBBFAgent:
    """Per-node PBBF state: coin flips plus duplicate suppression.

    Parameters
    ----------
    params:
        The (p, q) configuration.
    rng:
        Random stream for the two coins.  Pass a node-specific seeded
        stream for reproducibility.
    """

    def __init__(self, params: PBBFParams, rng: Optional[random.Random] = None) -> None:
        self.params = params
        self._rng = rng if rng is not None else random.Random()
        self._seen: Set[Hashable] = set()
        # Diagnostics for tests and adaptive controllers.
        self.immediate_forwards = 0
        self.next_window_forwards = 0
        self.duplicates_dropped = 0
        self.stay_awake_decisions = 0
        self.sleep_decisions = 0

    def receive_broadcast(self, broadcast_id: Hashable) -> ForwardingDecision:
        """Decide the fate of a received broadcast (Figure 3, bottom).

        ``broadcast_id`` identifies the broadcast across copies — e.g. the
        packet's ``(origin, seqno)`` pair — so that duplicates arriving via
        other neighbours are dropped rather than re-forwarded.
        """
        if broadcast_id in self._seen:
            self.duplicates_dropped += 1
            return ForwardingDecision.DUPLICATE
        self._seen.add(broadcast_id)
        if self._rng.random() < self.params.p:
            self.immediate_forwards += 1
            return ForwardingDecision.IMMEDIATE
        self.next_window_forwards += 1
        return ForwardingDecision.NEXT_WINDOW

    def sleep_decision(self, data_to_send: bool = False, data_to_recv: bool = False) -> SleepDecision:
        """Decide whether to sleep at the end of an active time (Figure 3, top).

        Pending traffic in either direction forces the node to stay awake
        (that part is inherited from the base sleep protocol); otherwise
        the q-coin decides.
        """
        if data_to_send or data_to_recv:
            self.stay_awake_decisions += 1
            return SleepDecision.STAY_AWAKE
        if self._rng.random() < self.params.q:
            self.stay_awake_decisions += 1
            return SleepDecision.STAY_AWAKE
        self.sleep_decisions += 1
        return SleepDecision.SLEEP

    def mark_seen(self, broadcast_id: Hashable) -> None:
        """Record a broadcast as seen without a forwarding decision.

        Used by the MAC for broadcasts this node *originates*: the node
        must treat echoes of its own packet as duplicates, but no p-coin
        is involved (origination always follows the announced path).
        """
        self._seen.add(broadcast_id)

    def has_seen(self, broadcast_id: Hashable) -> bool:
        """True when ``broadcast_id`` was already received."""
        return broadcast_id in self._seen

    def seen_count(self) -> int:
        """Number of distinct broadcasts received so far."""
        return len(self._seen)

    def reset(self) -> None:
        """Forget all seen broadcasts and statistics (fresh run)."""
        self._seen.clear()
        self.immediate_forwards = 0
        self.next_window_forwards = 0
        self.duplicates_dropped = 0
        self.stay_awake_decisions = 0
        self.sleep_decisions = 0
