"""Battery-lifetime estimation.

The paper's opening motivation: "an off-the-shelf Mote has a lifetime of a
few weeks (using a pair of standard AA batteries)".  This module turns the
simulators' joules-per-update numbers back into that deployment-facing
quantity, so operating points can be compared in days of life rather than
joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive

#: Usable energy of a pair of AA alkaline cells, in joules.  Nominal
#: capacity ~2500 mAh at 1.5 V per cell gives ~27 kJ; usable capacity at
#: sensor-node discharge currents and cutoff voltages is lower.  20 kJ is
#: the customary planning figure.
AA_PAIR_JOULES = 20_000.0

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected node lifetime for one operating point."""

    average_power_w: float
    battery_joules: float

    @property
    def seconds(self) -> float:
        """Projected lifetime in seconds."""
        return self.battery_joules / self.average_power_w

    @property
    def days(self) -> float:
        """Projected lifetime in days."""
        return self.seconds / _SECONDS_PER_DAY

    @property
    def weeks(self) -> float:
        """Projected lifetime in weeks."""
        return self.days / 7.0

    def __str__(self) -> str:
        return f"{self.days:.1f} days at {self.average_power_w * 1e3:.2f} mW"


def lifetime_from_power(
    average_power_w: float,
    battery_joules: float = AA_PAIR_JOULES,
) -> LifetimeEstimate:
    """Lifetime of a node drawing ``average_power_w`` continuously."""
    check_positive("average_power_w", average_power_w)
    check_positive("battery_joules", battery_joules)
    return LifetimeEstimate(average_power_w, battery_joules)


def lifetime_from_joules_per_update(
    joules_per_update: float,
    update_interval_s: float,
    battery_joules: float = AA_PAIR_JOULES,
) -> LifetimeEstimate:
    """Lifetime from the figures' per-update energy metric.

    ``joules_per_update`` is the Figure 8/13 y-axis (per-node energy per
    generated update); dividing by the update interval recovers the
    average power draw.
    """
    check_positive("joules_per_update", joules_per_update)
    check_positive("update_interval_s", update_interval_s)
    return lifetime_from_power(
        joules_per_update / update_interval_s, battery_joules
    )
