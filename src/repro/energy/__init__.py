"""Radio energy accounting.

The paper's energy results multiply radio-state residency times by the
Mica2 Mote power draws of Table 1 (transmit 81 mW, receive/idle 30 mW,
sleep 3 µW).  This package provides:

* :class:`~repro.energy.model.PowerProfile` -- the per-state power levels,
  with :data:`~repro.energy.model.MICA2` as the paper's values;
* :class:`~repro.energy.model.RadioState` -- the radio state machine states;
* :class:`~repro.energy.model.RadioEnergyModel` -- per-node state tracking
  and joule integration, which doubles as the half-duplex/sleep gate the
  channel consults when deciding whether a node can hear a packet.
"""

from repro.energy.lifetime import (
    AA_PAIR_JOULES,
    LifetimeEstimate,
    lifetime_from_joules_per_update,
    lifetime_from_power,
)
from repro.energy.model import (
    MICA2,
    ALWAYS_ON_PROFILE,
    PowerProfile,
    RadioEnergyModel,
    RadioState,
)

__all__ = [
    "AA_PAIR_JOULES",
    "ALWAYS_ON_PROFILE",
    "LifetimeEstimate",
    "MICA2",
    "PowerProfile",
    "RadioEnergyModel",
    "RadioState",
    "lifetime_from_joules_per_update",
    "lifetime_from_power",
]
