"""Radio state machine and energy integration.

Energy is accounted exactly the way the paper computes it: the radio is in
one state at a time (transmit / listen / sleep), each state has a constant
power draw, and consumed energy is the time-integral of power.  The model
also answers the channel's "was this node continuously listening over
[start, end]?" query, which is what makes sleeping nodes deaf and gives the
half-duplex behaviour (a transmitting radio cannot receive).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.util.validation import check_non_negative


class RadioState(enum.Enum):
    """Operating state of a node's radio."""

    TX = "tx"
    LISTEN = "listen"  # receive and idle draw the same power on a Mica2
    SLEEP = "sleep"


@dataclass(frozen=True)
class PowerProfile:
    """Per-state power draw in watts."""

    tx_w: float
    listen_w: float
    sleep_w: float

    def __post_init__(self) -> None:
        check_non_negative("tx_w", self.tx_w)
        check_non_negative("listen_w", self.listen_w)
        check_non_negative("sleep_w", self.sleep_w)

    def power(self, state: RadioState) -> float:
        """Power draw in watts for ``state``."""
        if state is RadioState.TX:
            return self.tx_w
        if state is RadioState.LISTEN:
            return self.listen_w
        return self.sleep_w


#: Mica2 Mote levels from Table 1: P_TX=81 mW, P_I=30 mW, P_S=3 uW.
MICA2 = PowerProfile(tx_w=0.081, listen_w=0.030, sleep_w=0.000003)

#: A degenerate profile where sleeping saves nothing; used in tests to
#: isolate protocol behaviour from energy accounting.
ALWAYS_ON_PROFILE = PowerProfile(tx_w=0.081, listen_w=0.030, sleep_w=0.030)


class RadioEnergyModel:
    """Tracks one radio's state over time and integrates consumed energy.

    The owner (a node's MAC layer) calls :meth:`set_state` at every radio
    transition, passing the current simulation time.  Queries:

    * :meth:`consumed_joules` -- total energy up to ``now``;
    * :meth:`is_listening_interval` -- the channel's reception gate;
    * :meth:`time_in_state` -- per-state residency (used to validate the
      duty-cycle algebra of Eqs. 3-8 in tests).
    """

    def __init__(self, profile: PowerProfile, start_time: float = 0.0, initial_state: RadioState = RadioState.LISTEN) -> None:
        self.profile = profile
        self._state = initial_state
        self._state_since = start_time
        self._last_time = start_time
        self._joules = 0.0
        self._residency: Dict[RadioState, float] = {state: 0.0 for state in RadioState}
        # Most recent moment the radio was in a non-LISTEN state; receptions
        # starting before this are necessarily truncated.
        self._last_non_listen_exit = start_time if initial_state is RadioState.LISTEN else None

    @property
    def state(self) -> RadioState:
        """Current radio state."""
        return self._state

    def set_state(self, state: RadioState, now: float) -> None:
        """Transition the radio to ``state`` at simulation time ``now``."""
        self._accumulate(now)
        if state is self._state:
            return
        previous = self._state
        self._state = state
        self._state_since = now
        if state is RadioState.LISTEN and previous is not RadioState.LISTEN:
            self._last_non_listen_exit = now

    def consumed_joules(self, now: float) -> float:
        """Total energy consumed from start until ``now``."""
        self._accumulate(now)
        return self._joules

    def time_in_state(self, state: RadioState, now: float) -> float:
        """Cumulative seconds spent in ``state`` until ``now``."""
        self._accumulate(now)
        return self._residency[state]

    def duty_cycle(self, now: float) -> float:
        """Fraction of elapsed time the radio was *not* asleep."""
        self._accumulate(now)
        total = sum(self._residency.values())
        if total <= 0.0:
            return 1.0 if self._state is not RadioState.SLEEP else 0.0
        awake = self._residency[RadioState.TX] + self._residency[RadioState.LISTEN]
        return awake / total

    def is_listening_interval(self, start: float, end: float) -> bool:
        """True when the radio could receive continuously over [start, end].

        Requires the radio to be in LISTEN *now* (i.e. at ``end``) and to
        have been in LISTEN since before ``start``.
        """
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        if self._state is not RadioState.LISTEN:
            return False
        return self._state_since <= start

    def _accumulate(self, now: float) -> None:
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time} (energy model)"
            )
        elapsed = now - self._last_time
        if elapsed > 0.0:
            self._joules += self.profile.power(self._state) * elapsed
            self._residency[self._state] += elapsed
            self._last_time = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RadioEnergyModel(state={self._state.value}, "
            f"joules={self._joules:.6f})"
        )
