"""Declarative scenario specifications.

A :class:`ScenarioSpec` names everything about the *world* a simulation
runs in — topology family and its parameters, where the broadcast source
sits, and which perturbations apply (pre-broadcast node failures,
mid-run death schedules, per-node clock skew; see :class:`Perturbations`)
— without building any of it.  Two properties make specs campaign axes:

* **content-hashable** — a spec serializes to a canonical JSON *token*
  (:attr:`ScenarioSpec.token`), a plain string that survives campaign
  parameter dicts, ``lru_cache`` keys, process-pool pickling, and the
  on-disk cache's content hashes unchanged, and round-trips through
  :meth:`ScenarioSpec.from_token`;
* **seed-realizable** — :meth:`ScenarioSpec.realize` builds the concrete
  topology/source/failure-set from named RNG streams derived from the
  run's seed (:class:`repro.util.rng.RandomStreams`), so realization is a
  pure function of ``(spec, seed)`` in any process, and two specs
  realized at the same seed share placement randomness (common random
  numbers for paired comparisons).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.net.topology import Topology
from repro.scenarios.families import build_topology, get_family
from repro.util.canonical import canonical_json
from repro.util.rng import RandomStreams, fold_seed

#: How the broadcast source is placed on the realized topology.
SOURCE_POLICIES = ("center", "corner", "random", "max_degree")

#: Default grid-scenario source (the paper's centre broadcast).
DEFAULT_SOURCE = "center"


def _check_param_value(name: str, value: Any) -> None:
    """Scenario parameters must be JSON scalars so tokens are canonical."""
    if isinstance(value, bool) or value is None:
        return
    if isinstance(value, (int, float, str)):
        return
    raise ValueError(
        f"scenario parameter {name!r} must be a JSON scalar "
        f"(int/float/str/bool/None), got {type(value).__name__}"
    )


@dataclass(frozen=True)
class FailureTimes:
    """A mid-run death schedule: who dies *during* the broadcast run.

    Unlike the pre-broadcast ``failure_fraction`` (nodes dead before the
    first packet), this schedules deaths while traffic is flowing — the
    regime fault-tolerant broadcast work treats as the interesting one.
    ``fraction`` of the nodes (source excluded) each draw one death time
    from ``distribution`` over the ``[start, end]`` window (simulated
    seconds); realization draws from a dedicated named RNG stream so the
    schedule never perturbs placement or source draws.
    """

    #: Fraction of nodes (excluding the source) that die mid-run.
    fraction: float
    #: Window start, in simulated seconds.
    start: float
    #: Window end, in simulated seconds.
    end: float
    #: Death-time distribution over the window (``uniform`` only, so far).
    distribution: str = "uniform"

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(
                f"failure_times.fraction must be in (0, 1), got {self.fraction}"
            )
        if self.start < 0.0 or self.end < self.start:
            raise ValueError(
                f"failure_times window must satisfy 0 <= start <= end, "
                f"got [{self.start}, {self.end}]"
            )
        if self.distribution != "uniform":
            raise ValueError(
                f"failure_times.distribution must be 'uniform', "
                f"got {self.distribution!r}"
            )

    def to_payload(self) -> Dict[str, Any]:
        """The canonical-token form (defaults omitted for stability)."""
        payload: Dict[str, Any] = {
            "fraction": self.fraction,
            "start": self.start,
            "end": self.end,
        }
        if self.distribution != "uniform":
            payload["distribution"] = self.distribution
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FailureTimes":
        """Parse (and re-validate) from the token form."""
        return cls(
            fraction=float(payload["fraction"]),
            start=float(payload["start"]),
            end=float(payload["end"]),
            distribution=str(payload.get("distribution", "uniform")),
        )


@dataclass(frozen=True)
class ClockSkew:
    """Per-node sleep-schedule offsets: imperfect synchronisation.

    The paper assumes every node agrees on the beacon epoch; real
    deployments drift.  Each node draws one phase offset (seconds late
    relative to the network epoch) from a half-normal with standard
    deviation ``std`` — the same model the detailed simulator's
    ``clock_skew_std`` failure injection uses, made a scenario property
    so it sweeps, seeds and caches like any other axis.
    """

    #: Standard deviation of the half-normal offset draw (seconds).
    std: float
    #: Offset distribution (``half_normal`` only, so far).
    distribution: str = "half_normal"

    def __post_init__(self) -> None:
        if self.std <= 0.0:
            raise ValueError(f"clock_skew.std must be > 0, got {self.std}")
        if self.distribution != "half_normal":
            raise ValueError(
                f"clock_skew.distribution must be 'half_normal', "
                f"got {self.distribution!r}"
            )

    def to_payload(self) -> Dict[str, Any]:
        """The canonical-token form (defaults omitted for stability)."""
        payload: Dict[str, Any] = {"std": self.std}
        if self.distribution != "half_normal":
            payload["distribution"] = self.distribution
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ClockSkew":
        """Parse (and re-validate) from the token form."""
        return cls(
            std=float(payload["std"]),
            distribution=str(payload.get("distribution", "half_normal")),
        )


@dataclass(frozen=True)
class Perturbations:
    """Everything that makes a realized world deviate from nominal.

    Bundles the three perturbation axes a :class:`ScenarioSpec` carries:
    pre-broadcast failures (``failure_fraction``), mid-run death
    schedules (:class:`FailureTimes`) and sleep-schedule clock skew
    (:class:`ClockSkew`).  Pass one to :meth:`ScenarioSpec.build` via the
    ``perturbations`` keyword, or set the flat fields individually — the
    spec stores (and hashes) the same content either way.
    """

    #: Fraction of non-source nodes failed before the first broadcast.
    failure_fraction: float = 0.0
    #: Optional mid-run death schedule.
    failure_times: Optional[FailureTimes] = None
    #: Optional per-node clock-skew model.
    clock_skew: Optional[ClockSkew] = None

    def __bool__(self) -> bool:
        """True when any perturbation is active."""
        return bool(
            self.failure_fraction
            or self.failure_times is not None
            or self.clock_skew is not None
        )


@dataclass(frozen=True)
class RealizedScenario:
    """A spec made concrete at one seed: the world a simulator runs in."""

    spec: "ScenarioSpec"
    topology: Topology
    #: Broadcast source node id (never a failed node).
    source: int
    #: Nodes dead before the first broadcast, ascending.
    failed_nodes: Tuple[int, ...]
    #: Mid-run deaths as ``(node, time)`` pairs, ascending by node id;
    #: disjoint from ``failed_nodes`` and never the source.
    failure_times: Tuple[Tuple[int, float], ...] = ()
    #: Per-node sleep-schedule offsets (seconds late), one per node;
    #: empty when the spec carries no clock skew.
    clock_offsets: Tuple[float, ...] = ()

    @property
    def n_failed(self) -> int:
        """Number of pre-failed nodes."""
        return len(self.failed_nodes)

    @property
    def n_midrun_failures(self) -> int:
        """Number of scheduled mid-run deaths."""
        return len(self.failure_times)


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, content-hashable description of one scenario shape.

    Build with :meth:`build`, which validates against the family registry
    and normalises parameters into the sorted tuple form stored here.
    """

    #: Registered topology family name (see :mod:`repro.scenarios.families`).
    family: str
    #: Family parameters as sorted ``(name, value)`` pairs.
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Source placement policy (one of :data:`SOURCE_POLICIES`).
    source: str = DEFAULT_SOURCE
    #: Fraction of non-source nodes failed before the first broadcast.
    failure_fraction: float = 0.0
    #: Optional mid-run death schedule (time-varying perturbation).
    failure_times: Optional[FailureTimes] = None
    #: Optional per-node sleep-schedule skew (time-varying perturbation).
    clock_skew: Optional[ClockSkew] = None

    @classmethod
    def build(
        cls,
        family: str,
        params: Optional[Mapping[str, Any]] = None,
        source: str = DEFAULT_SOURCE,
        failure_fraction: float = 0.0,
        failure_times: Optional[FailureTimes] = None,
        clock_skew: Optional[ClockSkew] = None,
        perturbations: Optional[Perturbations] = None,
    ) -> "ScenarioSpec":
        """Validate and normalise a spec from plain mappings.

        Perturbations may be given flat (``failure_fraction`` /
        ``failure_times`` / ``clock_skew``) *or* bundled as a
        :class:`Perturbations` — the two forms are mutually exclusive, so
        a bundle can never silently overwrite an explicit flat argument.
        """
        get_family(family)  # raises KeyError for unknown families
        if source not in SOURCE_POLICIES:
            raise ValueError(
                f"source must be one of {SOURCE_POLICIES}, got {source!r}"
            )
        if perturbations is not None:
            if failure_fraction or failure_times is not None or clock_skew is not None:
                raise ValueError(
                    "pass perturbations either flat (failure_fraction / "
                    "failure_times / clock_skew) or as a Perturbations "
                    "bundle, not both"
                )
            failure_fraction = perturbations.failure_fraction
            failure_times = perturbations.failure_times
            clock_skew = perturbations.clock_skew
        if not 0.0 <= failure_fraction < 1.0:
            raise ValueError(
                f"failure_fraction must be in [0, 1), got {failure_fraction}"
            )
        if failure_times is not None and not isinstance(failure_times, FailureTimes):
            raise TypeError(
                f"failure_times must be a FailureTimes, "
                f"got {type(failure_times).__name__}"
            )
        if clock_skew is not None and not isinstance(clock_skew, ClockSkew):
            raise TypeError(
                f"clock_skew must be a ClockSkew, got {type(clock_skew).__name__}"
            )
        items = sorted((params or {}).items())
        for name, value in items:
            _check_param_value(name, value)
        return cls(
            family=family,
            params=tuple(items),
            source=source,
            failure_fraction=float(failure_fraction),
            failure_times=failure_times,
            clock_skew=clock_skew,
        )

    @classmethod
    def grid_default(cls, grid_side: int) -> "ScenarioSpec":
        """The paper's baseline scenario: open grid, centre source."""
        return cls.build("grid", {"side": grid_side})

    def params_dict(self) -> Dict[str, Any]:
        """The family parameters as a plain dict."""
        return dict(self.params)

    @property
    def perturbations(self) -> Perturbations:
        """The spec's perturbations bundled as one value."""
        return Perturbations(
            failure_fraction=self.failure_fraction,
            failure_times=self.failure_times,
            clock_skew=self.clock_skew,
        )

    # -- identity ----------------------------------------------------------

    @property
    def token(self) -> str:
        """Canonical string form: the value campaign axes carry.

        Defaults (``center`` source, zero failures, no death schedule, no
        skew) are omitted, so adding knobs later never re-keys existing
        scenarios — the same stability contract the run cache relies on.
        """
        payload: Dict[str, Any] = {
            "family": self.family,
            "params": self.params_dict(),
        }
        if self.source != DEFAULT_SOURCE:
            payload["source"] = self.source
        if self.failure_fraction:
            payload["failure_fraction"] = self.failure_fraction
        if self.failure_times is not None:
            payload["failure_times"] = self.failure_times.to_payload()
        if self.clock_skew is not None:
            payload["clock_skew"] = self.clock_skew.to_payload()
        return canonical_json(payload)

    @classmethod
    def from_token(cls, token: str) -> "ScenarioSpec":
        """Parse (and re-validate) a spec from its :attr:`token` form."""
        try:
            payload = json.loads(token)
        except ValueError as exc:
            raise ValueError(f"malformed scenario token {token!r}: {exc}") from None
        if not isinstance(payload, dict) or "family" not in payload:
            raise ValueError(f"malformed scenario token {token!r}")
        failure_times = payload.get("failure_times")
        clock_skew = payload.get("clock_skew")
        return cls.build(
            family=payload["family"],
            params=payload.get("params") or {},
            source=payload.get("source", DEFAULT_SOURCE),
            failure_fraction=payload.get("failure_fraction", 0.0),
            failure_times=(
                FailureTimes.from_payload(failure_times)
                if failure_times is not None
                else None
            ),
            clock_skew=(
                ClockSkew.from_payload(clock_skew)
                if clock_skew is not None
                else None
            ),
        )

    def content_hash(self) -> str:
        """Stable sha256 of the canonical token (scenario identity)."""
        return hashlib.sha256(self.token.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One human line for listings and figure notes."""
        params = ", ".join(f"{k}={v!r}" for k, v in self.params)
        bits = [f"{self.family}({params})", f"source={self.source}"]
        if self.failure_fraction:
            bits.append(f"failures={self.failure_fraction:g}")
        if self.failure_times is not None:
            ft = self.failure_times
            bits.append(
                f"midrun_failures={ft.fraction:g}@[{ft.start:g},{ft.end:g}]s"
            )
        if self.clock_skew is not None:
            bits.append(f"skew={self.clock_skew.std:g}s")
        return " ".join(bits)

    # -- realization -------------------------------------------------------

    def realize(self, seed: int) -> RealizedScenario:
        """Build the concrete world for one run.

        Randomness comes from named streams rooted at
        ``fold_seed(seed, "scenario")`` — placement, source choice,
        failure sampling, death scheduling and skew draws are independent
        streams, so e.g. adding a death schedule never perturbs node
        placement at the same seed (common random numbers for paired
        nominal-vs-perturbed comparisons).
        """
        streams = RandomStreams(fold_seed(seed, "scenario"))
        topology = build_topology(
            self.family, self.params_dict(), streams.stream("topology")
        )
        source = self._place_source(topology, streams)
        failed = self._sample_failures(topology, source, streams)
        failure_times = self._sample_failure_times(
            topology, source, failed, streams
        )
        clock_offsets = self._sample_clock_offsets(topology, streams)
        return RealizedScenario(
            spec=self,
            topology=topology,
            source=source,
            failed_nodes=failed,
            failure_times=failure_times,
            clock_offsets=clock_offsets,
        )

    def _place_source(self, topology: Topology, streams: RandomStreams) -> int:
        if topology.n_nodes == 0:
            raise ValueError("cannot place a source on an empty topology")
        if self.source == "center":
            center = getattr(topology, "center_node", None)
            if callable(center):
                return center()
            xs = [topology.position(v)[0] for v in topology.nodes()]
            ys = [topology.position(v)[1] for v in topology.nodes()]
            cx = sum(xs) / len(xs)
            cy = sum(ys) / len(ys)
            return min(
                topology.nodes(),
                key=lambda v: (
                    (xs[v] - cx) ** 2 + (ys[v] - cy) ** 2,
                    v,
                ),
            )
        if self.source == "corner":
            return min(
                topology.nodes(),
                key=lambda v: (sum(topology.position(v)), v),
            )
        if self.source == "max_degree":
            return int(topology.csr.degrees.argmax())
        # "random": one draw from the dedicated stream.
        return streams.stream("source").randrange(topology.n_nodes)

    def _sample_failures(
        self, topology: Topology, source: int, streams: RandomStreams
    ) -> Tuple[int, ...]:
        if not self.failure_fraction:
            return ()
        n = topology.n_nodes
        k = min(int(round(self.failure_fraction * n)), n - 1)
        if k <= 0:
            return ()
        candidates = [v for v in topology.nodes() if v != source]
        return tuple(sorted(streams.stream("failures").sample(candidates, k)))

    def _sample_failure_times(
        self,
        topology: Topology,
        source: int,
        pre_failed: Tuple[int, ...],
        streams: RandomStreams,
    ) -> Tuple[Tuple[int, float], ...]:
        """Draw the mid-run death schedule from its dedicated stream.

        Victims are sampled from the nodes still alive after the
        pre-broadcast failures (source excluded), then sorted by id
        *before* the per-victim time draws — so the (node, time) mapping
        depends only on the sampled set, never on sampling order.
        """
        ft = self.failure_times
        if ft is None:
            return ()
        excluded = {source} | set(pre_failed)
        candidates = [v for v in topology.nodes() if v not in excluded]
        k = min(int(round(ft.fraction * topology.n_nodes)), len(candidates))
        if k <= 0:
            return ()
        rng = streams.stream("failure_times")
        victims = sorted(rng.sample(candidates, k))
        return tuple(
            (victim, rng.uniform(ft.start, ft.end)) for victim in victims
        )

    def _sample_clock_offsets(
        self, topology: Topology, streams: RandomStreams
    ) -> Tuple[float, ...]:
        """Draw one half-normal schedule offset per node (all nodes)."""
        cs = self.clock_skew
        if cs is None:
            return ()
        rng = streams.stream("clock_skew")
        return tuple(
            abs(rng.gauss(0.0, cs.std)) for _ in range(topology.n_nodes)
        )
