"""Declarative scenario specifications.

A :class:`ScenarioSpec` names everything about the *world* a simulation
runs in — topology family and its parameters, where the broadcast source
sits, and which perturbations apply (pre-broadcast node failures) —
without building any of it.  Two properties make specs campaign axes:

* **content-hashable** — a spec serializes to a canonical JSON *token*
  (:attr:`ScenarioSpec.token`), a plain string that survives campaign
  parameter dicts, ``lru_cache`` keys, process-pool pickling, and the
  on-disk cache's content hashes unchanged, and round-trips through
  :meth:`ScenarioSpec.from_token`;
* **seed-realizable** — :meth:`ScenarioSpec.realize` builds the concrete
  topology/source/failure-set from named RNG streams derived from the
  run's seed (:class:`repro.util.rng.RandomStreams`), so realization is a
  pure function of ``(spec, seed)`` in any process, and two specs
  realized at the same seed share placement randomness (common random
  numbers for paired comparisons).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.net.topology import Topology
from repro.scenarios.families import build_topology, get_family
from repro.util.canonical import canonical_json
from repro.util.rng import RandomStreams, fold_seed

#: How the broadcast source is placed on the realized topology.
SOURCE_POLICIES = ("center", "corner", "random", "max_degree")

#: Default grid-scenario source (the paper's centre broadcast).
DEFAULT_SOURCE = "center"


def _check_param_value(name: str, value: Any) -> None:
    """Scenario parameters must be JSON scalars so tokens are canonical."""
    if isinstance(value, bool) or value is None:
        return
    if isinstance(value, (int, float, str)):
        return
    raise ValueError(
        f"scenario parameter {name!r} must be a JSON scalar "
        f"(int/float/str/bool/None), got {type(value).__name__}"
    )


@dataclass(frozen=True)
class RealizedScenario:
    """A spec made concrete at one seed: the world a simulator runs in."""

    spec: "ScenarioSpec"
    topology: Topology
    #: Broadcast source node id (never a failed node).
    source: int
    #: Nodes dead before the first broadcast, ascending.
    failed_nodes: Tuple[int, ...]

    @property
    def n_failed(self) -> int:
        """Number of pre-failed nodes."""
        return len(self.failed_nodes)


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, content-hashable description of one scenario shape.

    Build with :meth:`build`, which validates against the family registry
    and normalises parameters into the sorted tuple form stored here.
    """

    #: Registered topology family name (see :mod:`repro.scenarios.families`).
    family: str
    #: Family parameters as sorted ``(name, value)`` pairs.
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Source placement policy (one of :data:`SOURCE_POLICIES`).
    source: str = DEFAULT_SOURCE
    #: Fraction of non-source nodes failed before the first broadcast.
    failure_fraction: float = 0.0

    @classmethod
    def build(
        cls,
        family: str,
        params: Optional[Mapping[str, Any]] = None,
        source: str = DEFAULT_SOURCE,
        failure_fraction: float = 0.0,
    ) -> "ScenarioSpec":
        """Validate and normalise a spec from plain mappings."""
        get_family(family)  # raises KeyError for unknown families
        if source not in SOURCE_POLICIES:
            raise ValueError(
                f"source must be one of {SOURCE_POLICIES}, got {source!r}"
            )
        if not 0.0 <= failure_fraction < 1.0:
            raise ValueError(
                f"failure_fraction must be in [0, 1), got {failure_fraction}"
            )
        items = sorted((params or {}).items())
        for name, value in items:
            _check_param_value(name, value)
        return cls(
            family=family,
            params=tuple(items),
            source=source,
            failure_fraction=float(failure_fraction),
        )

    @classmethod
    def grid_default(cls, grid_side: int) -> "ScenarioSpec":
        """The paper's baseline scenario: open grid, centre source."""
        return cls.build("grid", {"side": grid_side})

    def params_dict(self) -> Dict[str, Any]:
        """The family parameters as a plain dict."""
        return dict(self.params)

    # -- identity ----------------------------------------------------------

    @property
    def token(self) -> str:
        """Canonical string form: the value campaign axes carry.

        Defaults (``center`` source, zero failures) are omitted, so adding
        knobs later never re-keys existing scenarios — the same stability
        contract the run cache relies on.
        """
        payload: Dict[str, Any] = {
            "family": self.family,
            "params": self.params_dict(),
        }
        if self.source != DEFAULT_SOURCE:
            payload["source"] = self.source
        if self.failure_fraction:
            payload["failure_fraction"] = self.failure_fraction
        return canonical_json(payload)

    @classmethod
    def from_token(cls, token: str) -> "ScenarioSpec":
        """Parse (and re-validate) a spec from its :attr:`token` form."""
        try:
            payload = json.loads(token)
        except ValueError as exc:
            raise ValueError(f"malformed scenario token {token!r}: {exc}") from None
        if not isinstance(payload, dict) or "family" not in payload:
            raise ValueError(f"malformed scenario token {token!r}")
        return cls.build(
            family=payload["family"],
            params=payload.get("params") or {},
            source=payload.get("source", DEFAULT_SOURCE),
            failure_fraction=payload.get("failure_fraction", 0.0),
        )

    def content_hash(self) -> str:
        """Stable sha256 of the canonical token (scenario identity)."""
        return hashlib.sha256(self.token.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One human line for listings and figure notes."""
        params = ", ".join(f"{k}={v!r}" for k, v in self.params)
        bits = [f"{self.family}({params})", f"source={self.source}"]
        if self.failure_fraction:
            bits.append(f"failures={self.failure_fraction:g}")
        return " ".join(bits)

    # -- realization -------------------------------------------------------

    def realize(self, seed: int) -> RealizedScenario:
        """Build the concrete world for one run.

        Randomness comes from named streams rooted at
        ``fold_seed(seed, "scenario")`` — placement, source choice and
        failure sampling are independent streams, so e.g. raising the
        failure fraction never perturbs node placement at the same seed.
        """
        streams = RandomStreams(fold_seed(seed, "scenario"))
        topology = build_topology(
            self.family, self.params_dict(), streams.stream("topology")
        )
        source = self._place_source(topology, streams)
        failed = self._sample_failures(topology, source, streams)
        return RealizedScenario(
            spec=self, topology=topology, source=source, failed_nodes=failed
        )

    def _place_source(self, topology: Topology, streams: RandomStreams) -> int:
        if topology.n_nodes == 0:
            raise ValueError("cannot place a source on an empty topology")
        if self.source == "center":
            center = getattr(topology, "center_node", None)
            if callable(center):
                return center()
            xs = [topology.position(v)[0] for v in topology.nodes()]
            ys = [topology.position(v)[1] for v in topology.nodes()]
            cx = sum(xs) / len(xs)
            cy = sum(ys) / len(ys)
            return min(
                topology.nodes(),
                key=lambda v: (
                    (xs[v] - cx) ** 2 + (ys[v] - cy) ** 2,
                    v,
                ),
            )
        if self.source == "corner":
            return min(
                topology.nodes(),
                key=lambda v: (sum(topology.position(v)), v),
            )
        if self.source == "max_degree":
            return int(topology.csr.degrees.argmax())
        # "random": one draw from the dedicated stream.
        return streams.stream("source").randrange(topology.n_nodes)

    def _sample_failures(
        self, topology: Topology, source: int, streams: RandomStreams
    ) -> Tuple[int, ...]:
        if not self.failure_fraction:
            return ()
        n = topology.n_nodes
        k = min(int(round(self.failure_fraction * n)), n - 1)
        if k <= 0:
            return ()
        candidates = [v for v in topology.nodes() if v != source]
        return tuple(sorted(streams.stream("failures").sample(candidates, k)))
