"""The scenario layer: declarative worlds for every simulator.

The paper makes all of its claims on one scenario shape — a single
broadcast from the centre of an open grid.  This package turns "which
world does the simulation run in" into data: a
:class:`~repro.scenarios.spec.ScenarioSpec` bundles a topology *family*
(with its parameters), a *source-placement policy* and *perturbations*
(:class:`~repro.scenarios.spec.Perturbations`: pre-broadcast node
failures, mid-run death schedules, per-node clock skew) into a
content-hashable value that campaign specs sweep like any other axis.

Layering: this package sits between :mod:`repro.net` (which it builds on)
and :mod:`repro.runners` (which resolves scenarios inside its point
evaluators).  It never imports simulators or the runner, so every layer
above can depend on it without cycles.

Usage::

    from repro.scenarios import ScenarioSpec

    spec = ScenarioSpec.build(
        "grid_holes", {"side": 30, "n_holes": 3, "hole_side": 5},
        source="corner", failure_fraction=0.1,
    )
    realized = spec.realize(seed=42)      # topology, source, failed nodes
    token = spec.token                    # canonical string: a campaign axis value
    assert ScenarioSpec.from_token(token) == spec

Registering a new topology family
---------------------------------
A family is a named builder ``builder(rng, **params) -> Topology`` that
draws randomness *only* from the ``random.Random`` it is given (that is
what keeps realization a pure function of ``(spec, seed)`` across
processes and backends).  Parameters must be JSON scalars so scenario
tokens stay canonical.  Register it once at import time::

    from repro.scenarios import register_family

    def build_ring(rng, n_nodes):
        positions = [...]                 # any Topology construction
        return Topology(positions, adjacency)

    register_family(
        "ring", build_ring,
        description="cycle of n_nodes unit-spaced nodes",
        defaults={"n_nodes": 64},
    )

From that point ``ScenarioSpec.build("ring", {"n_nodes": 128})`` is a
sweepable, cacheable campaign axis value like any built-in family, and
``pbbf-experiments scenarios`` lists it.  Names are unique; registering a
taken name raises.
"""

from repro.scenarios.families import (
    TopologyFamily,
    available_families,
    build_topology,
    get_family,
    register_family,
)
from repro.scenarios.spec import (
    DEFAULT_SOURCE,
    SOURCE_POLICIES,
    ClockSkew,
    FailureTimes,
    Perturbations,
    RealizedScenario,
    ScenarioSpec,
)

__all__ = [
    "DEFAULT_SOURCE",
    "SOURCE_POLICIES",
    "ClockSkew",
    "FailureTimes",
    "Perturbations",
    "RealizedScenario",
    "ScenarioSpec",
    "TopologyFamily",
    "available_families",
    "build_topology",
    "get_family",
    "register_family",
]
