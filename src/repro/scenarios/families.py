"""The topology-family registry: named factories behind every scenario.

A *family* is a named recipe for building a :class:`~repro.net.topology.Topology`
from JSON-scalar parameters and a seeded ``random.Random``.  Scenario specs
(:mod:`repro.scenarios.spec`) reference families by name, so sweeping a
campaign across deployment shapes is sweeping strings — no plumbing.

Built-in families
-----------------
``grid``
    The paper's open square lattice (:class:`GridTopology`).
``torus``
    Wrap-around lattice with no boundary effects (:class:`TorusGridTopology`).
``grid_holes``
    Grid with seed-placed rectangular failed regions carved out
    (:class:`GridWithHolesTopology`).
``random``
    Uniform unit-disk deployment at a target density, optionally resampled
    until connected (:class:`RandomTopology`).
``clustered``
    Gaussian clusters with sparse inter-cluster bridges
    (:class:`ClusteredRandomTopology`).

See :mod:`repro.scenarios` for how to register a new family.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.net.topology import (
    ClusteredRandomTopology,
    GridTopology,
    GridWithHolesTopology,
    RandomTopology,
    Topology,
    TorusGridTopology,
)

#: ``builder(rng, **params) -> Topology``.  Deterministic families simply
#: ignore ``rng``; randomized ones must draw *only* from it.
FamilyBuilder = Callable[..., Topology]


@dataclass(frozen=True)
class TopologyFamily:
    """One registered topology recipe."""

    name: str
    builder: FamilyBuilder = field(repr=False)
    #: One line for the CLI's ``scenarios`` listing.
    description: str
    #: Default parameters merged under the spec's own (shown in listings).
    defaults: Tuple[Tuple[str, Any], ...] = ()

    def build(self, params: Mapping[str, Any], rng: random.Random) -> Topology:
        """Build the topology from ``defaults`` overlaid with ``params``."""
        merged: Dict[str, Any] = dict(self.defaults)
        merged.update(params)
        try:
            return self.builder(rng, **merged)
        except TypeError as exc:
            raise ValueError(
                f"invalid parameters for topology family {self.name!r}: {exc}"
            ) from exc


_FAMILIES: Dict[str, TopologyFamily] = {}


def register_family(
    name: str,
    builder: FamilyBuilder,
    description: str = "",
    defaults: Optional[Mapping[str, Any]] = None,
) -> TopologyFamily:
    """Register ``builder`` under ``name``; returns the registry entry.

    Names are unique: re-registering an existing name raises so two
    extensions cannot silently shadow each other's deployments.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"family name must be a non-empty string, got {name!r}")
    if name in _FAMILIES:
        raise ValueError(f"topology family {name!r} is already registered")
    family = TopologyFamily(
        name=name,
        builder=builder,
        description=description,
        defaults=tuple(sorted((defaults or {}).items())),
    )
    _FAMILIES[name] = family
    return family


def get_family(name: str) -> TopologyFamily:
    """Look up a registered family by name."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown topology family {name!r}; "
            f"registered: {', '.join(sorted(_FAMILIES))}"
        ) from None


def available_families() -> List[TopologyFamily]:
    """Every registered family, sorted by name (CLI listing order)."""
    return [_FAMILIES[name] for name in sorted(_FAMILIES)]


def build_topology(
    name: str, params: Mapping[str, Any], rng: random.Random
) -> Topology:
    """Build family ``name`` with ``params`` drawing only from ``rng``."""
    return get_family(name).build(params, rng)


# -- built-in families -----------------------------------------------------


def _build_grid(
    rng: random.Random, side: int, cols: Optional[int] = None
) -> Topology:
    return GridTopology(side, cols)


def _build_torus(
    rng: random.Random, side: int, cols: Optional[int] = None
) -> Topology:
    return TorusGridTopology(side, cols)


def _build_grid_holes(
    rng: random.Random,
    side: int,
    n_holes: int = 2,
    hole_side: Optional[int] = None,
) -> Topology:
    """Grid with ``n_holes`` square failed regions at rng-drawn positions."""
    if hole_side is None:
        hole_side = max(1, side // 5)
    if hole_side >= side:
        raise ValueError(
            f"hole_side ({hole_side}) must be smaller than side ({side})"
        )
    holes = tuple(
        (
            rng.randrange(side - hole_side + 1),
            rng.randrange(side - hole_side + 1),
            hole_side,
            hole_side,
        )
        for _ in range(n_holes)
    )
    return GridWithHolesTopology(side, holes=holes)


def _build_random(
    rng: random.Random,
    n_nodes: int = 50,
    radio_range: float = 10.0,
    density: float = 10.0,
    require_connected: bool = True,
    max_attempts: int = 200,
) -> Topology:
    if require_connected:
        return RandomTopology.connected(
            n_nodes, radio_range, density, rng, max_attempts=max_attempts
        )
    return RandomTopology(n_nodes, radio_range, density, rng)


def _build_clustered(
    rng: random.Random,
    n_clusters: int = 4,
    cluster_size: int = 12,
    radio_range: float = 10.0,
    spread: float = 5.0,
    extent: float = 40.0,
) -> Topology:
    return ClusteredRandomTopology(
        n_clusters, cluster_size, radio_range, spread, extent, rng
    )


register_family(
    "grid",
    _build_grid,
    "open square lattice, 4-neighbour connectivity (the paper's Section 4)",
)
register_family(
    "torus",
    _build_torus,
    "wrap-around lattice: every node degree 4, no boundary effects",
)
register_family(
    "grid_holes",
    _build_grid_holes,
    "grid with rng-placed square failed regions carved out",
    defaults={"n_holes": 2},
)
register_family(
    "random",
    _build_random,
    "uniform unit-disk deployment at a target density (Eq. 13)",
    defaults={"n_nodes": 50, "radio_range": 10.0, "density": 10.0},
)
register_family(
    "clustered",
    _build_clustered,
    "Gaussian clusters on a ring with sparse inter-cluster bridges",
    defaults={
        "n_clusters": 4,
        "cluster_size": 12,
        "radio_range": 10.0,
        "spread": 5.0,
        "extent": 40.0,
    },
)
