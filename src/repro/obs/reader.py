"""Torn-tolerant reader for telemetry event logs.

Event files are append-only JSONL written line-at-a-time; a crash (or
the deterministic ``torn_write_rate`` fault injection) can leave partial
lines and concatenated stumps anywhere in a file.  The reader's
contract mirrors the campaign journal's: parse what parses, skip the
rest, never raise on garbage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, Union

from repro.obs.recorder import EVENT_VERSION


def event_files(telemetry_dir: Union[str, Path]) -> list:
    """The per-process event files under a telemetry directory."""
    directory = Path(telemetry_dir)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("events-*.jsonl"))


def iter_events(telemetry_dir: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield every parseable event record, skipping torn/foreign lines."""
    for path in event_files(telemetry_dir):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn write: skip, never raise
                    if not isinstance(record, dict):
                        continue
                    if record.get("v") != EVENT_VERSION:
                        continue
                    yield record
        except OSError:
            continue
