"""End-of-run metrics aggregation over telemetry event logs.

Folds every process's event file into one summary — per-phase wall
time, cache hit rates, retry/failure counts, per-worker throughput —
and renders it as the aligned table the CLI prints after a
telemetry-enabled campaign.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.reader import iter_events


def aggregate_metrics(telemetry_dir: Union[str, Path]) -> Dict[str, Any]:
    """Aggregate every event file under ``telemetry_dir``.

    Returns a dict with:

    ``spans``
        ``{name: {"count", "total_s", "mean_s", "max_s"}}`` over all
        span records.
    ``counters``
        Per-name totals.  Counter snapshots are cumulative per source,
        so the aggregate takes each source's **last** snapshot and sums
        across sources.
    ``events``
        Per-name occurrence counts of instantaneous events.
    ``workers``
        ``{source: {"role", "tasks", "busy_s", "tasks_per_s"}}`` from
        "task" spans — the per-worker throughput view.
    ``n_records`` / ``n_sources``
        Volume of telemetry parsed.
    """
    spans: Dict[str, Dict[str, float]] = {}
    events: Dict[str, int] = {}
    last_counters: Dict[str, Dict[str, float]] = {}
    workers: Dict[str, Dict[str, Any]] = {}
    sources = set()
    n_records = 0

    for record in iter_events(telemetry_dir):
        n_records += 1
        source = str(record.get("source", "unknown"))
        sources.add(source)
        kind = record.get("type")
        name = str(record.get("name", ""))
        if kind == "span":
            duration = float(record.get("dur", 0.0))
            stats = spans.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            stats["count"] += 1
            stats["total_s"] += duration
            stats["max_s"] = max(stats["max_s"], duration)
            if name == "task":
                worker = workers.setdefault(
                    source,
                    {"role": str(record.get("role", "")), "tasks": 0,
                     "busy_s": 0.0},
                )
                worker["tasks"] += 1
                worker["busy_s"] += duration
        elif kind == "event":
            events[name] = events.get(name, 0) + 1
        elif kind == "counters":
            counters = record.get("counters")
            if isinstance(counters, dict):
                last_counters[source] = {
                    str(key): float(value)
                    for key, value in counters.items()
                    if isinstance(value, (int, float))
                }

    counters: Dict[str, float] = {}
    for per_source in last_counters.values():
        for name, value in per_source.items():
            counters[name] = counters.get(name, 0.0) + value

    for stats in spans.values():
        stats["mean_s"] = (
            stats["total_s"] / stats["count"] if stats["count"] else 0.0
        )
    for worker in workers.values():
        worker["tasks_per_s"] = (
            worker["tasks"] / worker["busy_s"] if worker["busy_s"] > 0
            else 0.0
        )

    return {
        "spans": spans,
        "counters": counters,
        "events": events,
        "workers": workers,
        "n_records": n_records,
        "n_sources": len(sources),
    }


def _hit_rate(counters: Dict[str, float], hit: str, miss: str) -> str:
    hits = counters.get(hit, 0.0)
    total = hits + counters.get(miss, 0.0)
    if total <= 0:
        return "-"
    return f"{100.0 * hits / total:.1f}% of {int(total)}"


def render_metrics_table(summary: Dict[str, Any]) -> List[str]:
    """Render the aggregate as aligned report lines."""
    lines: List[str] = []
    lines.append(
        f"telemetry summary: {summary['n_records']} records from "
        f"{summary['n_sources']} process(es)"
    )

    spans = summary["spans"]
    if spans:
        lines.append("  phase wall time:")
        name_width = max(len(name) for name in spans)
        for name in sorted(spans, key=lambda n: -spans[n]["total_s"]):
            stats = spans[name]
            lines.append(
                f"    {name:<{name_width}}  {stats['total_s']:>9.3f}s total"
                f"  x{int(stats['count']):<6d} mean {stats['mean_s']*1e3:8.2f}ms"
                f"  max {stats['max_s']*1e3:8.2f}ms"
            )

    counters = summary["counters"]
    if counters:
        lines.append("  cache:")
        lines.append(
            "    file tier   hits "
            + _hit_rate(counters, "cache.file.hit", "cache.file.miss")
        )
        if any(name.startswith("cache.sqlite.") for name in counters):
            lines.append(
                "    sqlite tier hits "
                + _hit_rate(counters, "cache.sqlite.hit", "cache.sqlite.miss")
                + f", {int(counters.get('cache.sqlite.migrated', 0))} migrated"
            )
        lines.append("  counters:")
        for name in sorted(counters):
            value = counters[name]
            rendered = (
                f"{value:.4g}" if value != int(value) else f"{int(value)}"
            )
            lines.append(f"    {name} = {rendered}")

    events = summary["events"]
    retries = events.get("task.retry", 0) + events.get("retry.backoff", 0)
    if events:
        lines.append("  events:")
        for name in sorted(events):
            lines.append(f"    {name} x{events[name]}")
    if retries:
        lines.append(f"  retries observed: {retries}")

    workers = summary["workers"]
    if workers:
        lines.append("  per-worker throughput (task spans):")
        for source in sorted(workers):
            worker = workers[source]
            role = f" [{worker['role']}]" if worker["role"] else ""
            lines.append(
                f"    {source}{role}: {worker['tasks']} tasks in "
                f"{worker['busy_s']:.3f}s busy "
                f"({worker['tasks_per_s']:.1f} tasks/s)"
            )
    return lines
