"""Structured telemetry for the campaign fabric.

* :mod:`repro.obs.recorder` — the span/event/counter/gauge recorder:
  a zero-overhead no-op by default, an append-only JSONL sink per
  process when enabled (``--telemetry`` / ``$REPRO_TELEMETRY``).
* :mod:`repro.obs.reader` — torn-tolerant event-log reader.
* :mod:`repro.obs.trace` — Chrome trace-event export (Perfetto).
* :mod:`repro.obs.metrics` — end-of-run aggregation and the metrics
  table (per-phase wall time, cache hit rates, retries, throughput).
* :mod:`repro.obs.status` — live queue-status and frontier-watch views.

Layering: this package imports only the stdlib and ``repro.util`` (the
status renderers lazily touch ``repro.analysis`` for knee selection);
the runners, kernels and cache tiers import *it*.  Telemetry never
perturbs results — wall-clock time exists only inside event records,
and every sink failure degrades to no-op.
"""

from repro.obs.metrics import aggregate_metrics, render_metrics_table
from repro.obs.reader import event_files, iter_events
from repro.obs.recorder import (
    EVENT_VERSION,
    NULL_RECORDER,
    NullRecorder,
    TELEMETRY_ENV,
    TelemetryRecorder,
    ensure_recorder,
    get_recorder,
    install_recorder,
    reset_recorder,
    set_recorder,
)
from repro.obs.status import (
    FrontierWatcher,
    format_duration,
    render_queue_status,
)
from repro.obs.trace import chrome_trace_events, export_chrome_trace

__all__ = [
    "EVENT_VERSION",
    "NULL_RECORDER",
    "NullRecorder",
    "TELEMETRY_ENV",
    "TelemetryRecorder",
    "FrontierWatcher",
    "aggregate_metrics",
    "chrome_trace_events",
    "ensure_recorder",
    "event_files",
    "export_chrome_trace",
    "format_duration",
    "get_recorder",
    "install_recorder",
    "iter_events",
    "render_metrics_table",
    "render_queue_status",
    "reset_recorder",
    "set_recorder",
]
