"""Live status views: queue snapshots and streaming frontier redraws.

Rendering helpers for the two live CLI views — ``pbbf-experiments queue
status`` (depth/leased/done/failed, per-worker heartbeat age, ETA from
the recent completion rate) and the pareto ``--watch-frontier`` mode
(periodic frontier/knee snapshots folded from the ``on_point`` stream).
Everything here formats and prints; nothing feeds back into execution,
so the views can never perturb results.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, List, Optional, TextIO


def format_duration(seconds: Optional[float]) -> str:
    """``95.0 -> "1m35s"``; None/negative -> ``"-"``."""
    if seconds is None or seconds < 0:
        return "-"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_queue_status(snapshot: Dict[str, Any]) -> List[str]:
    """Render a ``WorkQueue.status_snapshot()`` as report lines."""
    counts = snapshot.get("counts", {})
    total = snapshot.get("total", sum(counts.values()))
    lines = [f"queue {snapshot.get('queue_dir', '')}:"]
    lines.append(
        "  tasks: "
        + ", ".join(
            f"{counts.get(state, 0)} {state}"
            for state in ("pending", "leased", "done", "exhausted")
        )
        + f" ({total} total)"
    )
    config = snapshot.get("config") or {}
    if config:
        parts = []
        if config.get("lease_s") is not None:
            parts.append(f"lease {config['lease_s']:g}s")
        if config.get("policy"):
            parts.append(f"policy {config['policy']}")
        if config.get("telemetry"):
            parts.append(f"telemetry {config['telemetry']}")
        if parts:
            lines.append("  config: " + ", ".join(parts))
    rate = snapshot.get("rate_per_s")
    window_s = snapshot.get("window_s")
    remaining = counts.get("pending", 0) + counts.get("leased", 0)
    if rate:
        lines.append(
            f"  rate: {rate:.2f} tasks/s over the last "
            f"{format_duration(window_s)}"
            + (
                f"; ETA {format_duration(remaining / rate)}"
                f" for {remaining} remaining"
                if remaining
                else "; queue drained"
            )
        )
    elif remaining:
        lines.append(
            f"  rate: no completions in the last "
            f"{format_duration(window_s)}; ETA unknown "
            f"({remaining} remaining)"
        )
    workers = snapshot.get("workers", [])
    if workers:
        lines.append("  workers:")
        for worker in workers:
            lines.append(
                f"    {worker['worker']}: last seen "
                f"{format_duration(worker['age_s'])} ago, "
                f"{worker['tasks_done']} tasks done"
            )
    else:
        lines.append("  workers: none have heartbeat yet")
    return lines


class FrontierWatcher:
    """Fold an ``on_point`` stream into periodic frontier snapshots.

    Wraps a :class:`~repro.analysis.streaming.StreamingFrontier`:
    ``on_point`` feeds the stream, and at most once per ``interval_s``
    (plus once at :meth:`final`) the current frontier and knee are
    redrawn to ``out`` (stderr by default — stdout stays reserved for
    the campaign's deterministic report).
    """

    def __init__(
        self,
        stream: Any,
        interval_s: float = 2.0,
        out: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stream = stream
        self.interval_s = interval_s
        self.out = out if out is not None else sys.stderr
        self._clock = clock
        self._last_draw: Optional[float] = None
        self.n_draws = 0

    def on_point(self, run: Any, metrics: Any) -> None:
        """The ``run_campaign(on_point=...)`` callback."""
        self.stream.on_point(run, metrics)
        now = self._clock()
        if (
            self._last_draw is not None
            and now - self._last_draw < self.interval_s
        ):
            return
        self._last_draw = now
        self._draw()

    def final(self) -> None:
        """Draw the finished frontier (always, regardless of throttle)."""
        self._draw(final=True)

    def _draw(self, final: bool = False) -> None:
        from repro.analysis.selectors import knee_index

        frontier = self.stream.frontier()
        self.n_draws += 1
        tag = "final frontier" if final else "frontier"
        header = (
            f"  [{tag}] {self.stream.n_seen} results in, "
            f"{len(frontier)} non-dominated, {frontier.n_dominated} dominated"
        )
        print(header, file=self.out)
        if not frontier.points:
            return
        knee = None
        if len(frontier.objectives) == 2 and len(frontier.points) >= 1:
            knee = knee_index(frontier)
        for index, point in enumerate(frontier.points):
            values = ", ".join(
                f"{objective.name}={value:.4g}"
                for objective, value in zip(frontier.objectives, point.values)
            )
            marker = "  <- knee" if knee is not None and index == knee else ""
            print(f"    {point.label}: {values}{marker}", file=self.out)
