"""Structured telemetry: spans, counters and gauges for the campaign fabric.

The execution stack (evaluators, backends, queue, cache tiers) calls
:func:`get_recorder` and records what it is doing — phase spans around
realize/simulate/analyze/cache work, lease lifecycle events, hit/miss
counters.  By default the recorder is the :data:`NULL_RECORDER`: every
method is a no-op returning a shared null context manager, so the
disabled path costs one attribute lookup and an empty call — nothing is
timed, formatted or written (the campaign-throughput benchmark pins
this).

Enabled (``--telemetry DIR`` / ``$REPRO_TELEMETRY``), a
:class:`TelemetryRecorder` appends one JSON line per span/event/gauge to
``DIR/events-<source>.jsonl`` — one file per process, so pool and queue
workers never contend for a handle — flushed line by line like the
campaign journal, so a SIGKILL tears at most the final line and every
reader (trace export, metrics aggregation) skips torn lines.

The hard invariant, shared with the fault-injection layer: telemetry
must never perturb results.  The recorder draws nothing from the
simulation seed streams, its wall-clock timestamps go only into its own
records, and every write is best-effort — an unwritable directory (or a
mid-write crash, exercised by ``torn_write_rate``) degrades to no-op
with one warning rather than failing, or changing, the campaign.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.util.rng import fold_seed, hash_to_unit_interval

#: Bumped if the event-record layout changes; readers skip other-era
#: records rather than misreading them.
EVENT_VERSION = 1

#: Environment variable naming the telemetry directory (the CLI flag's
#: fallback, and how spawned tooling can enable telemetry ambiently).
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Root of the deterministic torn-write stream (fault injection for the
#: "telemetry crashed mid-write" tests).  A fixed constant, disjoint
#: from every simulation stream.
_TORN_STREAM_SEED = 0x0B5E_EED5

#: Seconds between periodic counter snapshots riding along with event
#: writes (so long-lived workers' counters survive a hard kill).
_COUNTER_FLUSH_S = 5.0


class _NullSpan:
    """A reusable, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default: every operation is an empty call."""

    __slots__ = ()
    enabled = False
    directory: Optional[Path] = None

    def span(self, name: str, **fields: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        return None

    def counter(self, name: str, value: Union[int, float] = 1) -> None:
        return None

    def gauge(self, name: str, value: Union[int, float]) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()


class _Span:
    """One live span: measures a perf-counter duration, then records."""

    __slots__ = ("_recorder", "name", "fields", "_start", "_ts")

    def __init__(self, recorder: "TelemetryRecorder", name: str,
                 fields: Dict[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.fields = fields

    def __enter__(self) -> "_Span":
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, *_exc: Any) -> bool:
        duration = time.perf_counter() - self._start
        record = {
            "type": "span",
            "name": self.name,
            "ts": self._ts,
            "dur": duration,
        }
        if exc_type is not None:
            record["error"] = getattr(exc_type, "__name__", str(exc_type))
        if self.fields:
            record.update(self.fields)
        self._recorder._emit(record)
        return False


class TelemetryRecorder:
    """Append-only JSONL telemetry sink for one process.

    Parameters
    ----------
    directory:
        Where event files live; created on first write.  One campaign's
        processes (parent, pool workers, queue workers on any machine)
        share a directory and each writes its own ``events-<source>``
        file.
    role:
        A short label ("parent", "pool-worker", "queue-worker") stamped
        into every record, so aggregation can attribute work.
    source:
        The per-process identity (default ``<hostname>-<pid>``) naming
        this process's event file.
    torn_write_rate:
        Deterministic fault injection: this fraction of writes is torn
        mid-line (no trailing newline), simulating a crash between write
        and flush.  Drawn from a named hash stream keyed by the record
        sequence number — never from any simulation RNG — so the fault
        pattern replays exactly and results stay bit-identical.
    """

    enabled = True

    def __init__(
        self,
        directory: Union[str, Path],
        role: str = "parent",
        source: Optional[str] = None,
        torn_write_rate: float = 0.0,
    ) -> None:
        self.directory = Path(directory)
        self.role = role
        if source is None:
            source = f"{socket.gethostname()}-{os.getpid()}"
        self.source = source
        self.torn_write_rate = torn_write_rate
        self.path = self.directory / f"events-{source}.jsonl"
        self._torn_seed = fold_seed(
            _TORN_STREAM_SEED, "torn-telemetry", source
        )
        self._handle = None
        self._write_failed = False
        self._seq = 0
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._last_counter_flush = time.monotonic()

    # -- the recording API --------------------------------------------------

    def span(self, name: str, **fields: Any) -> _Span:
        """A context manager timing one operation into a span record."""
        return _Span(self, name, fields)

    def event(self, name: str, **fields: Any) -> None:
        """Record one instantaneous event."""
        record = {"type": "event", "name": name, "ts": time.time()}
        if fields:
            record.update(fields)
        self._emit(record)

    def counter(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` to a named monotonic counter (in-memory; the
        aggregate is written as periodic snapshot records, not per
        increment, so hot cache loops stay cheap)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: Union[int, float]) -> None:
        """Record a point-in-time level (queue depth, workers alive)."""
        with self._lock:
            self._gauges[name] = value
        self._emit({"type": "gauge", "name": name, "ts": time.time(),
                    "value": value})

    def counters_snapshot(self) -> Dict[str, float]:
        """The current counter aggregate (a copy)."""
        with self._lock:
            return dict(self._counters)

    # -- the sink -----------------------------------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._write_failed:
            return
        record["v"] = EVENT_VERSION
        record["source"] = self.source
        record["role"] = self.role
        record["pid"] = os.getpid()
        with self._lock:
            self._write_line(record)
            now = time.monotonic()
            if (
                self._counters
                and now - self._last_counter_flush >= _COUNTER_FLUSH_S
            ):
                self._last_counter_flush = now
                self._write_counters_locked()

    def _write_counters_locked(self) -> None:
        if not self._counters:
            return
        self._write_line({
            "v": EVENT_VERSION,
            "type": "counters",
            "ts": time.time(),
            "source": self.source,
            "role": self.role,
            "pid": os.getpid(),
            "counters": dict(self._counters),
        })

    def _write_line(self, record: Dict[str, Any]) -> None:
        """Append one record (caller holds the lock); best-effort."""
        if self._write_failed:
            return
        try:
            line = json.dumps(record, sort_keys=True, default=str)
        except (TypeError, ValueError):  # unserializable field: drop it
            return
        seq = self._seq
        self._seq += 1
        if self.torn_write_rate > 0 and (
            hash_to_unit_interval(self._torn_seed, seq)
            < self.torn_write_rate
        ):
            # Injected mid-write crash: half the bytes, no newline — the
            # next record concatenates onto the stump, and readers must
            # skip the resulting garbage line.
            line = line[: max(1, len(line) // 2)]
            terminator = ""
        else:
            terminator = "\n"
        try:
            if self._handle is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + terminator)
            self._handle.flush()
        except OSError as exc:
            self._write_failed = True
            warnings.warn(
                f"telemetry sink at {self.directory} is not writable "
                f"({exc}); continuing without telemetry",
                RuntimeWarning,
                stacklevel=3,
            )

    def flush(self) -> None:
        """Write a counters snapshot and flush the handle."""
        with self._lock:
            self._write_counters_locked()
            self._last_counter_flush = time.monotonic()

    def close(self) -> None:
        """Final counters snapshot, then release the handle."""
        self.flush()
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetryRecorder({str(self.directory)!r}, "
            f"role={self.role!r}, source={self.source!r})"
        )


# -- the ambient recorder ---------------------------------------------------

_recorder: Optional[Any] = None
_env_resolved = False


def get_recorder() -> Any:
    """The process-wide recorder; the no-op singleton unless installed.

    When nothing has been installed explicitly, ``$REPRO_TELEMETRY``
    (checked once per process) enables a recorder at that directory —
    the ambient path for tooling that never touches the CLI flags.
    """
    global _recorder, _env_resolved
    if _recorder is not None:
        return _recorder
    if not _env_resolved:
        _env_resolved = True
        directory = os.environ.get(TELEMETRY_ENV)
        if directory:
            _recorder = TelemetryRecorder(directory, role="ambient")
            return _recorder
    return NULL_RECORDER


def install_recorder(
    directory: Union[str, Path],
    role: str = "parent",
    source: Optional[str] = None,
    torn_write_rate: float = 0.0,
) -> TelemetryRecorder:
    """Install (and return) a live recorder for this process."""
    global _recorder
    if _recorder is not None and _recorder is not NULL_RECORDER:
        _recorder.close()
    _recorder = TelemetryRecorder(
        directory, role=role, source=source, torn_write_rate=torn_write_rate
    )
    return _recorder


def set_recorder(recorder: Any) -> None:
    """Install an arbitrary recorder object (tests, custom sinks)."""
    global _recorder
    _recorder = recorder


def ensure_recorder(directory: Optional[Union[str, Path]],
                    role: str = "parent") -> Any:
    """Install from ``directory`` unless a live recorder already exists.

    The campaign layer's entry point: the ambient
    ``ExecutionConfig.telemetry_dir`` enables telemetry for library
    callers that never went through the CLI, without double-installing
    over a recorder the CLI (or a test) already set up.
    """
    current = get_recorder()
    if current.enabled or not directory:
        return current
    return install_recorder(directory, role=role)


def reset_recorder() -> None:
    """Close and drop the installed recorder (tests, CLI teardown)."""
    global _recorder, _env_resolved
    if _recorder is not None and _recorder is not NULL_RECORDER:
        try:
            _recorder.close()
        except Exception:  # pragma: no cover - defensive
            pass
    _recorder = None
    _env_resolved = False
