"""Chrome trace-event export for telemetry event logs.

``pbbf-experiments trace export --telemetry DIR --out trace.json``
converts the per-process JSONL event files into the Chrome trace-event
JSON format, loadable in ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev).  Each telemetry source (process) becomes a
trace "process" with a named lane; spans become complete ("X") events,
instantaneous events become "i" marks, and gauges/counter snapshots
become counter ("C") tracks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.obs.reader import iter_events


def _trace_pid(source: str, pids: Dict[str, int]) -> int:
    if source not in pids:
        pids[source] = len(pids) + 1
    return pids[source]


def chrome_trace_events(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Convert parsed telemetry records to Chrome trace events."""
    pids: Dict[str, int] = {}
    roles: Dict[str, str] = {}
    events: List[Dict[str, Any]] = []
    for record in records:
        source = str(record.get("source", "unknown"))
        pid = _trace_pid(source, pids)
        roles.setdefault(source, str(record.get("role", "")))
        ts_us = float(record.get("ts", 0.0)) * 1e6
        kind = record.get("type")
        name = record.get("name", "")
        args = {
            key: value
            for key, value in record.items()
            if key not in ("v", "type", "name", "ts", "dur", "source",
                           "role", "pid")
        }
        if kind == "span":
            events.append({
                "name": name, "ph": "X", "pid": pid, "tid": 1,
                "ts": ts_us, "dur": float(record.get("dur", 0.0)) * 1e6,
                "cat": "span", "args": args,
            })
        elif kind == "event":
            events.append({
                "name": name, "ph": "i", "pid": pid, "tid": 1,
                "ts": ts_us, "s": "p", "cat": "event", "args": args,
            })
        elif kind == "gauge":
            events.append({
                "name": name, "ph": "C", "pid": pid, "ts": ts_us,
                "args": {name: record.get("value", 0)},
            })
        elif kind == "counters":
            counters = record.get("counters", {})
            if isinstance(counters, dict):
                for cname, cvalue in sorted(counters.items()):
                    events.append({
                        "name": cname, "ph": "C", "pid": pid, "ts": ts_us,
                        "args": {cname: cvalue},
                    })
    # Perfetto shows these as the process lane names.
    for source, pid in pids.items():
        label = source if not roles[source] else f"{roles[source]} {source}"
        events.append({
            "name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": label},
        })
    return events


def export_chrome_trace(
    telemetry_dir: Union[str, Path],
    out_path: Union[str, Path],
) -> int:
    """Write a Chrome trace JSON for ``telemetry_dir``; returns the
    number of trace events exported (metadata records excluded)."""
    events = chrome_trace_events(iter_events(telemetry_dir))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    out = Path(out_path)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return sum(1 for event in events if event["ph"] != "M")
