"""Adaptive PBBF: the paper's Section 6 future-work heuristics.

The conclusion sketches two controllers the authors leave open:

    "when a node overhears more nodes involved in communication, p could
    be increased since more nodes will be active to receive the broadcast.
    Additionally, the q parameter could be increased in response to a node
    detecting a large fraction of broadcast packets are not being
    received."

This package implements both as an agent-level extension —
:class:`~repro.adaptive.controller.AdaptivePBBFAgent` is a drop-in
replacement for :class:`~repro.core.pbbf.PBBFAgent` that observes exactly
what a node can observe (receptions, duplicates, sequence-number gaps) and
nudges p and q once per sleep decision.  No MAC changes are needed, which
is itself evidence for the paper's layering claim.
"""

from repro.adaptive.controller import AdaptivePBBFAgent, AdaptivePolicy

__all__ = [
    "AdaptivePBBFAgent",
    "AdaptivePolicy",
]
