"""Adaptive PBBF: the paper's Section 6 future-work heuristics.

The conclusion sketches two controllers the authors leave open:

    "when a node overhears more nodes involved in communication, p could
    be increased since more nodes will be active to receive the broadcast.
    Additionally, the q parameter could be increased in response to a node
    detecting a large fraction of broadcast packets are not being
    received."

This package implements both as an agent-level extension —
:class:`~repro.adaptive.controller.AdaptivePBBFAgent` is a drop-in
replacement for :class:`~repro.core.pbbf.PBBFAgent` that observes exactly
what a node can observe (receptions, duplicates, sequence-number gaps) and
nudges p and q once per sleep decision.  No MAC changes are needed, which
is itself evidence for the paper's layering claim.

Where should the controller settle?  Remark 1 gives the *feasible* region
(the minimum q per p for a reliability level); the trade-off subsystem
names the *desirable* point on it — the max-curvature knee of the static
frontier (:func:`repro.analysis.selectors.knee_point`).  The ``pareto02``
figure overlays this controller's operating points on that frontier: a
well-tuned policy should land at (or inside) the knee's neighbourhood,
delivering equal reliability at lower energy than the static points it
started from.
"""

from repro.adaptive.controller import AdaptivePBBFAgent, AdaptivePolicy

__all__ = [
    "AdaptivePBBFAgent",
    "AdaptivePolicy",
]
