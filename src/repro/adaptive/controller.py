"""The adaptive p/q controller.

Signals (all locally observable at a node, per adjustment window):

* **activity** — how many distinct frames (fresh or duplicate) the node
  heard.  Duplicates are good news here: they mean many awake neighbours,
  so an immediate broadcast would find an audience.  High activity nudges
  p up; silence nudges it down (the paper's first heuristic).
* **miss fraction** — broadcasts are source-sequenced, so a gap between
  consecutively received sequence numbers is a detected loss.  A high
  recent miss fraction nudges q up; loss-free windows let q decay (the
  paper's second heuristic).

Adjustments are bounded additive steps (AIAD), evaluated once per sleep
decision — i.e. once per frame, the protocol's natural control interval.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.core.params import PBBFParams
from repro.core.pbbf import ForwardingDecision, PBBFAgent, SleepDecision
from repro.util.canonical import canonical_json
from repro.util.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class AdaptivePolicy:
    """Controller gains and bounds.

    Attributes
    ----------
    p_min / p_max / q_min / q_max:
        Clamps on the adapted parameters.  Keep ``q_min`` at or above the
        Remark 1 frontier for the chosen ``p_max`` if reliability must
        never be sacrificed.  Remark 1 describes that frontier pointwise;
        the knee-point selector
        (:func:`repro.analysis.selectors.knee_point`) names the spot on
        it a well-tuned controller should hover around — the ``pareto02``
        figure overlays this controller's operating points on the static
        (p, q) frontier to check exactly that.
    p_step / q_step:
        Additive adjustment per window.
    activity_target:
        Frames heard per window at which p holds steady; more activity
        raises p, less lowers it.
    miss_target:
        Detected miss fraction at which q holds steady.
    """

    p_min: float = 0.0
    p_max: float = 0.9
    q_min: float = 0.0
    q_max: float = 1.0
    p_step: float = 0.05
    q_step: float = 0.05
    activity_target: float = 1.0
    miss_target: float = 0.02

    def __post_init__(self) -> None:
        check_probability("p_min", self.p_min)
        check_probability("p_max", self.p_max)
        check_probability("q_min", self.q_min)
        check_probability("q_max", self.q_max)
        check_probability("p_step", self.p_step)
        check_probability("q_step", self.q_step)
        check_non_negative("activity_target", self.activity_target)
        check_probability("miss_target", self.miss_target)
        if self.p_min > self.p_max:
            raise ValueError(f"p_min ({self.p_min}) > p_max ({self.p_max})")
        if self.q_min > self.q_max:
            raise ValueError(f"q_min ({self.q_min}) > q_max ({self.q_max})")

    @property
    def token(self) -> str:
        """Canonical JSON of the policy's fields.

        Campaigns sweep adaptive controllers by carrying this token as a
        plain string parameter value (the same pattern as
        :attr:`repro.scenarios.ScenarioSpec.token`), so policies hash,
        seed-fold, pickle and disk-cache like any scalar axis.
        """
        return canonical_json(asdict(self))

    @classmethod
    def from_token(cls, token: str) -> "AdaptivePolicy":
        """Rebuild a policy from its canonical token (validating fields)."""
        try:
            payload = json.loads(token)
        except ValueError as exc:
            raise ValueError(f"invalid adaptive-policy token: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError(
                f"adaptive-policy token must encode an object, got {token!r}"
            )
        known = {field for field in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"adaptive-policy token has unknown fields {sorted(unknown)}"
            )
        return cls(**payload)


class AdaptivePBBFAgent(PBBFAgent):
    """A PBBF agent whose p and q drift with observed conditions.

    Drop-in replacement for :class:`~repro.core.pbbf.PBBFAgent`: the MACs
    call the same two methods, and adjustment happens inside
    :meth:`sleep_decision` (once per frame).
    """

    def __init__(
        self,
        params: PBBFParams,
        rng: Optional[random.Random] = None,
        policy: Optional[AdaptivePolicy] = None,
    ) -> None:
        super().__init__(params, rng)
        self.policy = policy if policy is not None else AdaptivePolicy()
        self._frames_heard_this_window = 0
        self._misses_this_window = 0
        self._receptions_this_window = 0
        self._highest_seqno: Dict[Hashable, int] = {}
        #: (p, q) after each adjustment — lets experiments plot convergence.
        self.trajectory: Tuple[Tuple[float, float], ...] = ()

    # -- observations -----------------------------------------------------

    def receive_broadcast(self, broadcast_id: Hashable) -> ForwardingDecision:
        """Observe the reception (activity + sequence gaps), then decide."""
        self._frames_heard_this_window += 1
        origin, seqno = self._split(broadcast_id)
        if origin is not None:
            previous = self._highest_seqno.get(origin)
            if previous is not None and seqno > previous + 1:
                self._misses_this_window += seqno - previous - 1
            if previous is None or seqno > previous:
                self._highest_seqno[origin] = seqno
            self._receptions_this_window += 1
        return super().receive_broadcast(broadcast_id)

    def sleep_decision(
        self, data_to_send: bool = False, data_to_recv: bool = False
    ) -> SleepDecision:
        """Adjust (p, q) for the closing window, then decide as usual."""
        self._adjust()
        return super().sleep_decision(data_to_send, data_to_recv)

    # -- controller ---------------------------------------------------------

    def _adjust(self) -> None:
        policy = self.policy
        p, q = self.params.p, self.params.q

        if self._frames_heard_this_window > policy.activity_target:
            p = min(policy.p_max, p + policy.p_step)
        elif self._frames_heard_this_window < policy.activity_target:
            p = max(policy.p_min, p - policy.p_step)

        observed = self._receptions_this_window + self._misses_this_window
        if observed > 0:
            miss_fraction = self._misses_this_window / observed
            if miss_fraction > policy.miss_target:
                q = min(policy.q_max, q + policy.q_step)
            else:
                q = max(policy.q_min, q - policy.q_step)

        if (p, q) != (self.params.p, self.params.q):
            self.params = PBBFParams(p=p, q=q)
        self.trajectory = self.trajectory + ((p, q),)
        self._frames_heard_this_window = 0
        self._misses_this_window = 0
        self._receptions_this_window = 0

    @staticmethod
    def _split(broadcast_id: Hashable) -> Tuple[Optional[int], int]:
        """Extract (origin, seqno) when the id has the standard shape."""
        if (
            isinstance(broadcast_id, tuple)
            and len(broadcast_id) == 2
            and isinstance(broadcast_id[1], int)
        ):
            return broadcast_id[0], broadcast_id[1]
        return None, 0
