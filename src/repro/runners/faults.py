"""Deterministic fault injection for the campaign harness.

Tests and CI need to *prove* every recovery path — worker crashes, hangs
past the task deadline, garbage results, torn cache writes — and proofs
need reproducible faults.  A :class:`FaultPlan` decides each fault from a
named RNG stream keyed by the task's run-key hash and its attempt
number, the same common-random-numbers discipline the scenario layer
uses for node deaths: whether task X crashes on attempt N is a pure
function of the plan, never of scheduling, pool size or wall clock.

Faults wrap task execution at the backend layer and never reach the
point evaluators, so an injected-fault campaign that recovers produces
metrics bit-identical to a fault-free one (the chaos-parity acceptance
bar).  By default a plan only fires on attempt 0 (``max_attempt=1``), so
every faulted task succeeds on its first retry; raise ``max_attempt`` to
exercise retry exhaustion.

Install a plan through the ambient execution context
(``execution(fault_plan=...)``) or, for subprocesses and CI, the
``$REPRO_FAULT_PLAN`` environment variable holding the plan's JSON
token::

    REPRO_FAULT_PLAN='{"crash_rate": 0.2}' pbbf-experiments run scen03
"""

from __future__ import annotations

import json
import os
import time
import warnings
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from functools import lru_cache
from typing import Iterator, Optional

from repro.runners.context import get_execution
from repro.runners.failures import WorkerCrashError
from repro.util.rng import fold_seed, hash_to_unit_interval

#: Flat-dict value a corrupt-result fault substitutes for real metrics;
#: it fails schema validation in the parent, triggering a retry.
CORRUPT_RESULT_MARKER = {"__fault__": "corrupt-result"}

#: Exit code an injected crash kills its worker process with (distinct
#: from real signals so pool logs stay diagnosable).
CRASH_EXIT_CODE = 73

#: Environment variable consulted when no plan is installed in-context.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault rates for campaign task execution.

    Each rate is the per-attempt probability (drawn from the task's own
    stream) of that fault firing; ``decide`` checks them in declaration
    order and at most one task-level fault fires per attempt.
    """

    #: P(worker dies mid-task): ``os._exit`` in a pool worker, a raised
    #: :class:`WorkerCrashError` when the task runs in-process.
    crash_rate: float = 0.0
    #: P(task sleeps ``hang_s`` before evaluating) — with a policy
    #: ``timeout_s`` below ``hang_s`` this exercises the deadline path.
    hang_rate: float = 0.0
    #: P(task returns schema-invalid metrics dicts).
    corrupt_result_rate: float = 0.0
    #: P(a cache write for a key is torn): the entry file is truncated
    #: mid-JSON, exercising quarantine-on-read.
    corrupt_cache_rate: float = 0.0
    #: How long a hang fault sleeps.
    hang_s: float = 60.0
    #: Faults only fire while ``attempt < max_attempt``; the default 1
    #: means first attempts only, so retries always recover.
    max_attempt: int = 1
    #: Root of the plan's fault streams (vary to resample which tasks
    #: fault at the same rates).
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "corrupt_result_rate",
                     "corrupt_cache_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be > 0, got {self.hang_s}")
        if self.max_attempt < 1:
            raise ValueError(f"max_attempt must be >= 1, got {self.max_attempt}")

    def _draw(self, fault: str, key: str, attempt: int) -> float:
        return hash_to_unit_interval(
            fold_seed(self.seed, "fault", fault, key), attempt
        )

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The task-level fault (if any) for attempt ``attempt`` of ``key``."""
        if attempt >= self.max_attempt:
            return None
        for fault, rate in (
            ("crash", self.crash_rate),
            ("hang", self.hang_rate),
            ("corrupt_result", self.corrupt_result_rate),
        ):
            if rate > 0.0 and self._draw(fault, key, attempt) < rate:
                return fault
        return None

    def corrupts_cache_write(self, key: str) -> bool:
        """Whether the cache write for ``key`` should be torn.

        Independent of attempts: cache writes happen in the parent after
        a task succeeds, so the decision keys on the entry alone.
        """
        return (
            self.corrupt_cache_rate > 0.0
            and self._draw("corrupt_cache", key, 0) < self.corrupt_cache_rate
        )

    @property
    def token(self) -> str:
        """Canonical JSON form (for ``$REPRO_FAULT_PLAN`` and workers)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_token(cls, token: str) -> "FaultPlan":
        """Rebuild a plan from its token; partial tokens keep defaults."""
        payload = json.loads(token)
        if not isinstance(payload, dict):
            raise ValueError(f"fault-plan token must be a JSON object: {token!r}")
        known = {field.name for field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"fault-plan token has unknown fields {sorted(unknown)}"
            )
        return cls(**payload)


_suppressed = 0
_in_pool_worker = False
_warned_bad_env = False


@contextmanager
def suppress_faults() -> Iterator[None]:
    """Scope with fault injection off (degraded last-resort attempts)."""
    global _suppressed
    _suppressed += 1
    try:
        yield
    finally:
        _suppressed -= 1


def mark_pool_worker() -> None:
    """Flag this process as a pool worker (crash faults ``os._exit``)."""
    global _in_pool_worker
    _in_pool_worker = True


@lru_cache(maxsize=8)
def _plan_from_token(token: str) -> FaultPlan:
    return FaultPlan.from_token(token)


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan in effect: context first, then ``$REPRO_FAULT_PLAN``.

    An unparsable environment token degrades to no injection with one
    warning — fault injection is a test harness and must never break a
    real campaign.
    """
    global _warned_bad_env
    if _suppressed:
        return None
    plan = get_execution().fault_plan
    if plan is not None:
        return plan
    token = os.environ.get(FAULT_PLAN_ENV)
    if not token:
        return None
    try:
        return _plan_from_token(token)
    except (ValueError, TypeError) as exc:
        if not _warned_bad_env:
            _warned_bad_env = True
            warnings.warn(
                f"ignoring {FAULT_PLAN_ENV}={token!r} ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )
        return None


def apply_task_fault(key: str, attempt: int) -> Optional[str]:
    """Apply the active plan's fault for one task attempt, if any.

    Crash and hang faults act immediately (process exit / sleep); a
    ``corrupt_result`` decision is *returned* so the caller can replace
    the evaluated metrics — corruption must never touch the evaluators
    themselves, or their in-process caches would poison later retries.
    """
    plan = active_fault_plan()
    if plan is None:
        return None
    fault = plan.decide(key, attempt)
    if fault == "crash":
        if _in_pool_worker:
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrashError(
            f"injected crash (task {key[:12]}, attempt {attempt})"
        )
    if fault == "hang":
        time.sleep(plan.hang_s)
        return None
    return fault


def cache_write_corrupted(key: str) -> bool:
    """Whether the active plan tears the cache write for ``key``."""
    plan = active_fault_plan()
    return plan is not None and plan.corrupts_cache_write(key)
