"""Shared SQLite cache tier: batched reads for campaign-scale key sets.

The JSON file cache pays one ``stat`` + ``open`` + parse per key, which
is fine for a figure's hundreds of points and ruinous for a
million-point campaign whose warm second run is *nothing but* cache
reads.  :class:`SQLiteCacheTier` keeps the same payloads (and the same
``CACHE_VERSION`` contract) in one SQLite database per cache root
(``cache.sqlite``, WAL mode), so the campaign scan's
:meth:`~SQLiteCacheTier.get_many` is a handful of batched ``SELECT``s
instead of a filesystem walk — and several writers (sharded-backend
parents on different machines sharing the cache directory) coexist via
SQLite's single-writer transaction protocol with busy-timeout retry.

The tier sits *behind* the file layer rather than replacing it:

* **migration** — a key missing from the database falls back to the
  JSON file layer and, on a hit, is copied in, so pointing
  ``--cache-tier sqlite`` at an existing cache directory warms the
  database incrementally (or all at once via :meth:`migrate_files`);
* **write-through** — every ``put`` also lands the ordinary JSON entry
  file (on by default), so the directory stays readable by the file
  tier, older checkouts, and plain ``ls``-based forensics.

Like the file layer, the tier is strictly a performance layer: corrupt
rows quarantine (into a ``quarantine`` table, visible in ``cache
stats``), version-mismatched rows read as misses, and an unusable
database degrades to the file layer with one warning rather than
failing the campaign.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.obs import get_recorder
from repro.runners.cache import (
    CACHE_VERSION,
    CacheStats,
    PurgeReport,
    ResultCache,
    default_max_size_mb,
)
from repro.runners.faults import cache_write_corrupted
from repro.runners.object_store import object_marker_ref, refs_in_text

#: Database file name inside the cache root.
DB_FILENAME = "cache.sqlite"

#: How long a writer waits on the database lock before SQLite gives up
#: (seconds); generous because campaign writers hold transactions for
#: microseconds and purges for milliseconds.
BUSY_TIMEOUT_S = 30.0

#: Keys per ``IN (...)`` batch — under the 999 bound-variable limit of
#: older SQLite builds.
_BATCH = 900

#: Extra sleep-and-retry schedule wrapped around write transactions, for
#: the rare lock timeout that outlives the busy handler.
_RETRY_DELAYS_S = (0.0, 0.05, 0.2, 0.8)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries(
    key      TEXT PRIMARY KEY,
    kind     TEXT,
    version  INTEGER NOT NULL,
    payload  TEXT NOT NULL,
    nbytes   INTEGER NOT NULL,
    created  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine(
    key          TEXT PRIMARY KEY,
    payload      TEXT,
    quarantined  REAL NOT NULL
);
"""


def _chunks(keys: Sequence[str], size: int = _BATCH) -> Iterable[Sequence[str]]:
    for start in range(0, len(keys), size):
        yield keys[start:start + size]


class SQLiteCacheTier:
    """Campaign result cache backed by one SQLite database per root.

    Drop-in for :class:`~repro.runners.cache.ResultCache` everywhere the
    campaign layer is concerned (``get`` / ``put`` / ``get_many`` /
    ``put_many`` / ``has`` / ``stats`` / ``purge``), selected by the
    CLI's ``--cache-tier sqlite``.

    Parameters
    ----------
    root:
        Cache directory (shared with the file layer); default as for
        :class:`ResultCache`.
    max_size_mb:
        Evict-on-insert budget over the tier's stored payload bytes;
        evictions remove the mirrored JSON files too.
    write_through:
        Mirror every write into the JSON file layer (default on).
    object_store:
        Replace large flat-metrics payloads with content-addressed
        references (shared with the file layer, which gets the same
        flag); markers are resolved on read regardless of the flag.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        max_size_mb: Optional[float] = None,
        write_through: bool = True,
        busy_timeout_s: float = BUSY_TIMEOUT_S,
        object_store: bool = False,
    ) -> None:
        # The file layer carries no budget of its own: the tier owns
        # eviction and removes mirrored files alongside evicted rows.
        self.files = ResultCache(root, max_size_mb=0.0 or None, object_store=object_store)
        self.files.max_size_mb = None
        self.object_store = bool(object_store)
        #: Shared with the file layer so write-through entries and
        #: database rows reference the same stored objects.
        self.objects = self.files.objects
        self.root = self.files.root
        if max_size_mb is None:
            max_size_mb = default_max_size_mb()
        if max_size_mb is not None and max_size_mb < 0:
            raise ValueError(f"max_size_mb must be >= 0, got {max_size_mb}")
        self.max_size_mb = max_size_mb
        self.write_through = write_through
        self.busy_timeout_s = busy_timeout_s
        self.db_path = self.root / DB_FILENAME
        #: Corrupt rows this instance moved into the quarantine table.
        self.quarantined = 0
        self._con: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None
        self._degraded = False

    # -- connection --------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """The process-local connection (re-opened after a fork)."""
        if self._con is not None and self._pid == os.getpid():
            return self._con
        self.root.mkdir(parents=True, exist_ok=True)
        con = sqlite3.connect(
            str(self.db_path),
            timeout=self.busy_timeout_s,
            check_same_thread=False,
            # Campaign scans re-issue the same handful of statements
            # thousands of times; a deeper statement cache skips the
            # re-prepare entirely.
            cached_statements=256,
        )
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA synchronous=NORMAL")
        # Map the database instead of read()-ing it page by page: the
        # campaign scan's batched SELECTs then touch warm page cache
        # directly, with no per-page syscalls.
        con.execute("PRAGMA mmap_size=268435456")
        con.executescript(_SCHEMA)
        con.commit()
        self._con = con
        self._pid = os.getpid()
        return con

    def close(self) -> None:
        """Release the connection (tests; reopened lazily on next use)."""
        if self._con is not None and self._pid == os.getpid():
            try:
                self._con.close()
            except sqlite3.Error:  # pragma: no cover - defensive
                pass
        self._con = None
        self._pid = None

    def _degrade(self, exc: BaseException) -> None:
        if self._degraded:
            return
        self._degraded = True
        recorder = get_recorder()
        recorder.counter("cache.sqlite.degraded")
        recorder.event(
            "cache.degraded", tier="sqlite", error=type(exc).__name__
        )
        warnings.warn(
            f"sqlite cache tier at {self.db_path} is unusable ({exc}); "
            "continuing on the JSON file layer",
            RuntimeWarning,
            stacklevel=3,
        )

    def _write(self, operate: Callable[[sqlite3.Connection], Any]) -> Any:
        """Run one write transaction with busy retry; None if degraded.

        ``operate`` runs inside a single ``BEGIN IMMEDIATE`` transaction
        — the tier's concurrent-writer contract: a batch of puts either
        lands whole or not at all, and readers never observe a torn
        batch.
        """
        if self._degraded:
            return None
        last: Optional[BaseException] = None
        for delay in _RETRY_DELAYS_S:
            if delay:
                time.sleep(delay)
            try:
                con = self._connect()
                con.execute("BEGIN IMMEDIATE")
                try:
                    outcome = operate(con)
                except BaseException:
                    con.rollback()
                    raise
                con.commit()
                return outcome
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" in message or "busy" in message:
                    last = exc
                    continue
                self._degrade(exc)
                return None
            except (sqlite3.Error, OSError) as exc:
                self._degrade(exc)
                return None
        self._degrade(last if last is not None else RuntimeError("lock retry"))
        return None

    def _read(self, operate: Callable[[sqlite3.Connection], Any]) -> Any:
        if self._degraded:
            return None
        try:
            return operate(self._connect())
        except (sqlite3.Error, OSError) as exc:
            self._degrade(exc)
            return None

    # -- payload plumbing --------------------------------------------------

    def _quarantine_rows(self, rows: Sequence[tuple]) -> None:
        """Move corrupt ``(key, payload)`` rows into the quarantine table."""
        if not rows:
            return

        def operate(con: sqlite3.Connection) -> int:
            now = time.time()
            con.executemany(
                "INSERT OR REPLACE INTO quarantine(key, payload, quarantined) "
                "VALUES (?, ?, ?)",
                [(key, text, now) for key, text in rows],
            )
            con.executemany(
                "DELETE FROM entries WHERE key = ?",
                [(key,) for key, _ in rows],
            )
            return len(rows)

        if self._write(operate) or self._degraded:
            self.quarantined += len(rows)
            recorder = get_recorder()
            recorder.counter("cache.sqlite.quarantined", len(rows))
            recorder.event(
                "cache.quarantine", tier="sqlite", entries=len(rows)
            )

    def _rows_for(
        self, items: Mapping[str, Dict[str, Any]]
    ) -> List[tuple]:
        rows = []
        now = time.time()
        for key, payload in items.items():
            record = dict(payload)
            record["version"] = CACHE_VERSION
            if self.object_store and isinstance(record.get("metrics"), dict):
                record["metrics"] = self.objects.encode(record["metrics"])
            text = json.dumps(record, sort_keys=True)
            if cache_write_corrupted(key):
                # Injected torn write (same draw as the file layer):
                # exercises quarantine-on-read through the tier.
                text = text[: max(1, len(text) // 2)]
            rows.append(
                (
                    key,
                    str(record.get("kind", "?")),
                    CACHE_VERSION,
                    text,
                    len(text.encode("utf-8")),
                    now,
                )
            )
        return rows

    # -- the cache protocol ------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload for ``key`` from the tier, file-layer fallback.

        A database hit whose payload is corrupt quarantines the row; a
        version-mismatched row reads as a plain miss.  A database miss
        consults the JSON file layer and migrates any hit in.
        """
        return self.get_many([key]).get(key)

    def get_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Payloads for every hit among ``keys`` — the batched read path.

        When the key set covers most of the table (a campaign's warm
        second run asks for essentially every stored row) one sequential
        scan beats ``len(keys)`` B-tree probes; smaller requests go
        through chunked ``SELECT ... IN (...)`` lookups instead.  Either
        way, a file-layer probe runs only for the keys the database does
        not hold (each file hit is migrated in so the next campaign
        finds it batched).  Version-mismatched rows are filtered in SQL
        — a different-era row is a plain miss, not damage.
        """
        keys = list(keys)
        found: Dict[str, Dict[str, Any]] = {}
        corrupt: List[tuple] = []

        def harvest(rows: Iterable[tuple]) -> None:
            loads = json.loads
            for key, text in rows:
                try:
                    payload = loads(text)
                except ValueError:
                    corrupt.append((key, text))
                    continue
                if type(payload) is dict and "metrics" in payload:
                    if object_marker_ref(payload["metrics"]) is not None:
                        # Content-addressed payload: resolve the marker;
                        # a swept or corrupt object is a plain miss (the
                        # row itself is fine — recomputing rewrites both).
                        metrics = self.objects.resolve(payload["metrics"])
                        if metrics is None:
                            continue
                        payload = dict(payload)
                        payload["metrics"] = metrics
                    found[key] = payload
                else:
                    corrupt.append((key, text))

        def operate(con: sqlite3.Connection) -> None:
            # MAX(rowid) is an O(log n) upper bound on the row count
            # (rowids grow monotonically, so deletions and REPLACE churn
            # only overestimate — which safely favours the probe path).
            top = con.execute("SELECT MAX(rowid) FROM entries").fetchone()
            approx_rows = (top[0] if top else None) or 0
            if approx_rows < 2 * len(keys):
                wanted = set(keys)
                harvest(
                    row
                    for row in con.execute(
                        "SELECT key, payload FROM entries WHERE version = ?",
                        (CACHE_VERSION,),
                    )
                    if row[0] in wanted
                )
                return
            for chunk in _chunks(keys):
                marks = ",".join("?" for _ in chunk)
                harvest(
                    con.execute(
                        f"SELECT key, payload FROM entries "
                        f"WHERE version = ? AND key IN ({marks})",
                        (CACHE_VERSION, *chunk),
                    ).fetchall()
                )

        self._read(operate)
        self._quarantine_rows(corrupt)
        recorder = get_recorder()
        if found:
            recorder.counter("cache.sqlite.hit", len(found))
        if len(found) == len(keys):
            return found
        missing = [key for key in keys if key not in found]
        if missing:
            migrated = self.files.get_many(missing)
            if migrated:
                found.update(migrated)
                recorder.counter("cache.sqlite.migrated", len(migrated))
                self._write(
                    lambda con: con.executemany(
                        "INSERT OR REPLACE INTO entries"
                        "(key, kind, version, payload, nbytes, created) "
                        "VALUES (?, ?, ?, ?, ?, ?)",
                        self._rows_for(migrated),
                    )
                )
        if len(found) < len(keys):
            recorder.counter("cache.sqlite.miss", len(keys) - len(found))
        return found

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store one payload (stamped with the cache version)."""
        self.put_many({key: payload})

    def put_many(self, items: Mapping[str, Dict[str, Any]]) -> None:
        """Store every ``key -> payload`` in one write transaction.

        Concurrent-writer safe: the batch lands atomically under
        ``BEGIN IMMEDIATE`` (busy-timeout retried), write-through
        mirrors each entry into the JSON file layer, and the size budget
        (if armed) is enforced once per batch rather than per key.
        """
        if not items:
            return
        get_recorder().counter("cache.sqlite.put", len(items))
        rows = self._rows_for(items)
        self._write(
            lambda con: con.executemany(
                "INSERT OR REPLACE INTO entries"
                "(key, kind, version, payload, nbytes, created) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )
        )
        if self.write_through or self._degraded:
            self.files.put_many(items)
        if self.max_size_mb is not None:
            self._enforce_budget()

    def has(self, key: str) -> bool:
        """Cheap existence probe against the database, file fallback."""
        def operate(con: sqlite3.Connection) -> bool:
            row = con.execute(
                "SELECT 1 FROM entries WHERE key = ? LIMIT 1", (key,)
            ).fetchone()
            return row is not None

        if self._read(operate):
            return True
        return self.files.has(key)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # -- migration ---------------------------------------------------------

    def migrate_files(self) -> int:
        """Bulk-import every readable JSON file entry; returns the count.

        Incremental migration happens on every miss anyway; this is the
        one-shot warm-up for pointing the tier at a long-lived file
        cache before a big campaign.
        """
        imported: Dict[str, Dict[str, Any]] = {}
        count = 0
        for path in self.files.entry_paths():
            key = path.stem
            payload = self.files.get(key)
            if payload is None:
                continue
            imported[key] = payload
            count += 1
            if len(imported) >= _BATCH:
                batch = dict(imported)
                imported.clear()
                self._write(
                    lambda con, batch=batch: con.executemany(
                        "INSERT OR REPLACE INTO entries"
                        "(key, kind, version, payload, nbytes, created) "
                        "VALUES (?, ?, ?, ?, ?, ?)",
                        self._rows_for(batch),
                    )
                )
        if imported:
            self._write(
                lambda con: con.executemany(
                    "INSERT OR REPLACE INTO entries"
                    "(key, kind, version, payload, nbytes, created) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    self._rows_for(imported),
                )
            )
        return count

    # -- lifecycle ---------------------------------------------------------

    def _enforce_budget(self) -> None:
        def operate(con: sqlite3.Connection) -> Optional[int]:
            row = con.execute("SELECT SUM(nbytes) FROM entries").fetchone()
            return row[0] if row else None

        total = self._read(operate)
        if total is None or total <= self.max_size_mb * 1024.0 * 1024.0:
            return
        self.purge(max_size_mb=self.max_size_mb)

    def stats(self) -> CacheStats:
        """Aggregate stats over the database (plus shared journals)."""
        def operate(con: sqlite3.Connection):
            n_entries, total_bytes = con.execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM entries"
            ).fetchone()
            stale = con.execute(
                "SELECT COUNT(*) FROM entries WHERE version != ?",
                (CACHE_VERSION,),
            ).fetchone()[0]
            by_kind = con.execute(
                "SELECT kind, COUNT(*) FROM entries WHERE version = ? "
                "GROUP BY kind ORDER BY kind",
                (CACHE_VERSION,),
            ).fetchall()
            quarantined = con.execute(
                "SELECT COUNT(*) FROM quarantine"
            ).fetchone()[0]
            return n_entries, total_bytes, stale, by_kind, quarantined

        outcome = self._read(operate)
        if outcome is None:
            return self.files.stats()
        n_entries, total_bytes, stale, by_kind, quarantined = outcome
        file_stats = self.files.stats()
        return CacheStats(
            root=str(self.root),
            n_entries=n_entries,
            total_bytes=total_bytes,
            n_stale=stale,
            by_kind=tuple((str(kind), count) for kind, count in by_kind),
            n_quarantined=quarantined,
            n_journals=file_stats.n_journals,
            journal_bytes=file_stats.journal_bytes,
            n_objects=file_stats.n_objects,
            object_bytes=file_stats.object_bytes,
        )

    def purge(
        self,
        max_age_days: Optional[float] = None,
        max_size_mb: Optional[float] = None,
        now: Optional[float] = None,
        tmp_age_s: Optional[float] = None,
    ) -> PurgeReport:
        """Delete stored rows (same criteria as the file layer's purge).

        Evicted keys have their mirrored JSON files removed too, then
        the file layer's own purge runs with the same criteria — so
        never-migrated file entries age out identically and the shared
        sweeps (stale tmp files, quarantine on full purge, journals) run
        once.  The returned count is database rows; file-side removals
        of unmirrored entries ride in the file report's sweeps.
        """
        if max_age_days is not None and max_age_days < 0:
            raise ValueError(f"max_age_days must be >= 0, got {max_age_days}")
        if max_size_mb is not None and max_size_mb < 0:
            raise ValueError(f"max_size_mb must be >= 0, got {max_size_mb}")
        reference = now if now is not None else time.time()
        victims: List[str] = []
        entry_bytes = 0

        def operate(con: sqlite3.Connection) -> int:
            nonlocal entry_bytes
            chosen: List[tuple] = []
            if max_age_days is None and max_size_mb is None:
                chosen = con.execute(
                    "SELECT key, nbytes FROM entries"
                ).fetchall()
                con.execute("DELETE FROM quarantine")
            else:
                if max_age_days is not None:
                    cutoff = reference - max_age_days * 86_400.0
                    chosen.extend(
                        con.execute(
                            "SELECT key, nbytes FROM entries WHERE created < ?",
                            (cutoff,),
                        ).fetchall()
                    )
                if max_size_mb is not None:
                    budget = max_size_mb * 1024.0 * 1024.0
                    already = {key for key, _ in chosen}
                    total = con.execute(
                        "SELECT COALESCE(SUM(nbytes), 0) FROM entries"
                    ).fetchone()[0]
                    total -= sum(size for key, size in chosen)
                    if total > budget:
                        for key, size in con.execute(
                            "SELECT key, nbytes FROM entries "
                            "ORDER BY created, key"
                        ):
                            if total <= budget:
                                break
                            if key in already:
                                continue
                            chosen.append((key, size))
                            total -= size
            for key, size in chosen:
                victims.append(key)
                entry_bytes += size
            con.executemany(
                "DELETE FROM entries WHERE key = ?",
                [(key,) for key in victims],
            )
            return len(victims)

        removed = self._write(operate) or 0
        if self.write_through:
            # Drop the evicted keys' mirror files so both layers agree;
            # a concurrent writer re-adding one simply re-mirrors it.
            for key in victims:
                try:
                    self.files._path(key).unlink()
                except OSError:
                    continue
        # Surviving database rows may reference objects no JSON file
        # mentions (write-through off, or mirror removed): hand their
        # refs to the file layer's liveness sweep so it never unlinks
        # an object this tier can still resolve.
        keep_refs: List[str] = []

        def collect(con: sqlite3.Connection) -> None:
            for (text,) in con.execute(
                "SELECT payload FROM entries WHERE payload LIKE '%__object__%'"
            ):
                keep_refs.extend(refs_in_text(text))

        self._read(collect)
        file_report = self.files.purge(
            max_age_days=max_age_days,
            max_size_mb=max_size_mb,
            now=now,
            tmp_age_s=tmp_age_s,
            keep_object_refs=keep_refs,
        )
        return PurgeReport(
            removed,
            tmp_swept=file_report.tmp_swept,
            tmp_bytes=file_report.tmp_bytes,
            corrupt_swept=file_report.corrupt_swept,
            entry_bytes=entry_bytes,
            journals_swept=file_report.journals_swept,
            journal_bytes=file_report.journal_bytes,
            objects_swept=file_report.objects_swept,
            object_bytes=file_report.object_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SQLiteCacheTier(root={str(self.root)!r})"
