"""Point evaluators: one simulated parameter point boiled down to metrics.

This is the only module the execution backends call into, and it is the
layering boundary of the runner subsystem: it imports simulator packages
(:mod:`repro.ideal`, :mod:`repro.detailed`, :mod:`repro.percolation`) but
never the experiment harness, so :mod:`repro.experiments` can build on the
runner without an import cycle.

Each evaluator is a pure function of ``(params, seed)`` — identical inputs
give bit-identical metrics in any process — which is what makes the
serial and process-pool backends interchangeable and the disk cache safe.
Metric bundles are flat dataclasses of JSON-representable scalars so they
survive both pickling (process pool) and the JSON cache round-trip
without loss (``repr``-exact floats).

Scenario resolution: all three kinds accept a ``scenario`` parameter — a
:attr:`repro.scenarios.ScenarioSpec.token` string naming the topology
family, source policy and perturbations (pre-broadcast failures, mid-run
death schedules, clock skew) — which replaces the legacy hard-coded
worlds (``GridTopology(grid_side)`` for ideal/percolation,
``RandomTopology.connected(density)`` for detailed).  Points *without* a
scenario run the legacy world through the unchanged code path and keep
their legacy parameter layout, so their run keys (and therefore every
existing cache entry) are unchanged — the same default-omission contract
the ``detailed`` kind uses for ``scheduler`` and ``loss_probability``.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.params import PBBFParams
from repro.ideal.config import AnalysisParameters
from repro.ideal.simulator import IdealSimulator, SchedulingMode
from repro.net.topology import Topology
from repro.obs import get_recorder
from repro.percolation.site import coverage_site_fraction
from repro.percolation.threshold import estimate_critical_bond_fraction
from repro.scenarios import ScenarioSpec
from repro.util.stats import summarize


@dataclass(frozen=True)
class IdealPointMetrics:
    """Everything the Section 4 figures need from one operating point."""

    reliability_90: float
    reliability_99: float
    joules_per_update_per_node: float
    mean_per_hop_latency: Optional[float]
    mean_hops_near: Optional[float]
    mean_hops_far: Optional[float]
    mean_coverage: float


@dataclass(frozen=True)
class DetailedPointMetrics:
    """Everything the Section 5 figures need from one run."""

    joules_per_update_per_node: float
    latency_2hop: Optional[float]
    latency_5hop: Optional[float]
    updates_received_fraction: float
    mean_update_latency: Optional[float]
    n_2hop_nodes: int
    n_5hop_nodes: int


@dataclass(frozen=True)
class PercolationPointMetrics:
    """Critical-fraction estimate for one (grid, coverage) point."""

    critical_fraction: float
    ci95: float
    n_runs: int


_METRICS_TYPES = {
    "ideal": IdealPointMetrics,
    "detailed": DetailedPointMetrics,
    "percolation": PercolationPointMetrics,
}


@lru_cache(maxsize=64)
def _realized_scenario(scenario_token: str, seed: int):
    """Memoized scenario realization (a pure function of token + seed).

    Campaigns that fold only the scenario into the seed sweep many p/q
    points over one realized world; without this, every point would
    rebuild the same topology (including connectivity resampling for the
    random families).
    """
    with get_recorder().span("phase.realize", kind="scenario", seed=seed):
        return ScenarioSpec.from_token(scenario_token).realize(seed)


def _summarize_ideal_campaign(
    simulator: IdealSimulator, n_broadcasts: int, hop_near: int, hop_far: int
) -> IdealPointMetrics:
    """Run one ideal-simulator campaign and summarise the figure metrics."""
    recorder = get_recorder()
    with recorder.span("phase.simulate", kind="ideal"):
        campaign = simulator.run_campaign(n_broadcasts)
    with recorder.span("phase.analyze", kind="ideal"):
        return IdealPointMetrics(
            reliability_90=campaign.reliability(0.90),
            reliability_99=campaign.reliability(0.99),
            joules_per_update_per_node=campaign.joules_per_update_per_node(),
            mean_per_hop_latency=campaign.mean_per_hop_latency(),
            mean_hops_near=campaign.mean_hops_at_distance(hop_near),
            mean_hops_far=campaign.mean_hops_at_distance(hop_far),
            mean_coverage=campaign.mean_coverage(),
        )


@lru_cache(maxsize=4096)
def _ideal_point(
    grid_side: int,
    n_broadcasts: int,
    p: float,
    q: float,
    mode_value: str,
    seed: int,
    hop_near: int,
    hop_far: int,
) -> IdealPointMetrics:
    """The legacy grid point, resolved through the default grid scenario.

    Realizing ``ScenarioSpec.grid_default`` draws nothing from the seed
    streams (grid placement and centre source are deterministic), so this
    is bit-identical to the pre-scenario ``GridTopology(grid_side)`` path
    — the parity goldens in tests/scenarios lock that in.
    """
    with get_recorder().span("phase.realize", kind="grid", seed=seed):
        realized = ScenarioSpec.grid_default(grid_side).realize(seed)
    simulator = IdealSimulator(
        realized.topology,
        PBBFParams(p=p, q=q),
        AnalysisParameters(grid_side=grid_side),
        seed=seed,
        source=realized.source,
        mode=SchedulingMode(mode_value),
    )
    return _summarize_ideal_campaign(simulator, n_broadcasts, hop_near, hop_far)


@lru_cache(maxsize=4096)
def _ideal_scenario_point(
    scenario_token: str,
    n_broadcasts: int,
    p: float,
    q: float,
    mode_value: str,
    seed: int,
    hop_near: int,
    hop_far: int,
) -> IdealPointMetrics:
    """One ideal-simulator campaign on an arbitrary realized scenario."""
    realized = _realized_scenario(scenario_token, seed)
    simulator = IdealSimulator(
        realized.topology,
        PBBFParams(p=p, q=q),
        AnalysisParameters(),
        seed=seed,
        source=realized.source,
        mode=SchedulingMode(mode_value),
        failed_nodes=realized.failed_nodes,
    )
    return _summarize_ideal_campaign(simulator, n_broadcasts, hop_near, hop_far)


def _summarize_detailed(metrics) -> DetailedPointMetrics:
    """Boil one detailed run's :class:`BroadcastMetrics` down to the bundle."""
    return DetailedPointMetrics(
        joules_per_update_per_node=metrics.joules_per_update_per_node(),
        latency_2hop=metrics.mean_latency_at_distance(2),
        latency_5hop=metrics.mean_latency_at_distance(5),
        updates_received_fraction=metrics.mean_updates_received_fraction(),
        mean_update_latency=metrics.mean_update_latency(),
        n_2hop_nodes=len(metrics.nodes_at_distance(2)),
        n_5hop_nodes=len(metrics.nodes_at_distance(5)),
    )


@lru_cache(maxsize=8192)
def _detailed_run(
    p: float,
    q: float,
    density: float,
    mode_value: str,
    duration: float,
    seed: int,
    scheduler: str = "psm",
    loss_probability: float = 0.0,
) -> DetailedPointMetrics:
    """One detailed-simulator scenario boiled down to its figure metrics."""
    # Imported lazily: the detailed stack is the heaviest import chain and
    # ideal/percolation campaigns never need it.
    from repro.detailed.config import CodeDistributionParameters
    from repro.detailed.simulator import DetailedSimulator

    mode = SchedulingMode(mode_value)
    config = CodeDistributionParameters(density=density, duration=duration)
    simulator = DetailedSimulator(
        PBBFParams(p=p, q=q),
        config,
        seed=seed,
        mode=mode,
        scheduler=scheduler,
        loss_probability=loss_probability,
    )
    recorder = get_recorder()
    with recorder.span("phase.simulate", kind="detailed", seed=seed):
        result = simulator.run()
    with recorder.span("phase.analyze", kind="detailed"):
        return _summarize_detailed(result.metrics)


@lru_cache(maxsize=8192)
def _detailed_scenario_point(
    scenario_token: str,
    p: float,
    q: float,
    mode_value: str,
    duration: float,
    seed: int,
    scheduler: str = "psm",
    loss_probability: float = 0.0,
) -> DetailedPointMetrics:
    """One detailed run on an arbitrary realized scenario.

    The scenario supplies the deployment, source, pre-broadcast failed
    set, mid-run death schedule and clock offsets; the config is sized to
    the realized topology (``density`` is a scenario family parameter
    here, not a campaign one, so the legacy ``density`` axis does not
    appear in scenario-resolved points).
    """
    from repro.detailed.config import CodeDistributionParameters
    from repro.detailed.simulator import DetailedSimulator

    realized = _realized_scenario(scenario_token, seed)
    config = CodeDistributionParameters.for_topology(
        realized.topology, duration=duration
    )
    simulator = DetailedSimulator(
        PBBFParams(p=p, q=q),
        config,
        seed=seed,
        mode=SchedulingMode(mode_value),
        scheduler=scheduler,
        loss_probability=loss_probability,
        scenario=realized,
    )
    recorder = get_recorder()
    with recorder.span("phase.simulate", kind="detailed-scenario", seed=seed):
        result = simulator.run()
    with recorder.span("phase.analyze", kind="detailed-scenario"):
        return _summarize_detailed(result.metrics)


@lru_cache(maxsize=2048)
def _detailed_adaptive_run(
    p: float,
    q: float,
    density: float,
    mode_value: str,
    duration: float,
    seed: int,
    scheduler: str,
    loss_probability: float,
    adaptive: str,
) -> DetailedPointMetrics:
    """One detailed run under the adaptive p/q controller.

    ``(p, q)`` are the controller's *starting* operating point and
    ``adaptive`` an :attr:`repro.adaptive.AdaptivePolicy.token` string;
    every node gets its own :class:`~repro.adaptive.AdaptivePBBFAgent`
    seeded from the run's named streams, so the run stays a pure function
    of its parameters like every other evaluator.
    """
    from repro.adaptive import AdaptivePBBFAgent, AdaptivePolicy
    from repro.detailed.config import CodeDistributionParameters
    from repro.detailed.simulator import DetailedSimulator

    policy = AdaptivePolicy.from_token(adaptive)
    start = PBBFParams(p=p, q=q)

    def factory(node_id: int, rng: random.Random) -> AdaptivePBBFAgent:
        return AdaptivePBBFAgent(start, rng, policy=policy)

    config = CodeDistributionParameters(density=density, duration=duration)
    simulator = DetailedSimulator(
        start,
        config,
        seed=seed,
        mode=SchedulingMode(mode_value),
        scheduler=scheduler,
        loss_probability=loss_probability,
        agent_factory=factory,
    )
    recorder = get_recorder()
    with recorder.span("phase.simulate", kind="detailed-adaptive", seed=seed):
        result = simulator.run()
    with recorder.span("phase.analyze", kind="detailed-adaptive"):
        return _summarize_detailed(result.metrics)


def _percolation_summary(
    topology: Topology,
    label: str,
    reliability: float,
    runs: int,
    seed: int,
    process: str,
) -> PercolationPointMetrics:
    """Critical bond/site fraction summary on one concrete topology."""
    if process not in ("bond", "site"):
        raise ValueError(f"process must be 'bond' or 'site', got {process!r}")
    recorder = get_recorder()
    rng = random.Random(seed)
    with recorder.span("phase.simulate", kind="percolation", seed=seed):
        if process == "bond":
            thresholds = estimate_critical_bond_fraction(
                topology, (reliability,), rng, runs=runs, grid_label=label
            )
            summary = thresholds.threshold_for(reliability)
        else:
            summary = summarize(
                coverage_site_fraction(topology, reliability, rng, runs=runs)
            )
    with recorder.span("phase.analyze", kind="percolation"):
        return PercolationPointMetrics(
            critical_fraction=summary.mean, ci95=summary.ci95, n_runs=summary.n
        )


@lru_cache(maxsize=512)
def _percolation_point(
    grid_side: int,
    reliability: float,
    runs: int,
    seed: int,
    process: str = "bond",
) -> PercolationPointMetrics:
    """The legacy grid point, resolved through the default grid scenario.

    Like :func:`_ideal_point`, realization draws nothing for the default
    grid, so results and run keys are bit-identical to the pre-scenario
    ``GridTopology(grid_side)`` path.
    """
    with get_recorder().span("phase.realize", kind="grid", seed=seed):
        realized = ScenarioSpec.grid_default(grid_side).realize(seed)
    return _percolation_summary(
        realized.topology,
        f"{grid_side}x{grid_side}",
        reliability,
        runs,
        seed,
        process,
    )


@lru_cache(maxsize=512)
def _percolation_scenario_point(
    scenario_token: str,
    reliability: float,
    runs: int,
    seed: int,
    process: str = "bond",
) -> PercolationPointMetrics:
    """Critical-fraction summary on an arbitrary realized scenario.

    The percolation process itself is the failure model here, so the
    scenario's source policy and failure fraction are ignored — only the
    topology family matters.
    """
    realized = _realized_scenario(scenario_token, seed)
    return _percolation_summary(
        realized.topology,
        realized.spec.describe(),
        reliability,
        runs,
        seed,
        process,
    )


@lru_cache(maxsize=512)
def _detailed_seed_batch(
    p: float,
    q: float,
    density: Optional[float],
    scenario_token: Optional[str],
    mode_value: str,
    duration: float,
    loss_probability: float,
    seeds: Tuple[int, ...],
) -> Optional[Tuple[DetailedPointMetrics, ...]]:
    """One point's whole seed list through the seed-batched kernel.

    Builds the same per-seed :class:`DetailedSimulator` objects the
    singular evaluators would and hands them to
    :func:`repro.detailed.batched.run_batch` in one call, so machinery
    instants are advanced once for every seed instead of once per seed.
    Results are bit-identical to the per-seed evaluators (the parity
    suite locks this in), so memo entries, run keys and cache payloads
    are interchangeable with theirs.  Returns ``None`` when the
    configuration falls outside the kernel's scope (the caller then
    falls back to the per-seed path).
    """
    from repro.detailed.batched import run_batch, supports_batch
    from repro.detailed.config import CodeDistributionParameters
    from repro.detailed.simulator import DetailedSimulator

    recorder = get_recorder()
    pbbf = PBBFParams(p=p, q=q)
    mode = SchedulingMode(mode_value)
    sims = []
    with recorder.span("phase.realize", kind="detailed-batch",
                       seeds=len(seeds)):
        for seed in seeds:
            if scenario_token is None:
                config = CodeDistributionParameters(
                    density=density, duration=duration
                )
                sim = DetailedSimulator(
                    pbbf,
                    config,
                    seed=seed,
                    mode=mode,
                    loss_probability=loss_probability,
                )
            else:
                realized = _realized_scenario(scenario_token, seed)
                config = CodeDistributionParameters.for_topology(
                    realized.topology, duration=duration
                )
                sim = DetailedSimulator(
                    pbbf,
                    config,
                    seed=seed,
                    mode=mode,
                    loss_probability=loss_probability,
                    scenario=realized,
                )
            sims.append(sim)
    if not all(supports_batch(sim) for sim in sims):
        return None
    with recorder.span("phase.simulate", kind="detailed-batch",
                       seeds=len(seeds)):
        results = run_batch(sims)
    with recorder.span("phase.analyze", kind="detailed-batch"):
        return tuple(
            _summarize_detailed(result.metrics) for result in results
        )


def evaluate_run_batch(
    kind: str, params: Mapping[str, Any], seeds: Sequence[int]
) -> List[Any]:
    """Evaluate one campaign point at every seed, batching when possible.

    The batched path triggers for multi-seed ``detailed`` points inside
    the seed-batched kernel's scope (PSM scheduler, no adaptive
    controller) when the ambient ``detailed_fast_path`` flag is on;
    everything else — other kinds, single seeds, out-of-scope
    configurations, ``--no-detailed-fast-path`` — degrades to a plain
    :func:`evaluate_run` loop.  Either way the returned bundles are
    bit-identical and in seed order, so callers need not know which path
    ran.
    """
    from repro.runners.context import get_execution

    seeds = list(seeds)
    if (
        kind == "detailed"
        and len(seeds) > 1
        and get_execution().detailed_fast_path
        and "adaptive" not in params
        and str(params.get("scheduler", "psm")) == "psm"
        and str(params["mode"]) == SchedulingMode.PSM_PBBF.value
    ):
        batch = _detailed_seed_batch(
            float(params["p"]),
            float(params["q"]),
            None if "scenario" in params else float(params["density"]),
            str(params["scenario"]) if "scenario" in params else None,
            str(params["mode"]),
            float(params["duration"]),
            float(params.get("loss_probability", 0.0)),
            tuple(seeds),
        )
        if batch is not None:
            return list(batch)
    return [evaluate_run(kind, params, seed) for seed in seeds]


def evaluate_run(kind: str, params: Mapping[str, Any], seed: int):
    """Evaluate one campaign run and return its typed metrics bundle.

    The ``scenario`` parameter (a :class:`~repro.scenarios.ScenarioSpec`
    token, present only when a campaign sweeps scenario axes) selects the
    scenario-resolved evaluator; its absence keeps the legacy parameter
    layout so existing run keys and cache entries stay valid.  The
    ``detailed`` kind likewise accepts an optional ``adaptive`` parameter
    (an :class:`~repro.adaptive.AdaptivePolicy` token) selecting the
    adaptive-controller evaluator under the same default-omission
    contract.
    """
    if kind == "ideal":
        common: Tuple[Any, ...] = (
            int(params["n_broadcasts"]),
            float(params["p"]),
            float(params["q"]),
            str(params["mode"]),
            seed,
            int(params["hop_near"]),
            int(params["hop_far"]),
        )
        if "scenario" in params:
            return _ideal_scenario_point(str(params["scenario"]), *common)
        return _ideal_point(int(params["grid_side"]), *common)
    if kind == "detailed":
        scheduler = str(params.get("scheduler", "psm"))
        loss = float(params.get("loss_probability", 0.0))
        if "scenario" in params:
            # Scenario-resolved points carry no density axis (deployment
            # comes from the realized scenario); adaptive control on
            # scenario worlds is not wired up yet, so fail loudly rather
            # than silently dropping the perturbations.
            if "adaptive" in params:
                raise ValueError(
                    "the detailed evaluator does not support 'adaptive' "
                    "and 'scenario' on the same point yet"
                )
            return _detailed_scenario_point(
                str(params["scenario"]),
                float(params["p"]),
                float(params["q"]),
                str(params["mode"]),
                float(params["duration"]),
                seed,
                scheduler,
                loss,
            )
        args = (
            float(params["p"]),
            float(params["q"]),
            float(params["density"]),
            str(params["mode"]),
            float(params["duration"]),
            seed,
        )
        if "adaptive" in params:
            # The adaptive-controller variant: present only when a
            # campaign opts in, so static points keep their legacy
            # layout, run keys and cache entries.
            return _detailed_adaptive_run(
                *args, scheduler, loss, str(params["adaptive"])
            )
        if loss != 0.0:
            return _detailed_run(*args, scheduler, loss)
        if scheduler == "psm":
            # Omit the defaults so the lru_cache key matches legacy direct
            # callers (which pass six positional args) and the two paths
            # share entries instead of re-simulating.
            return _detailed_run(*args)
        return _detailed_run(*args, scheduler)
    if kind == "percolation":
        # Positional, matching critical_fraction's direct calls, so both
        # paths share one lru_cache entry per point.
        tail = (
            float(params["reliability"]),
            int(params["runs"]),
            seed,
            str(params.get("process", "bond")),
        )
        if "scenario" in params:
            return _percolation_scenario_point(str(params["scenario"]), *tail)
        return _percolation_point(int(params["grid_side"]), *tail)
    raise ValueError(f"unknown campaign kind {kind!r}")


def metrics_to_dict(metrics: Any) -> Dict[str, Any]:
    """Flatten a metrics dataclass for pickling / JSON storage."""
    return asdict(metrics)


def metrics_from_dict(kind: str, payload: Mapping[str, Any]):
    """Rebuild the typed metrics bundle for ``kind`` from a flat dict."""
    try:
        cls = _METRICS_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown campaign kind {kind!r}") from None
    return cls(**payload)


def validate_flat_metrics(kind: str, flat: Any) -> bool:
    """Whether ``flat`` rebuilds into ``kind``'s metrics bundle.

    The backends' sanity gate on whatever a worker hands back: a result
    that would blow up later in :func:`metrics_from_dict` — or one
    substituted by a corrupt-result fault — is rejected here so the
    failure charges the task's retry budget instead of the campaign.
    """
    if not isinstance(flat, Mapping):
        return False
    try:
        metrics_from_dict(kind, flat)
    except (TypeError, ValueError):
        return False
    return True


def clear_point_caches() -> None:
    """Drop the in-process memo of every point evaluator (benchmarks)."""
    _ideal_point.cache_clear()
    _ideal_scenario_point.cache_clear()
    _detailed_run.cache_clear()
    _detailed_scenario_point.cache_clear()
    _detailed_adaptive_run.cache_clear()
    _detailed_seed_batch.cache_clear()
    _percolation_point.cache_clear()
    _percolation_scenario_point.cache_clear()
    _realized_scenario.cache_clear()
