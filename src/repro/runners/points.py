"""Point evaluators: one simulated parameter point boiled down to metrics.

This is the only module the execution backends call into, and it is the
layering boundary of the runner subsystem: it imports simulator packages
(:mod:`repro.ideal`, :mod:`repro.detailed`, :mod:`repro.percolation`) but
never the experiment harness, so :mod:`repro.experiments` can build on the
runner without an import cycle.

Each evaluator is a pure function of ``(params, seed)`` — identical inputs
give bit-identical metrics in any process — which is what makes the
serial and process-pool backends interchangeable and the disk cache safe.
Metric bundles are flat dataclasses of JSON-representable scalars so they
survive both pickling (process pool) and the JSON cache round-trip
without loss (``repr``-exact floats).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Any, Dict, Mapping, Optional

from repro.core.params import PBBFParams
from repro.ideal.config import AnalysisParameters
from repro.ideal.simulator import IdealSimulator, SchedulingMode
from repro.net.topology import GridTopology
from repro.percolation.site import coverage_site_fraction
from repro.percolation.threshold import estimate_critical_bond_fraction
from repro.util.stats import summarize


@dataclass(frozen=True)
class IdealPointMetrics:
    """Everything the Section 4 figures need from one operating point."""

    reliability_90: float
    reliability_99: float
    joules_per_update_per_node: float
    mean_per_hop_latency: Optional[float]
    mean_hops_near: Optional[float]
    mean_hops_far: Optional[float]
    mean_coverage: float


@dataclass(frozen=True)
class DetailedPointMetrics:
    """Everything the Section 5 figures need from one run."""

    joules_per_update_per_node: float
    latency_2hop: Optional[float]
    latency_5hop: Optional[float]
    updates_received_fraction: float
    mean_update_latency: Optional[float]
    n_2hop_nodes: int
    n_5hop_nodes: int


@dataclass(frozen=True)
class PercolationPointMetrics:
    """Critical-fraction estimate for one (grid, coverage) point."""

    critical_fraction: float
    ci95: float
    n_runs: int


_METRICS_TYPES = {
    "ideal": IdealPointMetrics,
    "detailed": DetailedPointMetrics,
    "percolation": PercolationPointMetrics,
}


@lru_cache(maxsize=4096)
def _ideal_point(
    grid_side: int,
    n_broadcasts: int,
    p: float,
    q: float,
    mode_value: str,
    seed: int,
    hop_near: int,
    hop_far: int,
) -> IdealPointMetrics:
    """Run one ideal-simulator campaign and summarise the figure metrics."""
    mode = SchedulingMode(mode_value)
    topology = GridTopology(grid_side)
    simulator = IdealSimulator(
        topology,
        PBBFParams(p=p, q=q),
        AnalysisParameters(grid_side=grid_side),
        seed=seed,
        mode=mode,
    )
    campaign = simulator.run_campaign(n_broadcasts)
    return IdealPointMetrics(
        reliability_90=campaign.reliability(0.90),
        reliability_99=campaign.reliability(0.99),
        joules_per_update_per_node=campaign.joules_per_update_per_node(),
        mean_per_hop_latency=campaign.mean_per_hop_latency(),
        mean_hops_near=campaign.mean_hops_at_distance(hop_near),
        mean_hops_far=campaign.mean_hops_at_distance(hop_far),
        mean_coverage=campaign.mean_coverage(),
    )


@lru_cache(maxsize=8192)
def _detailed_run(
    p: float,
    q: float,
    density: float,
    mode_value: str,
    duration: float,
    seed: int,
    scheduler: str = "psm",
) -> DetailedPointMetrics:
    """One detailed-simulator scenario boiled down to its figure metrics."""
    # Imported lazily: the detailed stack is the heaviest import chain and
    # ideal/percolation campaigns never need it.
    from repro.detailed.config import CodeDistributionParameters
    from repro.detailed.simulator import DetailedSimulator

    mode = SchedulingMode(mode_value)
    config = CodeDistributionParameters(density=density, duration=duration)
    simulator = DetailedSimulator(
        PBBFParams(p=p, q=q), config, seed=seed, mode=mode, scheduler=scheduler
    )
    result = simulator.run()
    metrics = result.metrics
    return DetailedPointMetrics(
        joules_per_update_per_node=metrics.joules_per_update_per_node(),
        latency_2hop=metrics.mean_latency_at_distance(2),
        latency_5hop=metrics.mean_latency_at_distance(5),
        updates_received_fraction=metrics.mean_updates_received_fraction(),
        mean_update_latency=metrics.mean_update_latency(),
        n_2hop_nodes=len(metrics.nodes_at_distance(2)),
        n_5hop_nodes=len(metrics.nodes_at_distance(5)),
    )


@lru_cache(maxsize=512)
def _percolation_point(
    grid_side: int,
    reliability: float,
    runs: int,
    seed: int,
    process: str = "bond",
) -> PercolationPointMetrics:
    """Critical bond/site fraction summary for one (grid, coverage) pair."""
    if process not in ("bond", "site"):
        raise ValueError(f"process must be 'bond' or 'site', got {process!r}")
    topology = GridTopology(grid_side)
    rng = random.Random(seed)
    if process == "bond":
        thresholds = estimate_critical_bond_fraction(
            topology,
            (reliability,),
            rng,
            runs=runs,
            grid_label=f"{grid_side}x{grid_side}",
        )
        summary = thresholds.threshold_for(reliability)
    else:
        summary = summarize(
            coverage_site_fraction(topology, reliability, rng, runs=runs)
        )
    return PercolationPointMetrics(
        critical_fraction=summary.mean, ci95=summary.ci95, n_runs=summary.n
    )


def evaluate_run(kind: str, params: Mapping[str, Any], seed: int):
    """Evaluate one campaign run and return its typed metrics bundle."""
    if kind == "ideal":
        return _ideal_point(
            int(params["grid_side"]),
            int(params["n_broadcasts"]),
            float(params["p"]),
            float(params["q"]),
            str(params["mode"]),
            seed,
            int(params["hop_near"]),
            int(params["hop_far"]),
        )
    if kind == "detailed":
        scheduler = str(params.get("scheduler", "psm"))
        args = (
            float(params["p"]),
            float(params["q"]),
            float(params["density"]),
            str(params["mode"]),
            float(params["duration"]),
            seed,
        )
        if scheduler == "psm":
            # Omit the default so the lru_cache key matches legacy direct
            # callers (which pass six positional args) and the two paths
            # share entries instead of re-simulating.
            return _detailed_run(*args)
        return _detailed_run(*args, scheduler)
    if kind == "percolation":
        # Positional, matching critical_fraction's direct calls, so both
        # paths share one lru_cache entry per point.
        return _percolation_point(
            int(params["grid_side"]),
            float(params["reliability"]),
            int(params["runs"]),
            seed,
            str(params.get("process", "bond")),
        )
    raise ValueError(f"unknown campaign kind {kind!r}")


def metrics_to_dict(metrics: Any) -> Dict[str, Any]:
    """Flatten a metrics dataclass for pickling / JSON storage."""
    return asdict(metrics)


def metrics_from_dict(kind: str, payload: Mapping[str, Any]):
    """Rebuild the typed metrics bundle for ``kind`` from a flat dict."""
    try:
        cls = _METRICS_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown campaign kind {kind!r}") from None
    return cls(**payload)


def clear_point_caches() -> None:
    """Drop the in-process memo of every point evaluator (benchmarks)."""
    _ideal_point.cache_clear()
    _detailed_run.cache_clear()
    _percolation_point.cache_clear()
