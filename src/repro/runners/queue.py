"""Sharded campaign execution over a crash-safe on-disk work queue.

The pool backend fans a campaign across the processes of *one* machine;
this module fans it across *any number of workers that can see the same
directory*.  A :class:`WorkQueue` is a SQLite database (WAL mode) of
point-hash tasks; workers — spawned by :class:`ShardedBackend` or
started by hand via ``pbbf-experiments worker --queue DIR`` on other
machines sharing the cache/queue directory — claim the oldest due task
under a lease, evaluate it with the exact same task body the serial and
pool backends use, and write the flat metrics back as a result row.

The retry envelope is PR 7's, relocated into the queue rows:

* a worker that *fails* a task (raise, garbage metrics, in-worker
  timeout) charges the row one attempt and re-queues it with the
  policy's deterministic backoff — or marks it ``exhausted``;
* a worker that *dies* leaves its row leased until the lease expires
  (or, for spawned workers, until the parent reaps the corpse), after
  which the row is charged one :class:`WorkerCrashError` attempt and
  re-queued — exactly the pool backend's collateral-death accounting;
* ``exhausted`` rows are handled by the campaign parent per the
  policy's ``on_exhausted`` (skip / degrade / raise), like any backend.

Because point evaluation is a pure function of ``(kind, params, seed)``
(see :mod:`repro.runners.points`), results are bit-identical to
:class:`~repro.runners.backends.SerialBackend` regardless of which
worker runs what, how many die mid-task, or how leases interleave — the
queue decides *scheduling*, never *values*.

At campaign scale the queue must also be *cheap* per point.  Workers
claim **blocks** of tasks in one ``BEGIN IMMEDIATE`` transaction
(:meth:`WorkQueue.claim_block`), land a whole block with one
``executemany`` batch (:meth:`WorkQueue.complete_many`), and in steady
state fuse "complete the previous block, refresh the heartbeat, claim
the next" into a single transaction
(:meth:`WorkQueue.complete_and_claim`) — so queue round-trips per point
fall as ``1/block`` while the per-lease attempt accounting is
unchanged: a worker that dies mid-block re-queues only the leases it
had not yet completed, each charged one :class:`WorkerCrashError`
attempt.  The parent harvests result rows in pages rather than
unbounded scans, and large flat-metrics payloads can ride the
content-addressed object store (:mod:`repro.runners.object_store`)
instead of being copied into every row.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import socket
import sqlite3
import tempfile
import time
import uuid
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import ensure_recorder, get_recorder
from repro.runners import faults
from repro.runners.backends import (
    OnFailure,
    OnResult,
    _BatchTask,
    _build_leases,
    _degraded_attempt,
    _drain_serial,
    _ExecutionState,
    _Lease,
    _resolve_policy,
    _serve_from_memo,
    _timed_attempt,
    _validated,
)
from repro.runners.context import get_execution, get_stats, set_execution
from repro.runners.object_store import MARKER_KEY, ObjectStore, refs_in_text
from repro.runners.failures import (
    CorruptResultError,
    FailurePolicy,
    RunFailure,
    WorkerCrashError,
)
from repro.runners.points import validate_flat_metrics
from repro.runners.spec import CampaignRun

#: Database file name inside a queue directory.
QUEUE_FILENAME = "queue.sqlite"

#: Lease duration when the policy has no ``timeout_s`` to derive one
#: from: long enough that no healthy task expires, short enough that a
#: machine lost with its leases re-queues within minutes.
DEFAULT_LEASE_S = 300.0

#: How long a writer waits on the database lock (seconds).
BUSY_TIMEOUT_S = 30.0

#: Idle sleep between claim attempts in a worker.
DEFAULT_POLL_S = 0.05

#: Result rows the parent harvests per page.  Pages bound the memory and
#: statement cost of each poll on million-point queues while the
#: journal/``on_point`` stream rides the same ordered reads unchanged.
RESULT_PAGE_ROWS = 512

#: Heartbeat rows older than this are swept by ``compact`` — a worker
#: silent for an hour is a corpse, not a participant.
HEARTBEAT_MAX_AGE_S = 3600.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
    name   TEXT PRIMARY KEY,
    value  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks(
    key            TEXT PRIMARY KEY,
    payload        TEXT NOT NULL,
    status         TEXT NOT NULL DEFAULT 'pending',
    attempt        INTEGER NOT NULL DEFAULT 0,
    not_before     REAL NOT NULL DEFAULT 0,
    worker         TEXT,
    lease_expires  REAL,
    error_type     TEXT,
    error          TEXT
);
CREATE INDEX IF NOT EXISTS idx_tasks_claim ON tasks(status, not_before);
CREATE TABLE IF NOT EXISTS results(
    key        TEXT PRIMARY KEY,
    flats      TEXT NOT NULL,
    worker     TEXT,
    completed  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS heartbeats(
    worker      TEXT PRIMARY KEY,
    started     REAL NOT NULL,
    last_seen   REAL NOT NULL,
    tasks_done  INTEGER NOT NULL DEFAULT 0
);
"""

#: Seconds between a worker's heartbeat rows (kept coarse: the heartbeat
#: is liveness telemetry for ``queue status``, not a scheduling input).
HEARTBEAT_INTERVAL_S = 1.0

#: Task row statuses.  ``done`` and ``exhausted`` are terminal; the
#: queue is *drained* when no row is ``pending`` or ``leased``.
STATUSES = ("pending", "leased", "done", "exhausted")


def _task_to_json(task: _BatchTask) -> str:
    kind, params, seeds = task
    return json.dumps(
        {"kind": kind, "params": params, "seeds": list(seeds)},
        sort_keys=True,
    )


def _task_from_json(text: str) -> _BatchTask:
    payload = json.loads(text)
    return (
        str(payload["kind"]),
        dict(payload["params"]),
        tuple(int(seed) for seed in payload["seeds"]),
    )


def new_worker_id() -> str:
    """A worker identity unique across the machines sharing a queue."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


class WorkQueue:
    """One campaign work queue: a SQLite database in a shared directory.

    Every method is one transaction (``BEGIN IMMEDIATE`` for writes, with
    SQLite's busy-timeout arbitrating concurrent claimers), so the queue
    is safe for any number of worker processes on any number of machines
    that share the directory.  Unlike the cache tier, a broken queue
    *raises* — there is no file layer to degrade to.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.dir = Path(path)
        self.db_path = self.dir / QUEUE_FILENAME
        self._con: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None
        #: Write transactions this instance has issued — the "round
        #: trips" the block protocol amortizes; the scale drill asserts
        #: this stays ~``ceil(points / block)``.
        self.round_trips = 0
        #: Whether *this writer* stores large result payloads in the
        #: object store.  Set from ``configure``/``read_config`` so the
        #: parent and every worker agree; readers always resolve
        #: markers regardless.
        self.object_store = False
        self._objects: Optional[ObjectStore] = None

    def _connect(self) -> sqlite3.Connection:
        if self._con is not None and self._pid == os.getpid():
            return self._con
        self.dir.mkdir(parents=True, exist_ok=True)
        # One long-lived connection per (instance, pid).  The statement
        # cache is sized for the full protocol vocabulary so the hot
        # claim/complete SQL is compiled once per worker, not per call.
        con = sqlite3.connect(
            str(self.db_path),
            timeout=BUSY_TIMEOUT_S,
            check_same_thread=False,
            cached_statements=256,
        )
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA synchronous=NORMAL")
        con.execute("PRAGMA temp_store=MEMORY")
        con.executescript(_SCHEMA)
        con.commit()
        self._con = con
        self._pid = os.getpid()
        return con

    def close(self) -> None:
        """Release the connection (reopened lazily on next use)."""
        if self._con is not None and self._pid == os.getpid():
            try:
                self._con.close()
            except sqlite3.Error:  # pragma: no cover - defensive
                pass
        self._con = None
        self._pid = None

    def _write(self, operate) -> Any:
        con = self._connect()
        con.execute("BEGIN IMMEDIATE")
        try:
            outcome = operate(con)
        except BaseException:
            con.rollback()
            raise
        con.commit()
        self.round_trips += 1
        return outcome

    # -- result payload encoding -------------------------------------------

    @property
    def objects(self) -> ObjectStore:
        """The queue's object store (``<queue dir>/objects/``)."""
        if self._objects is None:
            self._objects = ObjectStore(self.dir)
        return self._objects

    def _encode_flats(self, flats: List[Dict[str, Any]]) -> str:
        """Serialize a result payload, indirecting it when opted in."""
        text = json.dumps(flats)
        if self.object_store and len(text) >= self.objects.threshold_bytes:
            ref = self.objects.put_text(text)
            if ref is not None:
                return json.dumps({MARKER_KEY: ref})
        return text

    def _decode_flats(self, text: str) -> Optional[List[Dict[str, Any]]]:
        """Deserialize a result row; ``None`` when its object dangles.

        The parent treats ``None`` like any torn row: the attempt is
        charged and the task re-queued, so a swept object degrades to a
        recompute rather than an error.
        """
        payload = json.loads(text)
        if isinstance(payload, dict):
            resolved = self.objects.resolve(payload)
            if resolved is None or not isinstance(resolved, list):
                return None
            return resolved
        return payload

    # -- campaign setup ----------------------------------------------------

    def configure(
        self,
        policy: FailurePolicy,
        lease_s: float = DEFAULT_LEASE_S,
        fault_plan_token: Optional[str] = None,
        lease_block: Optional[int] = None,
        object_store: Optional[bool] = None,
    ) -> None:
        """Publish the campaign's execution contract to the workers.

        Workers on other machines read the failure policy, the lease
        duration, the parent's kernel-selection flags, the block size
        and any fault plan from the ``meta`` table — the same hand-off
        ``_init_worker`` performs for the pool backend, durable on
        disk.  ``lease_block``/``object_store`` default to the ambient
        :class:`~repro.runners.context.ExecutionConfig`.
        """
        config = get_execution()
        if lease_block is None:
            lease_block = config.lease_block
        if object_store is None:
            object_store = config.object_store
        self.object_store = bool(object_store)
        rows = {
            "policy": json.dumps(asdict(policy), sort_keys=True),
            "lease_s": json.dumps(lease_s),
            "fast_path": json.dumps(config.fast_path),
            "detailed_fast_path": json.dumps(config.detailed_fast_path),
            "fault_plan": json.dumps(fault_plan_token),
            "telemetry": json.dumps(config.telemetry_dir),
            "lease_block": json.dumps(max(1, int(lease_block))),
            "object_store": json.dumps(bool(object_store)),
        }
        self._write(
            lambda con: con.executemany(
                "INSERT OR REPLACE INTO meta(name, value) VALUES (?, ?)",
                list(rows.items()),
            )
        )

    def read_config(self) -> Dict[str, Any]:
        """The published execution contract (defaults when unconfigured)."""
        rows = dict(
            self._connect().execute("SELECT name, value FROM meta").fetchall()
        )
        policy = (
            FailurePolicy(**json.loads(rows["policy"]))
            if "policy" in rows
            else FailurePolicy()
        )
        return {
            "policy": policy,
            "lease_s": json.loads(rows.get("lease_s", "null")) or DEFAULT_LEASE_S,
            "fast_path": json.loads(rows.get("fast_path", "true")),
            "detailed_fast_path": json.loads(
                rows.get("detailed_fast_path", "true")
            ),
            "fault_plan": json.loads(rows.get("fault_plan", "null")),
            "telemetry": json.loads(rows.get("telemetry", "null")),
            "lease_block": max(
                1, int(json.loads(rows.get("lease_block", "1")))
            ),
            "object_store": bool(json.loads(rows.get("object_store", "false"))),
        }

    def enqueue(self, leases: Sequence[_Lease]) -> None:
        """Add leases as pending tasks (idempotent by run key).

        A key already in the queue keeps its row: ``done`` rows serve
        their stored result immediately, in-progress rows are simply
        awaited, and ``exhausted`` rows are re-armed with a fresh retry
        budget (a new campaign deserves its own attempts).
        """
        rows = [(lease.key, _task_to_json(lease.task)) for lease in leases]

        def operate(con: sqlite3.Connection) -> None:
            con.executemany(
                "INSERT OR IGNORE INTO tasks(key, payload) VALUES (?, ?)",
                rows,
            )
            con.executemany(
                "UPDATE tasks SET status='pending', attempt=0, not_before=0, "
                "worker=NULL, lease_expires=NULL, error_type=NULL, error=NULL "
                "WHERE key = ? AND status = 'exhausted'",
                [(key,) for key, _ in rows],
            )

        self._write(operate)

    # -- the worker protocol -----------------------------------------------

    def _claim_rows(
        self,
        con: sqlite3.Connection,
        worker_id: str,
        lease_s: float,
        n: int,
        reference: float,
    ) -> List[Tuple[str, _BatchTask, int]]:
        """Lease up to ``n`` due tasks inside a held write transaction."""
        rows = con.execute(
            "SELECT key, payload, attempt FROM tasks "
            "WHERE status = 'pending' AND not_before <= ? "
            "ORDER BY rowid LIMIT ?",
            (reference, n),
        ).fetchall()
        if rows:
            con.executemany(
                "UPDATE tasks SET status='leased', worker=?, lease_expires=? "
                "WHERE key = ?",
                [(worker_id, reference + lease_s, key) for key, _, _ in rows],
            )
        return [
            (key, _task_from_json(payload), int(attempt))
            for key, payload, attempt in rows
        ]

    def _complete_rows(
        self,
        con: sqlite3.Connection,
        result_rows: Sequence[Tuple[str, str, str, float]],
    ) -> None:
        """Land a batch of completions inside a held write transaction."""
        con.executemany(
            "UPDATE tasks SET status='done', worker=?, lease_expires=NULL, "
            "error_type=NULL, error=NULL WHERE key = ?",
            [(worker, key) for key, _flats, worker, _ in result_rows],
        )
        con.executemany(
            "INSERT OR REPLACE INTO results(key, flats, worker, completed) "
            "VALUES (?, ?, ?, ?)",
            list(result_rows),
        )

    def claim_block(
        self,
        worker_id: str,
        lease_s: float,
        n: int = 1,
        now: Optional[float] = None,
    ) -> List[Tuple[str, _BatchTask, int]]:
        """Lease the ``n`` oldest due pending tasks in one transaction.

        Returns up to ``n`` ``(key, task, attempt)`` tuples in rowid
        order — the attempt index the worker must evaluate each task
        under (it keys the fault and backoff streams, so a re-queued
        task faults exactly as it would have on any backend).  An empty
        list means nothing is due.
        """
        reference = now if now is not None else time.time()
        return self._write(
            lambda con: self._claim_rows(
                con, worker_id, lease_s, max(1, int(n)), reference
            )
        )

    def claim(
        self, worker_id: str, lease_s: float, now: Optional[float] = None
    ) -> Optional[Tuple[str, _BatchTask, int]]:
        """Lease the oldest due pending task; ``None`` when nothing is due.

        The single-task protocol — :meth:`claim_block` with ``n=1``.
        """
        claimed = self.claim_block(worker_id, lease_s, 1, now=now)
        return claimed[0] if claimed else None

    def complete_many(
        self,
        completions: Sequence[Tuple[str, List[Dict[str, Any]]]],
        worker_id: str,
        now: Optional[float] = None,
    ) -> None:
        """Land a block of ``(key, flats)`` results in one transaction.

        Idempotent per key, exactly like :meth:`complete`: a late
        double-completion rewrites rows with the same bits, because
        evaluation is pure.
        """
        if not completions:
            return
        reference = now if now is not None else time.time()
        result_rows = [
            (key, self._encode_flats(flats), worker_id, reference)
            for key, flats in completions
        ]
        self._write(lambda con: self._complete_rows(con, result_rows))

    def complete(
        self,
        key: str,
        flats: List[Dict[str, Any]],
        worker_id: str,
        now: Optional[float] = None,
    ) -> None:
        """Land one task's per-seed metrics; idempotent.

        A late double-completion (a hung worker finishing after its lease
        expired and the task re-ran elsewhere) rewrites the row with the
        same bits — evaluation is pure, so there is nothing to race over.
        """
        self.complete_many([(key, flats)], worker_id, now=now)

    def complete_and_claim(
        self,
        completions: Sequence[Tuple[str, List[Dict[str, Any]]]],
        worker_id: str,
        lease_s: float,
        n: int = 1,
        tasks_done: Optional[int] = None,
        now: Optional[float] = None,
    ) -> List[Tuple[str, _BatchTask, int]]:
        """The steady-state block protocol: one transaction per block.

        Completes the previous block's ``(key, flats)`` results,
        refreshes this worker's heartbeat row when ``tasks_done`` is
        given, and claims the next block of up to ``n`` due tasks — all
        inside a single ``BEGIN IMMEDIATE``, so a long campaign costs
        one queue round-trip per block rather than two per point.

        Crash accounting is unchanged by the fusion: results not yet
        flushed by this call belong to rows still ``leased`` by the
        worker, so a death between calls re-queues exactly the
        unfinished leases (one :class:`WorkerCrashError` charge each)
        and never the ones a previous call already landed.
        """
        reference = now if now is not None else time.time()
        result_rows = [
            (key, self._encode_flats(flats), worker_id, reference)
            for key, flats in completions
        ]

        def operate(con: sqlite3.Connection):
            if result_rows:
                self._complete_rows(con, result_rows)
            if tasks_done is not None:
                con.execute(
                    "INSERT INTO heartbeats"
                    "(worker, started, last_seen, tasks_done) "
                    "VALUES (?, ?, ?, ?) "
                    "ON CONFLICT(worker) DO UPDATE SET "
                    "last_seen=excluded.last_seen, "
                    "tasks_done=excluded.tasks_done",
                    (worker_id, reference, reference, tasks_done),
                )
            return self._claim_rows(
                con, worker_id, lease_s, max(1, int(n)), reference
            )

        return self._write(operate)

    def fail(
        self,
        key: str,
        error_type: str,
        error: str,
        policy: FailurePolicy,
        now: Optional[float] = None,
    ) -> None:
        """Charge one failed attempt: re-queue with backoff, or exhaust."""
        reference = now if now is not None else time.time()
        self._write(
            lambda con: self._charge(
                con, [key], error_type, error, policy, reference
            )
        )

    def _charge(
        self,
        con: sqlite3.Connection,
        keys: Sequence[str],
        error_type: str,
        error: str,
        policy: FailurePolicy,
        reference: float,
    ) -> None:
        """Apply one failed attempt to each key inside a held transaction."""
        for key in keys:
            row = con.execute(
                "SELECT attempt FROM tasks WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                continue
            attempt = int(row[0])
            if attempt < policy.max_retries:
                delay = policy.backoff_s(key, attempt + 1)
                con.execute(
                    "UPDATE tasks SET status='pending', attempt=?, "
                    "not_before=?, worker=NULL, lease_expires=NULL, "
                    "error_type=?, error=? WHERE key = ?",
                    (attempt + 1, reference + delay, error_type, error, key),
                )
            else:
                con.execute(
                    "UPDATE tasks SET status='exhausted', worker=NULL, "
                    "lease_expires=NULL, error_type=?, error=? WHERE key = ?",
                    (error_type, error, key),
                )

    def requeue_expired(
        self, policy: FailurePolicy, now: Optional[float] = None
    ) -> int:
        """Charge every expired lease one attempt; returns how many.

        An expired lease means its worker died or hung past the lease —
        either way the pool backend's accounting applies: one
        :class:`WorkerCrashError`-flavoured attempt, then re-queue.
        """
        reference = now if now is not None else time.time()

        def operate(con: sqlite3.Connection) -> int:
            keys = [
                key
                for (key,) in con.execute(
                    "SELECT key FROM tasks "
                    "WHERE status = 'leased' AND lease_expires < ?",
                    (reference,),
                )
            ]
            self._charge(
                con,
                keys,
                WorkerCrashError.__name__,
                "lease expired (worker lost or hung)",
                policy,
                reference,
            )
            return len(keys)

        return self._write(operate)

    def release_worker(
        self,
        worker_id: str,
        policy: FailurePolicy,
        now: Optional[float] = None,
    ) -> int:
        """Charge a known-dead worker's leases one attempt; returns count."""
        reference = now if now is not None else time.time()

        def operate(con: sqlite3.Connection) -> int:
            keys = [
                key
                for (key,) in con.execute(
                    "SELECT key FROM tasks "
                    "WHERE status = 'leased' AND worker = ?",
                    (worker_id,),
                )
            ]
            self._charge(
                con,
                keys,
                WorkerCrashError.__name__,
                f"worker {worker_id} died mid-task",
                policy,
                reference,
            )
            return len(keys)

        return self._write(operate)

    # -- the parent protocol -----------------------------------------------

    def fetch_results(
        self, after_rowid: int = 0, limit: Optional[int] = None
    ) -> List[Tuple[int, str, Optional[List[Dict[str, Any]]]]]:
        """Result rows newer than ``after_rowid``: ``(rowid, key, flats)``.

        ``limit`` bounds the page (``None`` keeps the full scan for
        small queues and tests).  ``flats`` is ``None`` when the row's
        object-store payload dangles — the caller charges the attempt
        like any corrupt row and the task recomputes.
        """
        if limit is None:
            rows = self._connect().execute(
                "SELECT rowid, key, flats FROM results WHERE rowid > ? "
                "ORDER BY rowid",
                (after_rowid,),
            ).fetchall()
        else:
            rows = self._connect().execute(
                "SELECT rowid, key, flats FROM results WHERE rowid > ? "
                "ORDER BY rowid LIMIT ?",
                (after_rowid, int(limit)),
            ).fetchall()
        return [
            (int(rid), key, self._decode_flats(flats))
            for rid, key, flats in rows
        ]

    def fetch_exhausted(self) -> List[Tuple[str, int, str, str]]:
        """Exhausted rows: ``(key, attempt, error_type, error)``."""
        rows = self._connect().execute(
            "SELECT key, attempt, error_type, error FROM tasks "
            "WHERE status = 'exhausted'"
        ).fetchall()
        return [
            (key, int(attempt), str(error_type or "Exception"), str(error or ""))
            for key, attempt, error_type, error in rows
        ]

    def attempts_for(self, keys: Sequence[str]) -> Dict[str, int]:
        """Current attempt index per key (serial-failover bookkeeping)."""
        attempts: Dict[str, int] = {}
        con = self._connect()
        keys = list(keys)
        for start in range(0, len(keys), 500):
            chunk = keys[start:start + 500]
            marks = ",".join("?" for _ in chunk)
            for key, attempt in con.execute(
                f"SELECT key, attempt FROM tasks WHERE key IN ({marks})",
                tuple(chunk),
            ):
                attempts[key] = int(attempt)
        return attempts

    def counts(self) -> Dict[str, int]:
        """Task counts by status."""
        rows = self._connect().execute(
            "SELECT status, COUNT(*) FROM tasks GROUP BY status"
        ).fetchall()
        return {str(status): int(count) for status, count in rows}

    def drained(self) -> bool:
        """Whether every enqueued task reached a terminal status."""
        counts = self.counts()
        total = sum(counts.values())
        return total > 0 and not (
            counts.get("pending", 0) or counts.get("leased", 0)
        )

    # -- maintenance ---------------------------------------------------------

    def _disk_bytes(self) -> int:
        # The -shm file is transient shared memory (fixed 32 KiB while any
        # connection is open, gone after); counting it would make a drained
        # queue look like it grew across compact.
        total = 0
        for suffix in ("", "-wal"):
            try:
                total += os.path.getsize(str(self.db_path) + suffix)
            except OSError:
                continue
        return total

    def compact(
        self,
        heartbeat_max_age_s: float = HEARTBEAT_MAX_AGE_S,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Drop completed rows and reclaim their disk space.

        Deletes ``done`` task rows and every result row without a task,
        age-sweeps heartbeat rows of long-dead workers, sweeps object
        files no surviving result references, then truncates the WAL
        and ``VACUUM``\\ s the database.  Returns what was removed and
        the bytes reclaimed.  A compacted campaign re-enqueued later
        simply recomputes (or serves from the result cache) — the queue
        holds work in flight, not the archive.
        """
        reference = now if now is not None else time.time()

        def operate(con: sqlite3.Connection) -> Tuple[int, int, int]:
            tasks_dropped = con.execute(
                "DELETE FROM tasks WHERE status = 'done'"
            ).rowcount
            results_dropped = con.execute(
                "DELETE FROM results "
                "WHERE key NOT IN (SELECT key FROM tasks)"
            ).rowcount
            heartbeats_swept = con.execute(
                "DELETE FROM heartbeats WHERE last_seen < ?",
                (reference - heartbeat_max_age_s,),
            ).rowcount
            return tasks_dropped, results_dropped, heartbeats_swept

        bytes_before = self._disk_bytes()
        tasks_dropped, results_dropped, heartbeats_swept = self._write(operate)
        objects_swept = 0
        object_bytes = 0
        if self.objects.exists():
            live: set = set()
            for (text,) in self._connect().execute(
                "SELECT flats FROM results WHERE flats LIKE ?",
                (f'%{MARKER_KEY}%',),
            ):
                live |= refs_in_text(text)
            objects_swept, object_bytes = self.objects.sweep(live)
        con = self._connect()
        con.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        con.execute("VACUUM")
        # In WAL mode VACUUM writes the rebuilt image through the WAL;
        # checkpoint again so the -wal file does not dwarf the database.
        con.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        bytes_after = self._disk_bytes()
        return {
            "tasks_dropped": int(tasks_dropped),
            "results_dropped": int(results_dropped),
            "heartbeats_swept": int(heartbeats_swept),
            "objects_swept": objects_swept,
            "object_bytes": object_bytes,
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "reclaimed_bytes": max(0, bytes_before - bytes_after),
        }

    # -- liveness and status -------------------------------------------------

    def heartbeat(
        self, worker_id: str, tasks_done: int = 0, now: Optional[float] = None
    ) -> None:
        """Record (or refresh) one worker's liveness row.

        Observation only: nothing schedules off a heartbeat — it feeds
        the ``queue status`` view and the telemetry stream.
        """
        reference = now if now is not None else time.time()
        self._write(
            lambda con: con.execute(
                "INSERT INTO heartbeats(worker, started, last_seen, tasks_done) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT(worker) DO UPDATE SET "
                "last_seen=excluded.last_seen, tasks_done=excluded.tasks_done",
                (worker_id, reference, reference, tasks_done),
            )
        )

    def worker_heartbeats(
        self, now: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Every worker ever seen on this queue, with heartbeat ages."""
        reference = now if now is not None else time.time()
        rows = self._connect().execute(
            "SELECT worker, started, last_seen, tasks_done FROM heartbeats "
            "ORDER BY worker"
        ).fetchall()
        return [
            {
                "worker": str(worker),
                "started": float(started),
                "last_seen": float(last_seen),
                "age_s": max(0.0, reference - float(last_seen)),
                "tasks_done": int(tasks_done),
            }
            for worker, started, last_seen, tasks_done in rows
        ]

    def completion_rate(
        self, window_s: float = 60.0, now: Optional[float] = None
    ) -> Tuple[int, float]:
        """``(completions, per-second rate)`` over the trailing window."""
        reference = now if now is not None else time.time()
        (count,) = self._connect().execute(
            "SELECT COUNT(*) FROM results WHERE completed > ?",
            (reference - window_s,),
        ).fetchone()
        rate = int(count) / window_s if window_s > 0 else 0.0
        return int(count), rate

    def status_snapshot(
        self, window_s: float = 60.0, now: Optional[float] = None
    ) -> Dict[str, Any]:
        """Everything ``pbbf-experiments queue status`` renders.

        Counts by status, the published execution contract, worker
        heartbeat ages and the trailing completion rate (from result-row
        timestamps) that the ETA is computed from.
        """
        reference = now if now is not None else time.time()
        counts = self.counts()
        meta = dict(
            self._connect().execute("SELECT name, value FROM meta").fetchall()
        )
        config: Dict[str, Any] = {}
        if "lease_s" in meta:
            config["lease_s"] = json.loads(meta["lease_s"])
        if "policy" in meta:
            policy = json.loads(meta["policy"])
            config["policy"] = (
                f"max_retries={policy.get('max_retries')}, "
                f"on_exhausted={policy.get('on_exhausted')}"
            )
        telemetry = json.loads(meta.get("telemetry", "null"))
        if telemetry:
            config["telemetry"] = telemetry
        lease_block = json.loads(meta.get("lease_block", "1"))
        if lease_block and int(lease_block) > 1:
            config["lease_block"] = int(lease_block)
        if json.loads(meta.get("object_store", "false")):
            config["object_store"] = True
        completed_in_window, rate = self.completion_rate(
            window_s, now=reference
        )
        return {
            "queue_dir": str(self.dir),
            "counts": counts,
            "total": sum(counts.values()),
            "config": config,
            "window_s": window_s,
            "completed_in_window": completed_in_window,
            "rate_per_s": rate,
            "workers": self.worker_heartbeats(now=reference),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkQueue({str(self.dir)!r})"


# -- workers ---------------------------------------------------------------


def worker_loop(
    queue_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    poll_s: float = DEFAULT_POLL_S,
    linger_s: float = 0.0,
    max_tasks: Optional[int] = None,
    block: Optional[int] = None,
) -> int:
    """Claim-and-evaluate until the queue drains; returns tasks completed.

    This is the body of both the spawned :class:`ShardedBackend` workers
    and the stand-alone ``pbbf-experiments worker`` process on another
    machine.  The queue's published config installs the parent's kernel
    flags, failure policy and fault plan, so evaluation — and fault
    decisions, keyed by ``(run key, attempt)`` — matches the serial and
    pool backends bit for bit.

    The loop runs the block protocol: each
    :meth:`WorkQueue.complete_and_claim` round-trip lands the previous
    block's results, refreshes the heartbeat when due, and claims the
    next block of ``block`` tasks (``None`` reads the published
    ``lease_block``; 1 reproduces the original row-at-a-time cadence).
    Completed-but-unflushed results belong to rows still leased by this
    worker, so a crash between round-trips re-queues exactly those
    leases and nothing that already landed.

    ``linger_s`` keeps an idle worker polling that long after the queue
    drains (a shared long-lived queue may receive more campaigns); 0
    exits as soon as the queue is drained.  A worker started before any
    task exists waits for work rather than exiting.
    """
    queue = WorkQueue(queue_dir)
    if worker_id is None:
        worker_id = new_worker_id()
    config = queue.read_config()
    policy: FailurePolicy = config["policy"]
    lease_s: float = config["lease_s"]
    if block is None:
        block = config["lease_block"]
    block = max(1, int(block))
    queue.object_store = config["object_store"]
    plan = (
        faults.FaultPlan.from_token(config["fault_plan"])
        if config["fault_plan"]
        else None
    )
    set_execution(
        fast_path=config["fast_path"],
        detailed_fast_path=config["detailed_fast_path"],
        fault_plan=plan,
        telemetry_dir=config["telemetry"],
    )
    recorder = ensure_recorder(
        config["telemetry"], role="queue-worker"
    )
    faults.mark_pool_worker()
    completed = 0
    idle_since: Optional[float] = None
    last_beat = 0.0
    pending: List[Tuple[str, List[Dict[str, Any]]]] = []

    def beat_due(force: bool = False) -> Optional[int]:
        """``tasks_done`` when a heartbeat is due this round-trip.

        The heartbeat rides the block transaction instead of costing
        its own, rate-limited to the usual cadence; ``None`` skips it.
        """
        nonlocal last_beat
        mono = time.monotonic()
        if not force and mono - last_beat < HEARTBEAT_INTERVAL_S:
            return None
        last_beat = mono
        recorder.event(
            "worker.heartbeat", worker=worker_id, tasks_done=completed
        )
        return completed

    try:
        claimed = queue.complete_and_claim(
            [], worker_id, lease_s, block, tasks_done=beat_due(force=True)
        )
        while True:
            if not claimed:
                now = time.time()
                if queue.drained():
                    if idle_since is None:
                        idle_since = now
                    if now - idle_since >= linger_s:
                        break
                time.sleep(poll_s)
                claimed = queue.complete_and_claim(
                    [], worker_id, lease_s, block, tasks_done=beat_due()
                )
                continue
            idle_since = None
            recorder.counter("queue.blocks_claimed")
            recorder.counter("queue.block_rows", len(claimed))
            stop = False
            for key, task, attempt in claimed:
                attempt_start = time.perf_counter()
                recorder.event(
                    "queue.claimed", key=key[:12], attempt=attempt
                )
                try:
                    flats = _timed_attempt(
                        (task, key, attempt), policy.timeout_s
                    )
                    kind, _params, seeds = task
                    if (
                        not isinstance(flats, list)
                        or len(flats) != len(seeds)
                        or not all(
                            validate_flat_metrics(kind, flat)
                            for flat in flats
                        )
                    ):
                        raise CorruptResultError(
                            f"task returned metrics that do not rebuild as "
                            f"kind {kind!r}"
                        )
                except KeyboardInterrupt:
                    raise
                except BaseException as error:
                    recorder.counter("queue.task_failed")
                    queue.fail(key, type(error).__name__, str(error), policy)
                else:
                    pending.append((key, flats))
                    completed += 1
                    recorder.event(
                        "queue.completed",
                        key=key[:12],
                        attempt=attempt,
                        task_s=round(
                            time.perf_counter() - attempt_start, 6
                        ),
                    )
                    if max_tasks is not None and completed >= max_tasks:
                        stop = True
                        break
            if stop:
                break
            claimed = queue.complete_and_claim(
                pending, worker_id, lease_s, block, tasks_done=beat_due()
            )
            pending = []
    finally:
        # Flush whatever the block in progress finished; on a crash the
        # interpreter never gets here and those rows re-queue instead.
        try:
            queue.complete_many(pending, worker_id)
        except sqlite3.Error:  # pragma: no cover - queue gone mid-shutdown
            pass
        queue.heartbeat(worker_id, tasks_done=completed)
        recorder.event(
            "worker.heartbeat", worker=worker_id, tasks_done=completed
        )
        recorder.flush()
    return completed


def _worker_entry(queue_dir: str, worker_id: str, poll_s: float) -> None:
    """Process target for spawned workers (module-level: picklable)."""
    try:
        worker_loop(queue_dir, worker_id=worker_id, poll_s=poll_s)
    except KeyboardInterrupt:  # pragma: no cover - parent-driven shutdown
        pass


# -- the backend -----------------------------------------------------------


class ShardedBackend:
    """Campaign execution through a shared on-disk work queue.

    Drop-in for the serial and pool backends (same
    ``execute(runs, on_result, failure_policy, on_failure)`` contract,
    same delivery alignment and ordering within a lease).  The parent
    enqueues one task per lease, spawns ``jobs`` local workers, and
    polls the queue: harvesting result rows (whoever computed them —
    the spawned workers or stand-alone ``pbbf-experiments worker``
    processes on other machines), re-queueing expired leases, replacing
    dead workers, and applying ``on_exhausted`` to spent tasks.

    If spawned workers keep dying past the policy's rebuild budget
    (``max_pool_rebuilds`` respawns per slot) the remaining leases fall
    back to in-parent serial execution — the same last-resort path the
    pool backend takes, with attempts synced from the queue rows so the
    retry budget is honoured end to end.

    Parameters
    ----------
    jobs:
        Local worker processes to spawn; ``None`` or 0 means
        ``os.cpu_count()``.
    queue_dir:
        Queue directory; ``None`` uses a private temporary directory
        removed when ``execute`` returns.  Point it somewhere shared
        (beside the cache) to let other machines' workers join.
    lease_s:
        Lease duration; ``None`` derives it from the policy's
        ``timeout_s`` (plus slack) or :data:`DEFAULT_LEASE_S`.
    lease_block:
        Tasks each worker claims (and completes) per queue transaction;
        ``None`` reads the ambient ``ExecutionConfig.lease_block``.
    """

    def __init__(
        self,
        jobs: int = 0,
        queue_dir: Optional[Union[str, Path]] = None,
        lease_s: Optional[float] = None,
        poll_s: float = DEFAULT_POLL_S,
        lease_block: Optional[int] = None,
    ) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self.queue_dir = Path(queue_dir) if queue_dir is not None else None
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.lease_block = lease_block

    def execute(
        self,
        runs: Sequence[CampaignRun],
        on_result: OnResult = None,
        failure_policy: Optional[FailurePolicy] = None,
        on_failure: OnFailure = None,
    ) -> List[Optional[Dict[str, Any]]]:
        """Metrics dicts for ``runs`` in order; ``None`` for failed runs."""
        state = _ExecutionState(
            runs, _resolve_policy(failure_policy), on_result, on_failure
        )
        leases = _serve_from_memo(state, _build_leases(runs))
        if leases:
            self._drain_queue(state, leases)
        return state.finish()

    def _lease_duration(self, policy: FailurePolicy) -> float:
        if self.lease_s is not None:
            return self.lease_s
        if policy.timeout_s:
            # The worker's own deadline fires first; the lease is the
            # backstop for a worker that died holding the task.
            return policy.timeout_s + 30.0
        return DEFAULT_LEASE_S

    def _spawn(
        self, queue_dir: Path, workers: Dict[str, Any]
    ) -> None:
        worker_id = new_worker_id()
        process = multiprocessing.get_context().Process(
            target=_worker_entry,
            args=(str(queue_dir), worker_id, self.poll_s),
            daemon=True,
            name=worker_id,
        )
        process.start()
        workers[worker_id] = process
        get_recorder().event("queue.worker_spawned", worker=worker_id)

    def _drain_queue(
        self, state: _ExecutionState, leases: List[_Lease]
    ) -> None:
        policy = state.policy
        temp_dir: Optional[str] = None
        if self.queue_dir is not None:
            queue_dir = self.queue_dir
        else:
            temp_dir = tempfile.mkdtemp(prefix="repro-queue-")
            queue_dir = Path(temp_dir)
        queue = WorkQueue(queue_dir)
        plan = faults.active_fault_plan()
        queue.configure(
            policy,
            lease_s=self._lease_duration(policy),
            fault_plan_token=plan.token if plan is not None else None,
            lease_block=self.lease_block,
        )
        queue.enqueue(leases)
        outstanding: Dict[str, _Lease] = {lease.key: lease for lease in leases}
        workers: Dict[str, Any] = {}
        jobs = min(self.jobs, len(leases))
        # One original crew plus max_pool_rebuilds replacements per slot
        # — the pool backend's rebuild budget, per worker.
        spawn_cap = jobs * (min(policy.max_pool_rebuilds, policy.max_retries) + 1)
        spawns = 0
        cursor = 0
        try:
            while spawns < jobs:
                self._spawn(queue_dir, workers)
                spawns += 1
            while outstanding:
                # Drain completions page by page: each poll reads at
                # most RESULT_PAGE_ROWS rows per query, so a burst of
                # block completions never turns into one giant scan.
                while True:
                    rows = queue.fetch_results(cursor, limit=RESULT_PAGE_ROWS)
                    if rows:
                        recorder = get_recorder()
                        recorder.counter("queue.result_pages")
                        recorder.counter("queue.result_rows", len(rows))
                    for rowid, key, flats in rows:
                        cursor = max(cursor, rowid)
                        lease = outstanding.get(key)
                        if lease is None:
                            continue
                        try:
                            validated = _validated(lease, flats)
                        except CorruptResultError as error:
                            # A torn row (or schema drift, or a swept
                            # object): charge the attempt and let the
                            # queue retry it.
                            queue.fail(
                                key, type(error).__name__, str(error), policy
                            )
                            continue
                        del outstanding[key]
                        state.deliver(lease, validated)
                    if len(rows) < RESULT_PAGE_ROWS:
                        break
                for key, attempt, error_type, error in queue.fetch_exhausted():
                    lease = outstanding.pop(key, None)
                    if lease is None:
                        continue
                    lease.attempt = attempt
                    self._handle_exhausted(
                        state, queue, lease, attempt + 1, error_type, error
                    )
                if not outstanding:
                    break
                expired = queue.requeue_expired(policy)
                if expired:
                    get_stats().retried += expired
                    recorder = get_recorder()
                    recorder.counter("queue.lease_expired", expired)
                    recorder.event("queue.lease_expired", count=expired)
                dead = [
                    (worker_id, process)
                    for worker_id, process in workers.items()
                    if not process.is_alive()
                ]
                for worker_id, process in dead:
                    del workers[worker_id]
                    if process.exitcode != 0:
                        queue.release_worker(worker_id, policy)
                if not workers and jobs > 0:
                    counts = queue.counts()
                    live_work = counts.get("pending", 0) + counts.get("leased", 0)
                    if live_work:
                        if spawns < spawn_cap:
                            while spawns < spawn_cap and len(workers) < jobs:
                                self._spawn(queue_dir, workers)
                                spawns += 1
                        else:
                            # Workers keep dying: finish in-parent, where
                            # attribution is exact (the pool backend's
                            # same last resort), attempts synced from the
                            # queue so the retry budget carries over.
                            self._fail_over_serial(state, queue, outstanding)
                            break
                time.sleep(self.poll_s)
        finally:
            for process in workers.values():
                try:
                    process.terminate()
                except (OSError, ValueError):  # pragma: no cover
                    pass
            for process in workers.values():
                process.join(5.0)
            queue.close()
            if temp_dir is not None:
                shutil.rmtree(temp_dir, ignore_errors=True)

    def _handle_exhausted(
        self,
        state: _ExecutionState,
        queue: WorkQueue,
        lease: _Lease,
        attempts: int,
        error_type: str,
        error: str,
    ) -> None:
        """Apply ``on_exhausted`` to one spent task, parent-side."""
        if state.policy.on_exhausted == "degrade":
            get_recorder().event("task.degraded", key=lease.key[:12])
            flats, degrade_error = _degraded_attempt(lease)
            if flats is not None:
                state.deliver(lease, flats)
                queue.complete(lease.key, flats, "parent-degraded")
                return
            if degrade_error is not None:
                error_type = type(degrade_error).__name__
                error = str(degrade_error)
        for offset in range(lease.n_runs):
            run = state.runs[lease.start + offset]
            failure = RunFailure(
                key=run.key,
                kind=run.kind,
                params=run.params,
                seed=run.seed,
                attempts=attempts,
                error_type=error_type,
                error=error,
            )
            state.failures.append(failure)
            if state.on_failure is not None:
                state.on_failure(failure)
        get_stats().failed += lease.n_runs
        recorder = get_recorder()
        recorder.counter("task.exhausted")
        recorder.event(
            "task.exhausted",
            key=lease.key[:12],
            attempts=attempts,
            runs=lease.n_runs,
            error=error_type,
        )

    def _fail_over_serial(
        self,
        state: _ExecutionState,
        queue: WorkQueue,
        outstanding: Dict[str, _Lease],
    ) -> None:
        remaining = sorted(outstanding.values(), key=lambda lease: lease.start)
        get_recorder().event(
            "queue.serial_failover", remaining=len(remaining)
        )
        attempts = queue.attempts_for(list(outstanding))
        for lease in remaining:
            lease.attempt = attempts.get(lease.key, lease.attempt)
            lease.not_before = 0.0
        outstanding.clear()
        _drain_serial(state, remaining)
        for lease in remaining:
            flats = state.results[lease.start:lease.start + lease.n_runs]
            if all(flat is not None for flat in flats):
                queue.complete(lease.key, list(flats), "parent-serial")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.queue_dir) if self.queue_dir else "<temp>"
        return f"ShardedBackend(jobs={self.jobs}, queue_dir={where!r})"
