"""Append-only campaign journal: what a killed invocation already did.

The disk cache makes *finished* campaigns cheap to repeat; the journal
makes *interrupted* ones cheap to resume.  While a campaign executes,
every completed run is appended — key, seed and flat metrics — to one
JSONL file keyed by the spec's content hash, flushed line by line, so a
SIGKILL forfeits at most the in-flight points.  ``run_campaign(resume=
True)`` replays the journal before consulting cache or backend and
simulates only the remainder; a campaign that finishes with zero
failures discards its journal (the cache now owns the results).

Failure records are journaled too, so a resumed invocation can report
what its predecessor gave up on.  Reading is tolerant: a torn final line
(the crash happened mid-append) is skipped, matching the cache's
"corruption is a miss" contract.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.runners.failures import RunFailure
from repro.runners.object_store import ObjectStore, object_marker_ref

#: Bumped if the journal line layout changes; old lines then replay as
#: unknown events (skipped), never as wrong results.
JOURNAL_VERSION = 1


@dataclass
class JournalReplay:
    """What ``CampaignJournal.load`` recovered from disk."""

    #: Flat metrics dicts by run key (last write wins).
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Failure payloads in append order.
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: Unparsable or unknown lines skipped (a torn tail is expected).
    skipped: int = 0


class CampaignJournal:
    """One campaign's append-only JSONL journal.

    Best-effort like the result cache: an unwritable journal degrades to
    no journaling (with one warning) rather than failing the campaign
    it is there to protect.
    """

    def __init__(
        self,
        path: Union[str, Path],
        object_store: Optional[ObjectStore] = None,
    ) -> None:
        self.path = Path(path)
        self._handle = None
        self._write_failed = False
        #: When set, large metrics dicts are journaled as content refs
        #: (shared with the cache tiers); ``load`` resolves markers
        #: whether or not a store was passed.
        self.object_store = object_store

    @classmethod
    def for_campaign(
        cls,
        cache_root: Union[str, Path],
        spec_hash: str,
        object_store: Optional[ObjectStore] = None,
    ) -> "CampaignJournal":
        """The default journal location beside the result cache."""
        return cls(
            Path(cache_root) / "journal" / f"{spec_hash}.jsonl",
            object_store=object_store,
        )

    @property
    def exists(self) -> bool:
        return self.path.is_file()

    def append_result(
        self, key: str, kind: str, seed: int, metrics: Dict[str, Any]
    ) -> None:
        """Record one completed run (flat metrics, cache-payload form)."""
        if self.object_store is not None:
            metrics = self.object_store.encode(metrics)
        self._append(
            {"event": "result", "key": key, "kind": kind, "seed": seed,
             "metrics": metrics}
        )

    def append_failure(self, failure: RunFailure) -> None:
        """Record one run that exhausted its retries."""
        self._append({"event": "failure", **failure.to_payload()})

    def _append(self, record: Dict[str, Any]) -> None:
        if self._write_failed:
            return
        line = json.dumps({"v": JOURNAL_VERSION, **record}, sort_keys=True)
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            # One write + flush per record: a kill tears at most the
            # final line, which load() skips.
            self._handle.write(line + "\n")
            self._handle.flush()
        except OSError as exc:
            self._write_failed = True
            warnings.warn(
                f"campaign journal at {self.path} is not writable ({exc}); "
                "continuing without crash recovery",
                RuntimeWarning,
                stacklevel=2,
            )

    def load(self) -> JournalReplay:
        """Replay the journal; corrupt or unknown lines are skipped."""
        replay = JournalReplay()
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return replay
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                replay.skipped += 1
                continue
            if (
                not isinstance(record, dict)
                or record.get("v") != JOURNAL_VERSION
            ):
                replay.skipped += 1
                continue
            event = record.get("event")
            if (
                event == "result"
                and isinstance(record.get("key"), str)
                and isinstance(record.get("metrics"), dict)
            ):
                metrics = record["metrics"]
                if object_marker_ref(metrics) is not None:
                    # Content-addressed line: resolve it; a swept object
                    # degrades to a skipped line (the point re-runs).
                    metrics = self._objects().resolve(metrics)
                    if not isinstance(metrics, dict):
                        replay.skipped += 1
                        continue
                replay.results[record["key"]] = metrics
            elif event == "failure" and isinstance(record.get("key"), str):
                replay.failures.append(record)
            else:
                replay.skipped += 1
        return replay

    def _objects(self) -> ObjectStore:
        """The store markers resolve against (shared or path-derived).

        ``for_campaign`` journals live at ``<cache_root>/journal/``, so
        when no store was handed in, the cache root two levels up is
        where any referenced objects must be.
        """
        if self.object_store is None:
            self.object_store = ObjectStore(self.path.parent.parent)
        return self.object_store

    def close(self) -> None:
        """Flush and release the append handle (journal file kept)."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def discard(self) -> None:
        """Delete the journal (clean campaign completion)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignJournal({str(self.path)!r})"
