"""The campaign runner: declarative sweeps, pluggable execution, caching.

The paper's figures are parameter sweeps — (p, q) grids x seeds x
densities — over three simulator families.  This subsystem industrialises
that pattern in three parts:

1. :class:`~repro.runners.spec.CampaignSpec` — a *declarative* sweep:
   simulator kind (``ideal`` / ``detailed`` / ``percolation``), swept
   axes, fixed parameters, explicit baseline points and a seed count,
   with per-point seeds derived from point *content* so results are
   reproducible regardless of execution order;
2. pluggable backends behind one :func:`~repro.runners.campaign.run_campaign`
   API — :class:`~repro.runners.backends.SerialBackend` and the
   chunked-fan-out :class:`~repro.runners.backends.ProcessPoolBackend`
   (``--jobs N``), bit-identical for a fixed spec;
3. an on-disk JSON result cache keyed by each point's content hash
   (:mod:`repro.runners.cache`; ``~/.cache/repro`` or ``--cache-dir``),
   so re-running ``run-all`` only computes changed points.

Usage::

    from repro.runners import CampaignSpec, run_campaign

    spec = CampaignSpec.build(
        kind="ideal",
        axes={"p": (0.25, 0.5), "q": (0.0, 0.5, 1.0)},
        fixed={
            "grid_side": 25, "n_broadcasts": 12,
            "mode": "psm_pbbf", "hop_near": 8, "hop_far": 16,
        },
        extra_points=({"p": 1.0, "q": 1.0, "mode": "always_on"},),
        seed_params=("grid_side", "p", "q", "mode"),
    )
    result = run_campaign(spec, jobs=4)        # fan out over 4 processes
    point = result.metrics(p=0.5, q=0.5)       # typed IdealPointMetrics
    print(point.reliability_90, point.joules_per_update_per_node)

Scenario axes: any parameter value may be a
:class:`~repro.scenarios.ScenarioSpec` (topology family + source policy +
failure injection); specs are normalised to their canonical token string
at build time, so deployment shape sweeps exactly like a scalar axis —
including seeds, caching and process-pool fan-out.

Execution defaults (jobs, cache directory, cache bypass) come from the
ambient :func:`~repro.runners.context.execution` context, which the CLI
sets from ``--jobs`` / ``--cache-dir`` / ``--no-cache``; ``--progress``
installs a campaign-progress printer
(``progress(completed, total, cached, computed)`` callbacks honoured by
both backends).

Fault tolerance: execution runs under a
:class:`~repro.runners.failures.FailurePolicy` (retries with
deterministic backoff, per-task timeouts, ``raise``/``skip``/``degrade``
exhaustion handling), completed runs stream into a crash-safe journal
backing ``run_campaign(resume=True)`` / ``run-all --resume``, and
:class:`~repro.runners.faults.FaultPlan` injects deterministic worker
crashes, hangs and corrupt results/cache writes so every recovery path
is provable in tests and CI.
"""

from repro.runners.backends import ProcessPoolBackend, SerialBackend
from repro.runners.cache import (
    CACHE_VERSION,
    CacheStats,
    PurgeReport,
    ResultCache,
    default_cache_dir,
)
from repro.runners.campaign import CampaignResult, clear_memo, run_campaign
from repro.runners.context import (
    ExecutionConfig,
    ExecutionStats,
    execution,
    get_execution,
    get_stats,
    reset_stats,
    set_execution,
)
from repro.runners.failures import (
    CampaignExecutionError,
    FailurePolicy,
    RunFailure,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.runners.faults import FaultPlan
from repro.runners.journal import CampaignJournal
from repro.runners.object_store import ObjectStore
from repro.runners.queue import ShardedBackend, WorkQueue, worker_loop
from repro.runners.points import (
    DetailedPointMetrics,
    IdealPointMetrics,
    PercolationPointMetrics,
    clear_point_caches,
    evaluate_run,
)
from repro.runners.spec import (
    DEFAULT_BASE_SEED,
    KINDS,
    CampaignRun,
    CampaignSpec,
    run_key,
)
from repro.runners.sqlite_tier import SQLiteCacheTier


def clear_run_caches() -> None:
    """Drop every in-process cache layer (memo + point evaluators)."""
    clear_memo()
    clear_point_caches()


__all__ = [
    "CACHE_VERSION",
    "DEFAULT_BASE_SEED",
    "KINDS",
    "CacheStats",
    "CampaignExecutionError",
    "CampaignJournal",
    "CampaignResult",
    "CampaignRun",
    "CampaignSpec",
    "DetailedPointMetrics",
    "ExecutionConfig",
    "ExecutionStats",
    "FailurePolicy",
    "FaultPlan",
    "IdealPointMetrics",
    "ObjectStore",
    "PercolationPointMetrics",
    "ProcessPoolBackend",
    "PurgeReport",
    "ResultCache",
    "RunFailure",
    "SQLiteCacheTier",
    "SerialBackend",
    "ShardedBackend",
    "TaskTimeoutError",
    "WorkQueue",
    "WorkerCrashError",
    "clear_memo",
    "clear_point_caches",
    "clear_run_caches",
    "default_cache_dir",
    "evaluate_run",
    "execution",
    "get_execution",
    "get_stats",
    "reset_stats",
    "run_campaign",
    "run_key",
    "set_execution",
    "worker_loop",
]
