"""Execution backends: how a batch of campaign runs gets computed.

Both backends take the *pending* runs of a campaign (after memo and disk
cache have been consulted) and return one flat metrics dict per run, in
order.  Because point evaluation is a pure function of ``(kind, params,
seed)`` (see :mod:`repro.runners.points`), the two are bit-identical for
a fixed spec — ``ProcessPoolBackend`` is purely a wall-clock optimisation.

Seed batching: consecutive ``detailed`` runs differing only in their seed
(how :meth:`CampaignSpec.runs` orders them) are grouped into one task and
evaluated through :func:`repro.runners.points.evaluate_run_batch`, which
hands the whole seed list to the seed-batched kernel in a single call
when the point is inside its scope.  Grouping only changes *who* computes
each run's metrics — per-run results, their order and completion ticks
are identical to the ungrouped loop.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runners.context import get_execution, set_execution
from repro.runners.points import evaluate_run, evaluate_run_batch, metrics_to_dict
from repro.runners.spec import CampaignRun

_Task = Tuple[str, Dict[str, Any], int]
#: One grouped unit of work: a point and the (consecutive) seeds to run.
_BatchTask = Tuple[str, Dict[str, Any], Tuple[int, ...]]

#: Per-run completion tick, invoked in the parent process after each run's
#: metrics materialise (the campaign layer turns ticks into progress lines).
OnResult = Optional[Callable[[], None]]


def _evaluate_task(task: _Task) -> Dict[str, Any]:
    """Pool worker: evaluate one (kind, params, seed) task to a flat dict.

    Module-level so it pickles under every multiprocessing start method.
    """
    kind, params, seed = task
    return metrics_to_dict(evaluate_run(kind, params, seed))


def _evaluate_batch_task(task: _BatchTask) -> List[Dict[str, Any]]:
    """Pool worker: evaluate one point's grouped seeds, one dict per seed."""
    kind, params, seeds = task
    return [
        metrics_to_dict(metrics)
        for metrics in evaluate_run_batch(kind, params, seeds)
    ]


def _group_runs(runs: Sequence[CampaignRun]) -> List[_BatchTask]:
    """Group consecutive same-point ``detailed`` runs into batch tasks.

    Only the ``detailed`` kind batches (its kernel amortises machinery
    across seeds); other kinds stay singleton tasks so pool scheduling
    granularity is unchanged for them.  ``run.params`` is the hashable
    point identity, so equality is exact.
    """
    groups: List[_BatchTask] = []
    last_params: Optional[Tuple] = None
    for run in runs:
        if (
            groups
            and run.kind == "detailed"
            and groups[-1][0] == "detailed"
            and run.params == last_params
        ):
            kind, params, seeds = groups[-1]
            groups[-1] = (kind, params, seeds + (run.seed,))
        else:
            groups.append((run.kind, run.params_dict(), (run.seed,)))
            last_params = run.params
    return groups


def _init_worker(fast_path: bool, detailed_fast_path: bool) -> None:
    """Install the parent's evaluation-affecting execution flags.

    The ambient :class:`ExecutionConfig` is a module global, so spawned
    (or forkserver) workers re-import it with defaults; without this the
    parent's ``--no-fast-path`` / ``--no-detailed-fast-path`` would
    silently not reach the pool.
    """
    set_execution(fast_path=fast_path, detailed_fast_path=detailed_fast_path)


class SerialBackend:
    """Evaluate runs one after another in the current process."""

    def execute(
        self, runs: Sequence[CampaignRun], on_result: OnResult = None
    ) -> List[Dict[str, Any]]:
        """Metrics dicts for ``runs``, in order."""
        results: List[Dict[str, Any]] = []
        for task in _group_runs(runs):
            for flat in _evaluate_batch_task(task):
                results.append(flat)
                if on_result is not None:
                    on_result()
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


class ProcessPoolBackend:
    """Chunked fan-out over a ``multiprocessing`` pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` or 0 means ``os.cpu_count()``.
    """

    def __init__(self, jobs: int = 0) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs

    def execute(
        self, runs: Sequence[CampaignRun], on_result: OnResult = None
    ) -> List[Dict[str, Any]]:
        """Metrics dicts for ``runs``, in order (workers may interleave)."""
        tasks = _group_runs(runs)
        results: List[Dict[str, Any]] = []
        if len(tasks) <= 1 or self.jobs == 1:
            for task in tasks:
                for flat in _evaluate_batch_task(task):
                    results.append(flat)
                    if on_result is not None:
                        on_result()
            return results
        jobs = min(self.jobs, len(tasks))
        # ~4 chunks per worker balances scheduling overhead against the
        # skew between cheap (sub-threshold) and expensive points.
        chunksize = max(1, len(tasks) // (jobs * 4))
        with multiprocessing.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(
                get_execution().fast_path,
                get_execution().detailed_fast_path,
            ),
        ) as pool:
            # imap (not map) so completion ticks fire as results stream
            # back; order and values are identical to pool.map.
            for flats in pool.imap(
                _evaluate_batch_task, tasks, chunksize=chunksize
            ):
                for flat in flats:
                    results.append(flat)
                    if on_result is not None:
                        on_result()
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessPoolBackend(jobs={self.jobs})"
