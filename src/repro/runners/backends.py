"""Execution backends: how a batch of campaign runs gets computed.

Both backends take the *pending* runs of a campaign (after memo and disk
cache have been consulted) and return one flat metrics dict per run, in
order.  Because point evaluation is a pure function of ``(kind, params,
seed)`` (see :mod:`repro.runners.points`), the two are bit-identical for
a fixed spec — ``ProcessPoolBackend`` is purely a wall-clock optimisation.

Seed batching: consecutive ``detailed`` runs differing only in their seed
(how :meth:`CampaignSpec.runs` orders them) are grouped into one task and
evaluated through :func:`repro.runners.points.evaluate_run_batch`, which
hands the whole seed list to the seed-batched kernel in a single call
when the point is inside its scope.  Grouping only changes *who* computes
each run's metrics — per-run results, their order and completion ticks
are identical to the ungrouped loop.

Fault tolerance: each grouped task is a *lease* executed under a
:class:`~repro.runners.failures.FailurePolicy`.  A task that raises,
returns schema-invalid metrics, hangs past the policy's ``timeout_s`` or
takes its worker process down with it is retried (deterministic backoff,
bounded attempts) and, once exhausted, handled per ``on_exhausted`` —
recorded as a :class:`~repro.runners.failures.RunFailure` (``skip``),
given one last in-parent attempt on the reference kernels (``degrade``),
or surfaced in a :class:`CampaignExecutionError` *after* the rest of the
batch completes (``raise``, the default).  The pool backend rebuilds its
executor when workers die and falls back to in-parent serial execution
when rebuilds exceed the policy's bound, so serial and pool behave
identically under the same injected faults.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs import ensure_recorder, get_recorder
from repro.runners import faults
from repro.runners.context import (
    execution,
    get_execution,
    get_stats,
    set_execution,
)
from repro.runners.failures import (
    CampaignExecutionError,
    CorruptResultError,
    FailurePolicy,
    RunFailure,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.runners.points import (
    evaluate_run_batch,
    metrics_to_dict,
    validate_flat_metrics,
)
from repro.runners.spec import CampaignRun

#: One grouped unit of work: a point and the (consecutive) seeds to run.
_BatchTask = Tuple[str, Dict[str, Any], Tuple[int, ...]]

#: Per-run completion hook, invoked in the parent process as each run's
#: metrics materialise: ``on_result(index, flat)`` with ``index`` into
#: the ``runs`` sequence (the campaign layer persists and reports
#: progress from these, so completed work survives a later crash).
OnResult = Optional[Callable[[int, Dict[str, Any]], None]]

#: Per-run failure hook: one :class:`RunFailure` per covered run once a
#: lease exhausts its retries.
OnFailure = Optional[Callable[[RunFailure], None]]

#: How often the pool loop wakes to check deadlines and top up leases.
_POLL_INTERVAL_S = 0.05

#: Campaigns with at most this many leases per worker count as "small":
#: the pool groups their leases into one submission per worker, so IPC
#: and future bookkeeping stop dominating short tasks.
_SMALL_CAMPAIGN_PER_WORKER = 8


def _evaluate_batch_task(task: _BatchTask) -> List[Dict[str, Any]]:
    """Evaluate one point's grouped seeds, one flat dict per seed."""
    kind, params, seeds = task
    return [
        metrics_to_dict(metrics)
        for metrics in evaluate_run_batch(kind, params, seeds)
    ]


def _evaluate_leased_task(
    payload: Tuple[_BatchTask, str, int]
) -> List[Dict[str, Any]]:
    """Task body for both backends: faults applied around the evaluation.

    Module-level so it pickles under every multiprocessing start method.
    Fault injection wraps — never enters — the evaluators: a
    corrupt-result fault substitutes the *returned* dicts, leaving the
    evaluators' in-process caches clean for the retry.
    """
    task, lease_key, attempt = payload
    with get_recorder().span(
        "task",
        key=lease_key[:12],
        attempt=attempt,
        kind=task[0],
        seeds=len(task[2]),
    ):
        marker = faults.apply_task_fault(lease_key, attempt)
        flats = _evaluate_batch_task(task)
    if marker == "corrupt_result":
        return [dict(faults.CORRUPT_RESULT_MARKER) for _ in flats]
    return flats


def _evaluate_lease_chunk(
    payloads: Sequence[Tuple[_BatchTask, str, int]]
) -> List[Tuple[Any, ...]]:
    """Evaluate several leases in one pool submission, outcomes aligned.

    Used for small campaigns where per-lease submission overhead would
    dominate.  Failures are captured per lease as ``("error", type
    name, message)`` tuples instead of raising, so one bad lease never
    charges its chunk-mates an attempt — only a worker *death* (which
    no handler survives) keeps the whole-chunk collateral accounting.
    """
    outcomes: List[Tuple[Any, ...]] = []
    for payload in payloads:
        try:
            outcomes.append(("ok", _evaluate_leased_task(payload)))
        except KeyboardInterrupt:  # pragma: no cover - parent-driven
            raise
        except BaseException as error:
            outcomes.append(("error", type(error).__name__, str(error)))
    return outcomes


_CHUNK_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (CorruptResultError, TaskTimeoutError, WorkerCrashError)
}


def _chunk_error(name: str, message: str) -> BaseException:
    """Rebuild a chunk lease's worker-side failure from its wire form.

    Unknown types become a synthetic RuntimeError subclass carrying the
    original name, so ``RunFailure.error_type`` reads the same whether
    the lease ran chunked or singleton.
    """
    cls = _CHUNK_ERROR_TYPES.get(name)
    if cls is None:
        cls = type(name, (RuntimeError,), {})
    return cls(message)


def _group_runs(runs: Sequence[CampaignRun]) -> List[_BatchTask]:
    """Group consecutive same-point ``detailed`` runs into batch tasks.

    Only the ``detailed`` kind batches (its kernel amortises machinery
    across seeds); other kinds stay singleton tasks so pool scheduling
    granularity is unchanged for them.  ``run.params`` is the hashable
    point identity, so equality is exact.
    """
    groups: List[_BatchTask] = []
    last_params: Optional[Tuple] = None
    for run in runs:
        if (
            groups
            and run.kind == "detailed"
            and groups[-1][0] == "detailed"
            and run.params == last_params
        ):
            kind, params, seeds = groups[-1]
            groups[-1] = (kind, params, seeds + (run.seed,))
        else:
            groups.append((run.kind, run.params_dict(), (run.seed,)))
            last_params = run.params
    return groups


def _init_worker(
    fast_path: bool,
    detailed_fast_path: bool,
    fault_plan_token: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
) -> None:
    """Install the parent's evaluation-affecting execution flags.

    The ambient :class:`ExecutionConfig` is a module global, so spawned
    (or forkserver) workers re-import it with defaults; without this the
    parent's ``--no-fast-path`` / ``--no-detailed-fast-path`` — and any
    context-installed fault plan — would silently not reach the pool.
    ``telemetry_dir`` rides along so pool workers append their own event
    files beside the parent's (observation only; it affects no result).
    """
    plan = (
        faults.FaultPlan.from_token(fault_plan_token)
        if fault_plan_token
        else None
    )
    set_execution(
        fast_path=fast_path,
        detailed_fast_path=detailed_fast_path,
        fault_plan=plan,
        telemetry_dir=telemetry_dir,
    )
    ensure_recorder(telemetry_dir, role="pool-worker")
    faults.mark_pool_worker()


@dataclass
class _Lease:
    """One task's claim on a slice of the result list, across retries."""

    task: _BatchTask
    #: Index of the lease's first run in the ``execute`` input sequence.
    start: int
    #: Run key of the first covered run — the lease's identity in the
    #: fault and backoff streams.
    key: str
    #: Attempt about to run (0 = the original try).
    attempt: int = 0
    #: Monotonic time before which the lease must not be resubmitted
    #: (retry backoff).
    not_before: float = 0.0

    @property
    def n_runs(self) -> int:
        return len(self.task[2])


def _build_leases(runs: Sequence[CampaignRun]) -> List[_Lease]:
    leases: List[_Lease] = []
    start = 0
    for task in _group_runs(runs):
        leases.append(_Lease(task=task, start=start, key=runs[start].key))
        start += len(task[2])
    return leases


def _resolve_policy(policy: Optional[FailurePolicy]) -> FailurePolicy:
    """Explicit argument, else ambient context, else the defaults."""
    if policy is not None:
        return policy
    ambient = get_execution().failure_policy
    return ambient if ambient is not None else FailurePolicy()


class _ExecutionState:
    """Bookkeeping one ``execute`` call shares across leases and retries."""

    def __init__(
        self,
        runs: Sequence[CampaignRun],
        policy: FailurePolicy,
        on_result: OnResult,
        on_failure: OnFailure,
    ) -> None:
        self.runs = list(runs)
        self.policy = policy
        self.on_result = on_result
        self.on_failure = on_failure
        self.results: List[Optional[Dict[str, Any]]] = [None] * len(self.runs)
        self.failures: List[RunFailure] = []

    def deliver(self, lease: _Lease, flats: List[Dict[str, Any]]) -> None:
        """Land one completed lease's per-run metrics, firing the hook."""
        for offset, flat in enumerate(flats):
            index = lease.start + offset
            self.results[index] = flat
            if self.on_result is not None:
                self.on_result(index, flat)

    def record_exhausted(self, lease: _Lease, error: BaseException) -> None:
        """Turn one spent lease into per-run failure records."""
        for offset in range(lease.n_runs):
            run = self.runs[lease.start + offset]
            failure = RunFailure(
                key=run.key,
                kind=run.kind,
                params=run.params,
                seed=run.seed,
                attempts=lease.attempt + 1,
                error_type=type(error).__name__,
                error=str(error),
            )
            self.failures.append(failure)
            if self.on_failure is not None:
                self.on_failure(failure)
        get_stats().failed += lease.n_runs
        recorder = get_recorder()
        recorder.counter("task.exhausted")
        recorder.event(
            "task.exhausted",
            key=lease.key[:12],
            attempts=lease.attempt + 1,
            runs=lease.n_runs,
            error=type(error).__name__,
        )

    def finish(self) -> List[Optional[Dict[str, Any]]]:
        """The aligned results; raises last if the policy says so.

        Raising *after* the loop means one poisoned point costs only
        itself — every other run completed and (through ``on_result``)
        was already persisted by the campaign layer.
        """
        if self.failures and self.policy.on_exhausted == "raise":
            raise CampaignExecutionError(self.failures)
        return self.results


def _validated(lease: _Lease, flats: Any) -> List[Dict[str, Any]]:
    """A lease's raw task output, or :class:`CorruptResultError`."""
    kind = lease.task[0]
    if (
        not isinstance(flats, list)
        or len(flats) != lease.n_runs
        or not all(validate_flat_metrics(kind, flat) for flat in flats)
    ):
        raise CorruptResultError(
            f"task returned metrics that do not rebuild as kind {kind!r}"
        )
    return flats


def _serve_from_memo(
    state: _ExecutionState, leases: List[_Lease]
) -> List[_Lease]:
    """Deliver leases the in-process memo already covers; return the rest.

    ``run_campaign`` filters memoised points before calling a backend,
    but direct ``execute`` callers (and mixed warm/cold reruns) would
    otherwise pay worker submission or queue round-trips for points the
    parent can serve immediately.  Only fully covered leases
    short-circuit — a partial hit goes to the backend whole so batch
    grouping stays intact — and delivery runs through ``state.deliver``,
    so ordering and hooks match a computed lease exactly.
    """
    from repro.runners.campaign import _MEMO  # import-time cycle guard

    if not _MEMO:
        return leases
    remaining: List[_Lease] = []
    served = 0
    for lease in leases:
        flats: List[Dict[str, Any]] = []
        for offset in range(lease.n_runs):
            metrics = _MEMO.get(state.runs[lease.start + offset].key)
            if metrics is None:
                break
            flats.append(metrics_to_dict(metrics))
        if len(flats) == lease.n_runs:
            state.deliver(lease, flats)
            served += 1
        else:
            remaining.append(lease)
    if served:
        get_recorder().counter("backend.memo_served", served)
    return remaining


def _degraded_attempt(
    lease: _Lease,
) -> Tuple[Optional[List[Dict[str, Any]]], Optional[BaseException]]:
    """Last-resort in-parent attempt on the reference kernels.

    Mirrors ``on_exhausted="degrade"``'s promise: no pool, no fast-path
    kernels, no fault injection — if the reference implementation can
    produce the point, the campaign gets it.
    """
    try:
        with execution(fast_path=False, detailed_fast_path=False):
            with faults.suppress_faults():
                flats = _evaluate_batch_task(lease.task)
        return _validated(lease, flats), None
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # even the reference kernels failed
        return None, exc


def _handle_failed_attempt(
    state: _ExecutionState,
    lease: _Lease,
    error: BaseException,
    requeue: Callable[[_Lease], None],
) -> None:
    """One failed attempt: schedule a retry, degrade, or record failure."""
    policy = state.policy
    recorder = get_recorder()
    if isinstance(error, TaskTimeoutError):
        recorder.counter("task.timeout")
    if lease.attempt < policy.max_retries:
        delay = policy.backoff_s(lease.key, lease.attempt + 1)
        lease.attempt += 1
        lease.not_before = time.monotonic() + delay if delay > 0 else 0.0
        get_stats().retried += 1
        recorder.counter("task.retry")
        recorder.event(
            "task.retry",
            key=lease.key[:12],
            attempt=lease.attempt,
            backoff_s=round(delay, 4),
            error=type(error).__name__,
        )
        requeue(lease)
        return
    if policy.on_exhausted == "degrade":
        recorder.event("task.degraded", key=lease.key[:12])
        flats, degrade_error = _degraded_attempt(lease)
        if flats is not None:
            state.deliver(lease, flats)
            return
        error = degrade_error if degrade_error is not None else error
    state.record_exhausted(lease, error)


def _timed_attempt(
    payload: Tuple[_BatchTask, str, int], timeout_s: Optional[float]
) -> List[Dict[str, Any]]:
    """Evaluate in-process, bounding wall-clock when a deadline is set.

    The evaluation runs in a daemon thread joined for ``timeout_s``; a
    hung attempt cannot be killed in-process, so it is *abandoned* and
    reported as :class:`TaskTimeoutError`.  The evaluators are pure, so
    an abandoned thread that eventually finishes merely warms their
    caches — the retry still returns the same bits.
    """
    if not timeout_s:
        return _evaluate_leased_task(payload)
    box: Dict[str, Any] = {}

    def _target() -> None:
        try:
            box["flats"] = _evaluate_leased_task(payload)
        except BaseException as exc:  # rethrown in the joining thread
            box["error"] = exc

    thread = threading.Thread(target=_target, daemon=True, name="repro-task")
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise TaskTimeoutError(f"task exceeded timeout_s={timeout_s:g}")
    if "error" in box:
        raise box["error"]
    return box["flats"]


def _drain_serial(state: _ExecutionState, leases: Sequence[_Lease]) -> None:
    """Run leases to completion in-process under the retry envelope."""
    queue: Deque[_Lease] = deque(leases)
    while queue:
        lease = queue.popleft()
        delay = lease.not_before - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        payload = (lease.task, lease.key, lease.attempt)
        try:
            flats = _validated(
                lease, _timed_attempt(payload, state.policy.timeout_s)
            )
        except KeyboardInterrupt:
            raise
        except Exception as error:
            _handle_failed_attempt(state, lease, error, queue.appendleft)
            continue
        state.deliver(lease, flats)


class SerialBackend:
    """Evaluate runs one after another in the current process.

    Same retry/timeout/exhaustion envelope as the pool backend, so a
    campaign behaves identically under injected faults whichever backend
    runs it — only crashes differ mechanically (an in-process "crash"
    raises :class:`WorkerCrashError` instead of killing a worker).
    """

    def execute(
        self,
        runs: Sequence[CampaignRun],
        on_result: OnResult = None,
        failure_policy: Optional[FailurePolicy] = None,
        on_failure: OnFailure = None,
    ) -> List[Optional[Dict[str, Any]]]:
        """Metrics dicts for ``runs`` in order; ``None`` for failed runs."""
        state = _ExecutionState(
            runs, _resolve_policy(failure_policy), on_result, on_failure
        )
        _drain_serial(state, _build_leases(runs))
        return state.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


def _kill_executor(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down even when its workers are hung or dead.

    ``shutdown()`` alone would join a hung worker forever; terminating
    the worker processes first (CPython tracks them in ``_processes``)
    reclaims them, and the non-blocking shutdown then just retires the
    executor machinery.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for process in list(processes.values()):
        try:
            process.join(1.0)
        except Exception:  # pragma: no cover - defensive
            pass


class ProcessPoolBackend:
    """Leased fan-out over a process pool, resilient to worker loss.

    Each grouped task is leased to one worker via async submission (at
    most one in-flight task per worker, so a submission-time deadline
    approximates a start-time one).  A worker that raises or returns
    garbage charges its lease one attempt; a worker that *dies* breaks
    the whole pool, so every in-flight lease is charged one attempt
    (the guilty one is unknowable) and the pool is rebuilt — bounded by
    ``FailurePolicy.max_pool_rebuilds``, after which the remaining
    leases degrade to in-parent serial execution, where crash faults
    raise instead of exiting and attribution is exact.  A lease past its
    deadline times out alone; its hung worker is reclaimed by a pool
    rebuild that requeues the innocent in-flight leases at their
    *current* attempt (no charge).

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` or 0 means ``os.cpu_count()``.
    """

    def __init__(self, jobs: int = 0) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs

    def execute(
        self,
        runs: Sequence[CampaignRun],
        on_result: OnResult = None,
        failure_policy: Optional[FailurePolicy] = None,
        on_failure: OnFailure = None,
    ) -> List[Optional[Dict[str, Any]]]:
        """Metrics dicts for ``runs`` in order; ``None`` for failed runs.

        Workers may interleave, but delivery (and ``on_result``) order
        within a lease — and the returned alignment — match the serial
        backend exactly.
        """
        state = _ExecutionState(
            runs, _resolve_policy(failure_policy), on_result, on_failure
        )
        leases = _serve_from_memo(state, _build_leases(runs))
        if len(leases) <= 1 or self.jobs == 1:
            _drain_serial(state, leases)
        else:
            self._drain_pool(state, leases)
        return state.finish()

    def _new_executor(self, workers: int) -> ProcessPoolExecutor:
        config = get_execution()
        plan = faults.active_fault_plan()
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(
                config.fast_path,
                config.detailed_fast_path,
                plan.token if plan is not None else None,
                config.telemetry_dir,
            ),
        )

    def _drain_pool(self, state: _ExecutionState, leases: List[_Lease]) -> None:
        policy = state.policy
        workers = min(self.jobs, len(leases))
        # An innocent lease loses one attempt per pool collapse, so the
        # rebuild budget must never exceed the retry budget — otherwise
        # a single poisoned task could exhaust its neighbours.
        rebuild_cap = min(policy.max_pool_rebuilds, policy.max_retries)
        rebuilds = 0
        queue: Deque[_Lease] = deque(leases)
        waiting: List[_Lease] = []  # backoff-delayed leases
        in_flight: Dict[Any, Tuple[List[_Lease], Optional[float]]] = {}
        # Small warm campaigns: one submission per worker instead of one
        # per lease, so IPC and future bookkeeping stop dominating short
        # tasks (the small-campaign pool regression).  Never chunked
        # under a task deadline — the submission-time deadline only
        # approximates a start-time one at one task per submission.
        chunk_size = 1
        if policy.timeout_s is None and len(leases) > workers:
            per_worker = -(-len(leases) // workers)  # ceil
            if (
                per_worker > 1
                and len(leases) <= workers * _SMALL_CAMPAIGN_PER_WORKER
            ):
                chunk_size = per_worker

        def requeue(lease: _Lease) -> None:
            if lease.not_before > time.monotonic():
                waiting.append(lease)
            else:
                queue.append(lease)

        def fail_over_to_serial() -> None:
            remaining = [
                lease for chunk, _ in in_flight.values() for lease in chunk
            ]
            in_flight.clear()
            remaining.extend(queue)
            remaining.extend(waiting)
            queue.clear()
            waiting.clear()
            remaining.sort(key=lambda lease: lease.start)
            _drain_serial(state, remaining)

        executor = self._new_executor(workers)
        try:
            while queue or waiting or in_flight:
                now = time.monotonic()
                due = [lease for lease in waiting if lease.not_before <= now]
                for lease in due:
                    waiting.remove(lease)
                    queue.append(lease)
                broken = False
                while queue and len(in_flight) < workers:
                    chunk = [queue.popleft()]
                    while len(chunk) < chunk_size and queue:
                        chunk.append(queue.popleft())
                    payloads = [
                        (lease.task, lease.key, lease.attempt)
                        for lease in chunk
                    ]
                    try:
                        if len(chunk) == 1:
                            future = executor.submit(
                                _evaluate_leased_task, payloads[0]
                            )
                        else:
                            future = executor.submit(
                                _evaluate_lease_chunk, payloads
                            )
                    except BrokenExecutor:
                        for lease in reversed(chunk):
                            queue.appendleft(lease)
                        broken = True
                        break
                    deadline = (
                        time.monotonic() + policy.timeout_s
                        if policy.timeout_s
                        else None
                    )
                    in_flight[future] = (chunk, deadline)
                if not in_flight and not broken:
                    if waiting:
                        pause = min(l.not_before for l in waiting) - time.monotonic()
                        if pause > 0:
                            time.sleep(min(pause, 0.25))
                    continue
                if in_flight and not broken:
                    done, _ = wait(
                        list(in_flight),
                        timeout=_POLL_INTERVAL_S,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        chunk, _deadline = in_flight.pop(future)
                        try:
                            raw = future.result()
                        except BrokenExecutor as error:
                            broken = True
                            for lease in chunk:
                                _handle_failed_attempt(
                                    state, lease, error, requeue
                                )
                            continue
                        except KeyboardInterrupt:
                            raise
                        except Exception as error:
                            for lease in chunk:
                                _handle_failed_attempt(
                                    state, lease, error, requeue
                                )
                            continue
                        outcomes = (
                            [("ok", raw)] if len(chunk) == 1 else raw
                        )
                        for lease, outcome in zip(chunk, outcomes):
                            if outcome[0] != "ok":
                                _handle_failed_attempt(
                                    state,
                                    lease,
                                    _chunk_error(outcome[1], outcome[2]),
                                    requeue,
                                )
                                continue
                            try:
                                flats = _validated(lease, outcome[1])
                            except CorruptResultError as error:
                                _handle_failed_attempt(
                                    state, lease, error, requeue
                                )
                            else:
                                state.deliver(lease, flats)
                expired: List[Any] = []
                if not broken and policy.timeout_s:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_chunk, deadline) in in_flight.items()
                        if deadline is not None and now >= deadline
                    ]
                    for future in expired:
                        chunk, _deadline = in_flight.pop(future)
                        for lease in chunk:
                            _handle_failed_attempt(
                                state,
                                lease,
                                TaskTimeoutError(
                                    f"task exceeded "
                                    f"timeout_s={policy.timeout_s:g}"
                                ),
                                requeue,
                            )
                if broken or expired:
                    # The pool is unusable: workers died (pool poisoned)
                    # or are hung holding expired leases.  Re-lease the
                    # in-flight tasks and start a fresh pool — a worker
                    # death charges them one attempt (guilty unknown), a
                    # timeout elsewhere does not (they are innocent and
                    # merely rescheduled).
                    stranded = list(in_flight.values())
                    in_flight.clear()
                    for chunk, _deadline in stranded:
                        for lease in chunk:
                            if broken:
                                _handle_failed_attempt(
                                    state,
                                    lease,
                                    WorkerCrashError(
                                        "worker pool collapsed mid-task"
                                    ),
                                    requeue,
                                )
                            else:
                                requeue(lease)
                    _kill_executor(executor)
                    rebuilds += 1
                    recorder = get_recorder()
                    recorder.counter("pool.rebuild")
                    recorder.event(
                        "pool.rebuild",
                        rebuilds=rebuilds,
                        cause="broken" if broken else "timeout",
                    )
                    if rebuilds > rebuild_cap:
                        # The pool keeps dying: finish in-parent, where
                        # attribution is exact and nothing can take the
                        # process down but the task itself.
                        recorder.event(
                            "pool.serial_failover", rebuilds=rebuilds
                        )
                        fail_over_to_serial()
                        return
                    executor = self._new_executor(workers)
        finally:
            _kill_executor(executor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessPoolBackend(jobs={self.jobs})"
