"""On-disk result cache for campaign points.

Every simulated point is stored as one small JSON file keyed by the
content hash of its point spec (simulator kind + full parameters + seed),
so re-running a campaign only computes points whose spec actually changed.
Files live under ``~/.cache/repro`` by default; override with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``.

The cache is strictly a performance layer: a version-mismatched entry
reads as a miss and the point is recomputed.  A *corrupt* entry (torn
JSON, wrong shape) also reads as a miss, but is additionally quarantined
— renamed to ``<key>.corrupt`` — so the damage is visible in ``cache
stats`` and the bad file can never be re-read as a miss forever.
Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written entry behind; tmp files orphaned by a killed
writer are swept by ``purge`` once they are stale.

Size budget: ``ResultCache(max_size_mb=...)`` (or the
``REPRO_CACHE_MAX_MB`` environment variable, or the CLI's
``--cache-max-size-mb``) applies the oldest-first size purge
automatically at write time, so unattended long-running deployments
never grow the cache past the budget — no scheduled ``cache purge``
required.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import get_recorder
from repro.runners.faults import cache_write_corrupted
from repro.runners.object_store import (
    ObjectStore,
    object_marker_ref,
    refs_in_text,
)

#: Bumped whenever the serialized payload layout or the semantics of a
#: cached metric change; old entries then read as misses.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class CacheStats:
    """What ``ResultCache.stats`` reports about a cache directory."""

    root: str
    #: Readable entry files found (stale ones included).
    n_entries: int
    total_bytes: int
    #: Entries that would read as misses (corrupt or version-mismatched).
    n_stale: int
    #: Valid entries per simulator kind, name-sorted.
    by_kind: Tuple[Tuple[str, int], ...]
    #: ``<key>.corrupt`` files quarantined by earlier corrupt reads.
    n_quarantined: int = 0
    #: Campaign journals (``journal/*.jsonl``) left beside the cache by
    #: interrupted or failed campaigns — orphaned resume state until a
    #: ``--resume`` replays them or an age-gated purge sweeps them.
    n_journals: int = 0
    journal_bytes: int = 0
    #: Content-addressed payload objects (``objects/``) entries and
    #: journals reference instead of inlining large metrics dicts.
    n_objects: int = 0
    object_bytes: int = 0


class PurgeReport(int):
    """``ResultCache.purge``'s return value: the removed-entry count,
    plus what the stale-tmp/quarantine/journal sweeps reclaimed.

    An ``int`` subclass so existing ``purge(...) == n`` call sites keep
    working unchanged; the sweep details ride along as attributes.
    ``entry_bytes`` is what the removed entries occupied — the
    evict-on-insert budget keeps its running byte total incremental by
    subtracting it instead of re-walking the directory.
    """

    tmp_swept: int
    tmp_bytes: int
    corrupt_swept: int
    entry_bytes: int
    journals_swept: int
    journal_bytes: int
    objects_swept: int
    object_bytes: int

    def __new__(
        cls,
        removed: int,
        tmp_swept: int = 0,
        tmp_bytes: int = 0,
        corrupt_swept: int = 0,
        entry_bytes: int = 0,
        journals_swept: int = 0,
        journal_bytes: int = 0,
        objects_swept: int = 0,
        object_bytes: int = 0,
    ) -> "PurgeReport":
        self = super().__new__(cls, removed)
        self.tmp_swept = tmp_swept
        self.tmp_bytes = tmp_bytes
        self.corrupt_swept = corrupt_swept
        self.entry_bytes = entry_bytes
        self.journals_swept = journals_swept
        self.journal_bytes = journal_bytes
        self.objects_swept = objects_swept
        self.object_bytes = object_bytes
        return self

    def __str__(self) -> str:
        # Formats like the plain count it replaces ("purged {n} entries").
        return str(int(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PurgeReport(removed={int(self)}, tmp_swept={self.tmp_swept}, "
            f"tmp_bytes={self.tmp_bytes}, corrupt_swept={self.corrupt_swept}, "
            f"entry_bytes={self.entry_bytes}, "
            f"journals_swept={self.journals_swept}, "
            f"journal_bytes={self.journal_bytes}, "
            f"objects_swept={self.objects_swept}, "
            f"object_bytes={self.object_bytes})"
        )


def default_max_size_mb() -> Optional[float]:
    """``$REPRO_CACHE_MAX_MB`` as a float, or ``None`` (unbudgeted).

    An unparsable value degrades to no budget with one warning — the
    cache is a performance layer and must never fail a campaign.
    """
    env = os.environ.get("REPRO_CACHE_MAX_MB")
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        warnings.warn(
            f"ignoring REPRO_CACHE_MAX_MB={env!r} (not a number)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return value if value >= 0 else None


class ResultCache:
    """JSON-file cache of point results, sharded by key prefix.

    ``max_size_mb`` arms the evict-on-insert budget: every write that
    pushes the cache past the budget triggers the same oldest-first purge
    as ``cache purge --max-size-mb``.  ``None`` consults
    ``$REPRO_CACHE_MAX_MB``; no budget anywhere means writes never evict.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        max_size_mb: Optional[float] = None,
        object_store: bool = False,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_size_mb is None:
            max_size_mb = default_max_size_mb()
        if max_size_mb is not None and max_size_mb < 0:
            raise ValueError(f"max_size_mb must be >= 0, got {max_size_mb}")
        self.max_size_mb = max_size_mb
        #: Whether *writes* indirect large metrics dicts through the
        #: content-addressed object store; reads always resolve markers
        #: regardless, so entries stay portable across the setting.
        self.object_store = bool(object_store)
        self.objects = ObjectStore(self.root)
        #: Corrupt entries this instance moved aside (see ``_quarantine``).
        self.quarantined = 0
        self._write_failed = False
        #: Running byte total of stored entries, maintained across writes
        #: once the first budget check scans the directory (so each
        #: subsequent put is O(1) unless it actually evicts).
        self._tracked_bytes: Optional[int] = None

    def _path(self, key: str) -> Path:
        return self.root / "points" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on any miss.

        A missing or version-mismatched entry is a plain miss; an entry
        that is *corrupt* — unparsable JSON, or parsable but not shaped
        like a result — is quarantined to ``<key>.corrupt`` so it stops
        masquerading as an eternal miss and shows up in :meth:`stats`.
        """
        path = self._path(key)
        recorder = get_recorder()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            recorder.counter("cache.file.miss")
            return None
        except ValueError:
            self._quarantine(path)
            recorder.counter("cache.file.miss")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            recorder.counter("cache.file.miss")
            return None
        if payload.get("version") != CACHE_VERSION:
            recorder.counter("cache.file.miss")
            return None  # a different-era entry, not a damaged one
        if "metrics" not in payload:
            self._quarantine(path)
            recorder.counter("cache.file.miss")
            return None
        if object_marker_ref(payload["metrics"]) is not None:
            metrics = self.objects.resolve(payload["metrics"])
            if metrics is None:
                # The referenced object was swept or torn: the entry is
                # unusable but the row itself is fine — read as a miss
                # and let the recompute rewrite both.
                recorder.counter("cache.file.miss")
                return None
            payload = dict(payload)
            payload["metrics"] = metrics
        recorder.counter("cache.file.hit")
        return payload

    def get_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Payloads for every hit among ``keys`` (misses simply absent).

        On the file layer this is a convenience loop — one ``open`` per
        key — kept signature-compatible with
        :meth:`repro.runners.sqlite_tier.SQLiteCacheTier.get_many`, where
        the same call is a handful of batched ``SELECT``s.  The campaign
        scan always goes through this entry point, so swapping tiers
        swaps the read path wholesale.
        """
        found: Dict[str, Dict[str, Any]] = {}
        for key in keys:
            payload = self.get(key)
            if payload is not None:
                found[key] = payload
        return found

    def put_many(self, items: Mapping[str, Dict[str, Any]]) -> None:
        """Store every ``key -> payload``; one atomic write per entry."""
        for key, payload in items.items():
            self.put(key, payload)

    def _quarantine(self, path: Path) -> None:
        """Move one corrupt entry aside (best-effort, crash-race safe)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            return
        self.quarantined += 1
        recorder = get_recorder()
        recorder.counter("cache.file.quarantined")
        recorder.event("cache.quarantine", tier="file", entry=path.stem[:12])

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically store ``payload`` (stamped with the cache version).

        Best-effort: the cache is strictly a performance layer, so an
        unwritable directory degrades to cache-off (with one warning)
        rather than failing the campaign that computed the result.
        """
        if self._write_failed:
            return
        record = dict(payload)
        record["version"] = CACHE_VERSION
        if self.object_store and isinstance(record.get("metrics"), dict):
            record["metrics"] = self.objects.encode(record["metrics"])
        path = self._path(key)
        text = json.dumps(record, sort_keys=True)
        if cache_write_corrupted(key):
            # Injected torn write (see repro.runners.faults): what a
            # kill between write and rename would leave if writes were
            # not atomic — exercised so quarantine-on-read stays proven.
            text = text[: max(1, len(text) // 2)]
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
            try:
                replaced_size = path.stat().st_size
            except OSError:
                replaced_size = 0  # fresh key: nothing being overwritten
            os.replace(tmp, path)
        except OSError as exc:
            self._write_failed = True
            get_recorder().event(
                "cache.degraded", tier="file", error=type(exc).__name__
            )
            warnings.warn(
                f"result cache at {self.root} is not writable ({exc}); "
                "continuing without caching",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        get_recorder().counter("cache.file.put")
        if self.max_size_mb is not None:
            self._enforce_budget(path, replaced_size)

    def _enforce_budget(self, just_written: Path, replaced_size: int) -> None:
        """Evict-on-insert: shrink to the byte budget after a write.

        The running byte total is seeded with one directory scan and then
        maintained incrementally — overwrites contribute only their size
        *delta* (``replaced_size`` is what the write displaced); over
        budget, the standard oldest-first purge runs (the just-written
        entry has the newest mtime, so it survives unless the budget is
        smaller than that single entry) and the total drops by the
        purge's reclaimed ``entry_bytes``.  A cache sitting *at* its
        budget therefore pays one directory walk per purge (the eviction
        scan itself, which needs every entry's mtime), never a second
        full ``_scan_bytes`` re-measure per ``put``.  Concurrent writers
        can drift the incremental total; a total that goes negative is
        the tell, and triggers one corrective re-scan.
        """
        try:
            written_size = just_written.stat().st_size
        except OSError:
            return  # raced with a concurrent purge; next write re-checks
        if self._tracked_bytes is None:
            self._tracked_bytes = self._scan_bytes()
        else:
            self._tracked_bytes += written_size - replaced_size
        if self._tracked_bytes <= self.max_size_mb * 1024.0 * 1024.0:
            return
        before = self._tracked_bytes
        report = self.purge(max_size_mb=self.max_size_mb)
        remaining = before - report.entry_bytes
        # purge() invalidated the total (it must, for external callers);
        # restore it from the reclaimed-bytes report.
        self._tracked_bytes = remaining if remaining >= 0 else self._scan_bytes()

    def _scan_bytes(self) -> int:
        """Total size of stored entries (one directory walk)."""
        total = 0
        for path in self.entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def has(self, key: str) -> bool:
        """Cheap existence probe (no parse/validation; ``get`` still may miss)."""
        return self._path(key).exists()

    # -- lifecycle ---------------------------------------------------------

    def entry_paths(self) -> Iterator[Path]:
        """Every stored entry file, in no particular order."""
        points = self.root / "points"
        if not points.is_dir():
            return
        yield from points.glob("*/*.json")

    def stats(self) -> "CacheStats":
        """Aggregate stats of the stored entries (the CLI's ``cache stats``).

        Entries that fail to parse, or were written under a different
        :data:`CACHE_VERSION` (both read as misses), are counted as
        *stale* rather than attributed to a simulator kind.
        """
        n_entries = 0
        total_bytes = 0
        stale = 0
        by_kind: Dict[str, int] = {}
        for path in self.entry_paths():
            try:
                size = path.stat().st_size
            except OSError:
                continue  # raced with a concurrent purge
            n_entries += 1
            total_bytes += size
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                stale += 1
                continue
            if (
                not isinstance(payload, dict)
                or payload.get("version") != CACHE_VERSION
            ):
                stale += 1
                continue
            kind = str(payload.get("kind", "?"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
        points = self.root / "points"
        n_quarantined = (
            sum(1 for _ in points.glob("*/*.corrupt")) if points.is_dir() else 0
        )
        n_journals = 0
        journal_bytes = 0
        for path in self.journal_paths():
            try:
                journal_bytes += path.stat().st_size
            except OSError:
                continue  # raced with a concurrent sweep
            n_journals += 1
        n_objects, object_bytes = self.objects.stats()
        return CacheStats(
            root=str(self.root),
            n_entries=n_entries,
            total_bytes=total_bytes,
            n_stale=stale,
            by_kind=tuple(sorted(by_kind.items())),
            n_quarantined=n_quarantined,
            n_journals=n_journals,
            journal_bytes=journal_bytes,
            n_objects=n_objects,
            object_bytes=object_bytes,
        )

    #: Orphaned ``.tmp`` files younger than this many seconds are left
    #: alone by the sweep — they may belong to a write in flight right
    #: now.  Atomic writes live milliseconds, so an hour is generous.
    TMP_SWEEP_AGE_S = 3600.0

    def purge(
        self,
        max_age_days: Optional[float] = None,
        max_size_mb: Optional[float] = None,
        now: Optional[float] = None,
        tmp_age_s: Optional[float] = None,
        keep_object_refs: Optional[Sequence[str]] = None,
    ) -> "PurgeReport":
        """Delete stored entries; returns how many were removed.

        With no criteria every entry goes (the original ``cache purge``),
        and quarantined ``.corrupt`` files go with them.  ``max_age_days``
        evicts entries whose file modification time is older than that
        many days.  ``max_size_mb`` then shrinks whatever remains to the
        byte budget by evicting *oldest-first* (mtime, path-tie-broken),
        so full-scale result sets age out before the points a recent
        campaign just warmed.  Both criteria may be combined; ``now``
        pins the age reference for tests.

        Every purge also sweeps ``.tmp`` files orphaned by killed
        writers once they are older than ``tmp_age_s`` (default
        :data:`TMP_SWEEP_AGE_S`), and campaign journals under
        ``journal/`` — all of them on a full purge, those older than
        ``max_age_days`` on an age-gated one (a journal that old belongs
        to a campaign nobody is resuming).  The return value is an
        ``int``-compatible :class:`PurgeReport` carrying what each sweep
        reclaimed.

        Content-addressed objects are garbage-collected by liveness:
        after the entry/journal sweeps, any object no surviving entry or
        journal references is removed.  ``keep_object_refs`` adds
        references held elsewhere (the SQLite tier passes its surviving
        rows', so a write-through mirror purge never strands the
        database's payloads).

        Empty shard directories are cleaned up too; the root itself is
        left in place (it may be a shared cache directory).
        """
        if max_age_days is not None and max_age_days < 0:
            raise ValueError(f"max_age_days must be >= 0, got {max_age_days}")
        if max_size_mb is not None and max_size_mb < 0:
            raise ValueError(f"max_size_mb must be >= 0, got {max_size_mb}")
        if tmp_age_s is None:
            tmp_age_s = self.TMP_SWEEP_AGE_S
        # Any purge invalidates the evict-on-insert running total; the
        # budget path restores it from this report's ``entry_bytes``.
        self._tracked_bytes = None
        removed = 0
        entry_bytes = 0
        entries: List[Tuple[float, int, Path]] = []
        for path in list(self.entry_paths()):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent purge
            if max_age_days is None and max_size_mb is None:
                try:
                    path.unlink()
                    removed += 1
                    entry_bytes += stat.st_size
                except OSError:
                    continue
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        if entries:
            reference = now if now is not None else time.time()
            survivors: List[Tuple[float, int, Path]] = []
            for mtime, size, path in entries:
                if (
                    max_age_days is not None
                    and reference - mtime > max_age_days * 86_400.0
                ):
                    try:
                        path.unlink()
                        removed += 1
                        entry_bytes += size
                    except OSError:
                        continue
                else:
                    survivors.append((mtime, size, path))
            if max_size_mb is not None:
                budget = max_size_mb * 1024.0 * 1024.0
                total = sum(size for _, size, _ in survivors)
                for mtime, size, path in sorted(
                    survivors, key=lambda entry: (entry[0], str(entry[2]))
                ):
                    if total <= budget:
                        break
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    removed += 1
                    entry_bytes += size
                    total -= size
        points = self.root / "points"
        reference = now if now is not None else time.time()
        tmp_swept = 0
        tmp_bytes = 0
        corrupt_swept = 0
        if points.is_dir():
            # Stale-tmp sweep: a writer killed between write and rename
            # leaves its `<key>.<pid>.tmp` behind forever (the atomic
            # protocol never reads them back).  Age-gate the sweep so a
            # concurrent writer's fresh tmp file survives.
            for tmp in points.glob("*/*.tmp"):
                try:
                    stat = tmp.stat()
                except OSError:
                    continue  # raced with a concurrent sweep
                if reference - stat.st_mtime <= tmp_age_s:
                    continue
                try:
                    tmp.unlink()
                except OSError:
                    continue
                tmp_swept += 1
                tmp_bytes += stat.st_size
            if max_age_days is None and max_size_mb is None:
                # A full purge clears the quarantine too — the damaged
                # entries it preserved as evidence go with the data.
                for corrupt in points.glob("*/*.corrupt"):
                    try:
                        corrupt.unlink()
                        corrupt_swept += 1
                    except OSError:
                        continue
            for shard in points.iterdir():
                try:
                    shard.rmdir()
                except OSError:
                    continue  # non-empty or gone
        journals_swept = 0
        journal_bytes = 0
        if max_size_mb is None or max_age_days is not None:
            # Journal sweep: a full purge clears every journal with the
            # results they protected; an age-gated purge clears only the
            # orphans nobody will resume.  A pure size purge leaves them
            # alone — it is about the entry budget, not resume state.
            sweep_age_s = (
                max_age_days * 86_400.0 if max_age_days is not None else None
            )
            journals_swept, journal_bytes = self._sweep_journals(
                sweep_age_s, reference
            )
        objects_swept = 0
        object_bytes = 0
        if self.objects.exists():
            keep = self._live_object_refs()
            keep.update(keep_object_refs or ())
            objects_swept, object_bytes = self.objects.sweep(keep)
        return PurgeReport(
            removed,
            tmp_swept=tmp_swept,
            tmp_bytes=tmp_bytes,
            corrupt_swept=corrupt_swept,
            entry_bytes=entry_bytes,
            journals_swept=journals_swept,
            journal_bytes=journal_bytes,
            objects_swept=objects_swept,
            object_bytes=object_bytes,
        )

    def _live_object_refs(self) -> set:
        """Every object ref the surviving entries and journals mention.

        One text scan per file; only runs when the object store has ever
        been used (``objects/`` exists), so object-free caches pay
        nothing at purge time.
        """
        refs: set = set()
        for path in list(self.entry_paths()) + list(self.journal_paths()):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue  # raced with a concurrent sweep
            refs |= refs_in_text(text)
        return refs

    def journal_paths(self) -> Iterator[Path]:
        """Every campaign journal beside this cache, in no set order."""
        journals = self.root / "journal"
        if not journals.is_dir():
            return
        yield from journals.glob("*.jsonl")

    def _sweep_journals(
        self, older_than_s: Optional[float], reference: float
    ) -> Tuple[int, int]:
        """Remove journals (all, or older than the age); returns count+bytes."""
        swept = 0
        swept_bytes = 0
        for path in list(self.journal_paths()):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent sweep
            if older_than_s is not None and reference - stat.st_mtime <= older_than_s:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            swept += 1
            swept_bytes += stat.st_size
        return swept, swept_bytes

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(root={str(self.root)!r})"
