"""On-disk result cache for campaign points.

Every simulated point is stored as one small JSON file keyed by the
content hash of its point spec (simulator kind + full parameters + seed),
so re-running a campaign only computes points whose spec actually changed.
Files live under ``~/.cache/repro`` by default; override with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``.

The cache is strictly a performance layer: a corrupted, truncated or
version-mismatched entry reads as a miss and the point is recomputed.
Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written entry behind.

Size budget: ``ResultCache(max_size_mb=...)`` (or the
``REPRO_CACHE_MAX_MB`` environment variable, or the CLI's
``--cache-max-size-mb``) applies the oldest-first size purge
automatically at write time, so unattended long-running deployments
never grow the cache past the budget — no scheduled ``cache purge``
required.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

#: Bumped whenever the serialized payload layout or the semantics of a
#: cached metric change; old entries then read as misses.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class CacheStats:
    """What ``ResultCache.stats`` reports about a cache directory."""

    root: str
    #: Readable entry files found (stale ones included).
    n_entries: int
    total_bytes: int
    #: Entries that would read as misses (corrupt or version-mismatched).
    n_stale: int
    #: Valid entries per simulator kind, name-sorted.
    by_kind: Tuple[Tuple[str, int], ...]


def default_max_size_mb() -> Optional[float]:
    """``$REPRO_CACHE_MAX_MB`` as a float, or ``None`` (unbudgeted).

    An unparsable value degrades to no budget with one warning — the
    cache is a performance layer and must never fail a campaign.
    """
    env = os.environ.get("REPRO_CACHE_MAX_MB")
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        warnings.warn(
            f"ignoring REPRO_CACHE_MAX_MB={env!r} (not a number)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return value if value >= 0 else None


class ResultCache:
    """JSON-file cache of point results, sharded by key prefix.

    ``max_size_mb`` arms the evict-on-insert budget: every write that
    pushes the cache past the budget triggers the same oldest-first purge
    as ``cache purge --max-size-mb``.  ``None`` consults
    ``$REPRO_CACHE_MAX_MB``; no budget anywhere means writes never evict.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        max_size_mb: Optional[float] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_size_mb is None:
            max_size_mb = default_max_size_mb()
        if max_size_mb is not None and max_size_mb < 0:
            raise ValueError(f"max_size_mb must be >= 0, got {max_size_mb}")
        self.max_size_mb = max_size_mb
        self._write_failed = False
        #: Running byte total of stored entries, maintained across writes
        #: once the first budget check scans the directory (so each
        #: subsequent put is O(1) unless it actually evicts).
        self._tracked_bytes: Optional[int] = None

    def _path(self, key: str) -> Path:
        return self.root / "points" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on any miss."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        if "metrics" not in payload:
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically store ``payload`` (stamped with the cache version).

        Best-effort: the cache is strictly a performance layer, so an
        unwritable directory degrades to cache-off (with one warning)
        rather than failing the campaign that computed the result.
        """
        if self._write_failed:
            return
        record = dict(payload)
        record["version"] = CACHE_VERSION
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            try:
                replaced_size = path.stat().st_size
            except OSError:
                replaced_size = 0  # fresh key: nothing being overwritten
            os.replace(tmp, path)
        except OSError as exc:
            self._write_failed = True
            warnings.warn(
                f"result cache at {self.root} is not writable ({exc}); "
                "continuing without caching",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        if self.max_size_mb is not None:
            self._enforce_budget(path, replaced_size)

    def _enforce_budget(self, just_written: Path, replaced_size: int) -> None:
        """Evict-on-insert: shrink to the byte budget after a write.

        The running byte total is seeded with one directory scan and then
        maintained incrementally — overwrites contribute only their size
        *delta* (``replaced_size`` is what the write displaced); over
        budget, the standard oldest-first purge runs (the just-written
        entry has the newest mtime, so it survives unless the budget is
        smaller than that single entry) and the total is re-measured from
        what remains.
        """
        try:
            written_size = just_written.stat().st_size
        except OSError:
            return  # raced with a concurrent purge; next write re-checks
        if self._tracked_bytes is None:
            self._tracked_bytes = self._scan_bytes()
        else:
            self._tracked_bytes += written_size - replaced_size
        if self._tracked_bytes <= self.max_size_mb * 1024.0 * 1024.0:
            return
        self.purge(max_size_mb=self.max_size_mb)
        self._tracked_bytes = self._scan_bytes()

    def _scan_bytes(self) -> int:
        """Total size of stored entries (one directory walk)."""
        total = 0
        for path in self.entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def has(self, key: str) -> bool:
        """Cheap existence probe (no parse/validation; ``get`` still may miss)."""
        return self._path(key).exists()

    # -- lifecycle ---------------------------------------------------------

    def entry_paths(self) -> Iterator[Path]:
        """Every stored entry file, in no particular order."""
        points = self.root / "points"
        if not points.is_dir():
            return
        yield from points.glob("*/*.json")

    def stats(self) -> "CacheStats":
        """Aggregate stats of the stored entries (the CLI's ``cache stats``).

        Entries that fail to parse, or were written under a different
        :data:`CACHE_VERSION` (both read as misses), are counted as
        *stale* rather than attributed to a simulator kind.
        """
        n_entries = 0
        total_bytes = 0
        stale = 0
        by_kind: Dict[str, int] = {}
        for path in self.entry_paths():
            try:
                size = path.stat().st_size
            except OSError:
                continue  # raced with a concurrent purge
            n_entries += 1
            total_bytes += size
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                stale += 1
                continue
            if (
                not isinstance(payload, dict)
                or payload.get("version") != CACHE_VERSION
            ):
                stale += 1
                continue
            kind = str(payload.get("kind", "?"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return CacheStats(
            root=str(self.root),
            n_entries=n_entries,
            total_bytes=total_bytes,
            n_stale=stale,
            by_kind=tuple(sorted(by_kind.items())),
        )

    def purge(
        self,
        max_age_days: Optional[float] = None,
        max_size_mb: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Delete stored entries; returns how many were removed.

        With no criteria every entry goes (the original ``cache purge``).
        ``max_age_days`` evicts entries whose file modification time is
        older than that many days.  ``max_size_mb`` then shrinks whatever
        remains to the byte budget by evicting *oldest-first* (mtime,
        path-tie-broken), so full-scale result sets age out before the
        points a recent campaign just warmed.  Both criteria may be
        combined; ``now`` pins the age reference for tests.

        Empty shard directories are cleaned up too; the root itself is
        left in place (it may be a shared cache directory).
        """
        if max_age_days is not None and max_age_days < 0:
            raise ValueError(f"max_age_days must be >= 0, got {max_age_days}")
        if max_size_mb is not None and max_size_mb < 0:
            raise ValueError(f"max_size_mb must be >= 0, got {max_size_mb}")
        # Any purge invalidates the evict-on-insert running total; the
        # next budgeted write re-measures.
        self._tracked_bytes = None
        removed = 0
        entries: List[Tuple[float, int, Path]] = []
        for path in list(self.entry_paths()):
            if max_age_days is None and max_size_mb is None:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent purge
            entries.append((stat.st_mtime, stat.st_size, path))
        if entries:
            reference = now if now is not None else time.time()
            survivors: List[Tuple[float, int, Path]] = []
            for mtime, size, path in entries:
                if (
                    max_age_days is not None
                    and reference - mtime > max_age_days * 86_400.0
                ):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
                else:
                    survivors.append((mtime, size, path))
            if max_size_mb is not None:
                budget = max_size_mb * 1024.0 * 1024.0
                total = sum(size for _, size, _ in survivors)
                for mtime, size, path in sorted(
                    survivors, key=lambda entry: (entry[0], str(entry[2]))
                ):
                    if total <= budget:
                        break
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    removed += 1
                    total -= size
        points = self.root / "points"
        if points.is_dir():
            for shard in points.iterdir():
                try:
                    shard.rmdir()
                except OSError:
                    continue  # non-empty (leftover tmp files) or gone
        return removed

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(root={str(self.root)!r})"
