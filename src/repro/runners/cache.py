"""On-disk result cache for campaign points.

Every simulated point is stored as one small JSON file keyed by the
content hash of its point spec (simulator kind + full parameters + seed),
so re-running a campaign only computes points whose spec actually changed.
Files live under ``~/.cache/repro`` by default; override with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``.

The cache is strictly a performance layer: a corrupted, truncated or
version-mismatched entry reads as a miss and the point is recomputed.
Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written entry behind.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Bumped whenever the serialized payload layout or the semantics of a
#: cached metric change; old entries then read as misses.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """JSON-file cache of point results, sharded by key prefix."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self._write_failed = False

    def _path(self, key: str) -> Path:
        return self.root / "points" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on any miss."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        if "metrics" not in payload:
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically store ``payload`` (stamped with the cache version).

        Best-effort: the cache is strictly a performance layer, so an
        unwritable directory degrades to cache-off (with one warning)
        rather than failing the campaign that computed the result.
        """
        if self._write_failed:
            return
        record = dict(payload)
        record["version"] = CACHE_VERSION
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError as exc:
            self._write_failed = True
            warnings.warn(
                f"result cache at {self.root} is not writable ({exc}); "
                "continuing without caching",
                RuntimeWarning,
                stacklevel=2,
            )

    def has(self, key: str) -> bool:
        """Cheap existence probe (no parse/validation; ``get`` still may miss)."""
        return self._path(key).exists()

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(root={str(self.root)!r})"
