"""Ambient execution configuration and statistics for campaign runs.

Figure generators keep their ``runner(scale) -> ExperimentResult``
signature, so execution choices — parallelism, cache location, cache
bypass — flow through an ambient :class:`ExecutionConfig` instead of
being threaded through every call site.  The CLI installs one from its
``--jobs`` / ``--cache-dir`` / ``--no-cache`` flags; tests and benchmarks
scope overrides with the :func:`execution` context manager.

:class:`ExecutionStats` counts, per process, how many points were
actually simulated versus satisfied from the in-process memo or the disk
cache — the number the CLI prints so "a second invocation re-ran
nothing" is observable rather than assumed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.runners.failures import FailurePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> context)
    from repro.runners.faults import FaultPlan

#: Campaign progress callback: ``(completed, total, cached, computed)``
#: where ``completed = cached + computed`` counts delivered points.
ProgressCallback = Callable[[int, int, int, int], None]


@dataclass(frozen=True)
class ExecutionConfig:
    """How ``run_campaign`` should execute when not told explicitly."""

    #: Worker processes; 1 means in-process serial execution.
    jobs: int = 1
    #: Backend family: ``auto`` picks serial or pool from ``jobs``;
    #: ``serial`` / ``pool`` force those; ``sharded`` runs through the
    #: on-disk work queue (see :mod:`repro.runners.queue`).
    backend: str = "auto"
    #: Work-queue directory for the sharded backend; ``None`` uses a
    #: private temporary queue.  Point it at a shared directory (beside
    #: the cache) so ``pbbf-experiments worker`` processes on other
    #: machines can join the campaign.
    queue_dir: Optional[str] = None
    #: Result-cache tier: ``file`` (per-key JSON entries) or ``sqlite``
    #: (batched reads/writes through one WAL database, write-through to
    #: the file layer — see :mod:`repro.runners.sqlite_tier`).
    cache_tier: str = "file"
    #: Cache root; ``None`` selects the default (env var or ~/.cache/repro).
    cache_dir: Optional[str] = None
    #: Master switch for the on-disk cache.
    use_cache: bool = True
    #: Evict-on-insert size budget in MiB for the on-disk cache; ``None``
    #: falls back to ``$REPRO_CACHE_MAX_MB`` (no budget when unset).
    cache_max_size_mb: Optional[float] = None
    #: Route ideal-simulator broadcasts through the vectorized frontier
    #: kernel (bit-identical to the scalar loop; ``--no-fast-path`` and
    #: parity tests flip this off to exercise the reference path).
    fast_path: bool = True
    #: Route detailed-simulator runs through the seed-batched SoA kernel
    #: (bit-identical to the event-heap loop; ``--no-detailed-fast-path``
    #: and parity tests flip this off to exercise the reference path).
    detailed_fast_path: bool = True
    #: Campaign-level progress reporting: called in the *parent* process
    #: after the cache scan and then after every computed point, whatever
    #: backend runs it (the CLI's ``--progress`` installs a printer).
    progress: Optional[ProgressCallback] = None
    #: Retry/timeout/exhaustion envelope for campaign tasks; ``None``
    #: means the built-in :class:`~repro.runners.failures.FailurePolicy`
    #: defaults (3 retries, no timeout, raise on exhaustion).
    failure_policy: Optional[FailurePolicy] = None
    #: Deterministic fault injection for tests/CI; ``None`` falls back to
    #: ``$REPRO_FAULT_PLAN`` (see :mod:`repro.runners.faults`).
    fault_plan: Optional["FaultPlan"] = None
    #: Replay campaign journals before executing (the CLI's ``--resume``):
    #: results a killed invocation already persisted are reused instead of
    #: re-simulated.
    resume: bool = False
    #: Points a sharded-backend worker claims (and completes) per queue
    #: transaction.  1 keeps the original row-at-a-time protocol; larger
    #: blocks amortize the SQLite round-trip over many points — a
    #: mid-block worker death still re-queues only the unfinished leases
    #: (see ``WorkQueue.complete_and_claim``).
    lease_block: int = 1
    #: Store large flat-metrics payloads once in the content-addressed
    #: object store (``runners/object_store.py``) and reference them by
    #: hash from queue rows, journal lines and both cache tiers.  Off by
    #: default; readers resolve references regardless of this flag.
    object_store: bool = False
    #: Structured-telemetry directory (the CLI's ``--telemetry``); ``None``
    #: leaves the process-wide recorder alone (no-op unless
    #: ``$REPRO_TELEMETRY`` is set).  Workers inherit it — pool workers
    #: through initializer args, queue workers through the published queue
    #: config — and each process appends its own event file there.
    #: Telemetry never feeds back into execution: run keys and campaign
    #: outputs are bit-identical with it on, off, or failing mid-write.
    telemetry_dir: Optional[str] = None


@dataclass
class ExecutionStats:
    """Per-process counters of where campaign results came from."""

    computed: int = 0
    reused_memory: int = 0
    reused_disk: int = 0
    #: Results replayed from a campaign journal (``--resume``).
    reused_journal: int = 0
    #: Runs whose task exhausted its retry budget (counted parent-side).
    failed: int = 0
    #: Task retries scheduled (parent-side requeues and expired leases).
    retried: int = 0

    @property
    def reused(self) -> int:
        """Results served without running a simulator."""
        return self.reused_memory + self.reused_disk + self.reused_journal

    @property
    def total(self) -> int:
        """All results delivered."""
        return self.computed + self.reused

    def reset(self) -> None:
        """Zero every counter."""
        self.computed = 0
        self.reused_memory = 0
        self.reused_disk = 0
        self.reused_journal = 0
        self.failed = 0
        self.retried = 0


_config = ExecutionConfig()
_stats = ExecutionStats()


def get_execution() -> ExecutionConfig:
    """The currently-installed execution configuration."""
    return _config


def set_execution(**overrides) -> ExecutionConfig:
    """Replace fields of the ambient configuration; returns the new one."""
    global _config
    _config = replace(_config, **overrides)
    return _config


@contextmanager
def execution(**overrides) -> Iterator[ExecutionConfig]:
    """Scoped execution override, restoring the previous config on exit."""
    global _config
    previous = _config
    _config = replace(_config, **overrides)
    try:
        yield _config
    finally:
        _config = previous


def get_stats() -> ExecutionStats:
    """The process-wide result-provenance counters."""
    return _stats


def reset_stats() -> None:
    """Zero the process-wide counters (start of a CLI invocation)."""
    _stats.reset()
