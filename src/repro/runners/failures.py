"""Failure semantics for campaign execution.

The paper's broadcasts complete with dead nodes; this module lets a
campaign complete with dead *runs*.  A :class:`FailurePolicy` says how a
backend reacts when a task raises, crashes its worker, returns garbage or
hangs past its deadline — how many retries, how long to back off between
them, and what to do when retries are exhausted.  Every run that stays
failed after the policy is spent becomes a :class:`RunFailure` record on
the campaign result (or, with ``on_exhausted="raise"``, inside a
:class:`CampaignExecutionError`) instead of aborting the sweep.

Backoff delays are deterministic: each retry's jitter is drawn from a
named :func:`~repro.util.rng.fold_seed` stream keyed by the run's content
hash and the attempt number — the same common-random-numbers discipline
the simulators use, applied to the harness, so a replayed campaign
sleeps (and therefore schedules) identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.util.rng import fold_seed, hash_to_unit_interval

#: What a backend does with a run whose retries are exhausted.
ON_EXHAUSTED = ("raise", "skip", "degrade")

#: Root of the deterministic backoff-jitter stream.  A fixed constant —
#: not the campaign's base seed — so harness scheduling never perturbs,
#: and is never perturbed by, simulation seeding.
_BACKOFF_STREAM_SEED = 0x5EED_BACC


class TaskTimeoutError(RuntimeError):
    """A task exceeded the policy's per-task ``timeout_s``."""


class WorkerCrashError(RuntimeError):
    """A worker process died (segfault, OOM kill, injected crash)."""


class CorruptResultError(RuntimeError):
    """A task returned metrics that do not rebuild into the kind's schema."""


@dataclass(frozen=True)
class FailurePolicy:
    """How campaign execution reacts to a failing task.

    The policy is the retry envelope both backends share: the same runs
    fail, retry, back off and exhaust identically whether they execute
    serially or over a process pool.
    """

    #: Re-attempts after the first failure (0 disables retries).
    max_retries: int = 3
    #: Wall-clock budget per task attempt in seconds; ``None`` disables
    #: the deadline.  A batch task (one point, several grouped seeds) is
    #: one attempt.
    timeout_s: Optional[float] = None
    #: First-retry backoff in seconds; 0 retries immediately.
    backoff_base_s: float = 0.0
    #: Multiplier applied per additional retry (exponential backoff).
    backoff_factor: float = 2.0
    #: After ``max_retries`` failed re-attempts: ``raise`` a
    #: :class:`CampaignExecutionError` once the rest of the campaign has
    #: completed, ``skip`` the run (recorded in ``result.failures``), or
    #: ``degrade`` — one last in-parent attempt on the reference kernels
    #: with fault injection suppressed, skipping only if that also fails.
    on_exhausted: str = "raise"
    #: Pool rebuilds tolerated before the remaining tasks fall back to
    #: in-parent serial execution.  Kept at or below ``max_retries`` (a
    #: broken pool charges every in-flight task one attempt without
    #: knowing the guilty one, so this bound guarantees an innocent task
    #: can never exhaust purely through collateral pool deaths).
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.on_exhausted not in ON_EXHAUSTED:
            raise ValueError(
                f"on_exhausted must be one of {ON_EXHAUSTED}, "
                f"got {self.on_exhausted!r}"
            )
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic delay before retry ``attempt`` (1-based) of ``key``.

        Exponential slots with half-slot jitter: the delay lands in
        ``[slot/2, slot]`` where ``slot = base * factor**(attempt-1)``,
        jittered by the run's own named stream so concurrent retries
        decorrelate without a shared clock or RNG.
        """
        if self.backoff_base_s <= 0:
            return 0.0
        slot = self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1)
        jitter = hash_to_unit_interval(
            fold_seed(_BACKOFF_STREAM_SEED, "retry-backoff", key), attempt
        )
        delay = slot * (0.5 + 0.5 * jitter)
        # Observation only: the delay above is already fixed by (key,
        # attempt), so recording it cannot perturb scheduling.
        from repro.obs import get_recorder

        recorder = get_recorder()
        recorder.counter("retry.backoff_total_s", delay)
        recorder.event(
            "retry.backoff",
            key=key[:12],
            attempt=attempt,
            delay_s=round(delay, 4),
        )
        return delay


@dataclass(frozen=True)
class RunFailure:
    """One run that stayed failed after its retry policy was spent."""

    #: The run's content-hash key (same identity the cache/journal use).
    key: str
    kind: str
    params: Tuple[Tuple[str, Any], ...]
    seed: int
    #: Attempts consumed, the original try included.
    attempts: int
    #: Exception class name of the final attempt's failure.
    error_type: str
    #: Final attempt's error message.
    error: str

    def params_dict(self) -> Dict[str, Any]:
        """The failed point's parameters as a plain dict."""
        return dict(self.params)

    def describe(self) -> str:
        """One human-readable line for summaries and error messages."""
        point = ", ".join(f"{name}={value}" for name, value in self.params)
        return (
            f"{self.kind}[{point}] seed={self.seed}: "
            f"{self.error_type} after {self.attempts} attempt(s): {self.error}"
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form for the campaign journal."""
        return {
            "key": self.key,
            "kind": self.kind,
            "params": self.params_dict(),
            "seed": self.seed,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "error": self.error,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunFailure":
        """Rebuild a record from its journal form."""
        return cls(
            key=str(payload["key"]),
            kind=str(payload["kind"]),
            params=tuple(sorted(dict(payload.get("params", {})).items())),
            seed=int(payload["seed"]),
            attempts=int(payload.get("attempts", 1)),
            error_type=str(payload.get("error_type", "Exception")),
            error=str(payload.get("error", "")),
        )


class CampaignExecutionError(RuntimeError):
    """Raised (``on_exhausted="raise"``) once a campaign finishes with
    runs still failed — after every other run has completed and been
    persisted, so the failures cost only themselves."""

    def __init__(self, failures: Sequence[RunFailure]) -> None:
        self.failures: Tuple[RunFailure, ...] = tuple(failures)
        lines = "\n  ".join(failure.describe() for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} campaign run(s) failed after retries:\n"
            f"  {lines}"
        )
