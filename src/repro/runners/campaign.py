"""``run_campaign``: execute a spec through memo, cache and backend.

The pipeline for every run of a spec:

1. **in-process memo** — results already materialised this process;
2. **disk cache** — JSON entries keyed by the run's content hash;
3. **backend** — whatever is left is simulated, serially or fanned out
   over a process pool, then written back to both layers.

Results are returned as a :class:`CampaignResult`, which resolves points
by parameter values (not enumeration position), so callers read metrics
the same way regardless of which layer produced them.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.runners.backends import ProcessPoolBackend, SerialBackend
from repro.runners.cache import ResultCache
from repro.runners.context import ProgressCallback, get_execution, get_stats
from repro.runners.points import metrics_from_dict, metrics_to_dict
from repro.runners.spec import CampaignRun, CampaignSpec, run_key

#: Results materialised in this process, keyed by run content hash.  This
#: is what lets several figures share one campaign's points without
#: re-simulating, whatever backend produced them.
_MEMO: Dict[str, Any] = {}


def clear_memo() -> None:
    """Drop every in-process campaign result (benchmarks, tests)."""
    _MEMO.clear()


def _execute_with_progress(
    backend: Any,
    pending: List[CampaignRun],
    reused: int,
    total: int,
    progress: Optional[ProgressCallback],
) -> List[Dict[str, Any]]:
    """Run the backend, streaming per-completion progress when possible.

    Both built-in backends accept an ``on_result`` completion tick;
    third-party backends that predate the hook (anything exposing only
    ``execute(runs)``) still work — the caller just sees one final
    progress call instead of a stream.
    """
    on_result = None
    if progress is not None:
        done = 0

        def on_result() -> None:
            nonlocal done
            done += 1
            progress(reused + done, total, reused, done)

    accepts_hook = False
    try:
        accepts_hook = "on_result" in inspect.signature(backend.execute).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        accepts_hook = False
    if on_result is not None and accepts_hook:
        return backend.execute(pending, on_result=on_result)
    flat_results = backend.execute(pending)
    if progress is not None:
        progress(reused + len(pending), total, reused, len(pending))
    return flat_results


def _payload_for(run: CampaignRun, metrics: Any) -> Dict[str, Any]:
    """The JSON cache payload for one materialised run."""
    return {
        "kind": run.kind,
        "params": run.params_dict(),
        "seed": run.seed,
        "metrics": metrics_to_dict(metrics),
    }


class CampaignResult:
    """Executed campaign: typed metrics for every run of the spec."""

    def __init__(
        self,
        spec: CampaignSpec,
        runs: List[CampaignRun],
        by_key: Dict[str, Any],
        computed: int,
        reused: int,
    ) -> None:
        self.spec = spec
        self.runs = runs
        self._by_key = by_key
        #: Points simulated by this call (vs served from memo/cache).
        self.computed = computed
        #: Points served without simulating in this call.
        self.reused = reused
        #: Post-processing outputs by hook name (see ``run_campaign``'s
        #: ``post_process``): derived artifacts — Pareto frontiers, knee
        #: selections, summaries — computed once per execution and carried
        #: with the results they were derived from.
        self.artifacts: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self.runs)

    def metrics(self, seed_index: int = 0, **overrides: Any):
        """The metrics bundle for one point (``overrides`` over fixed)."""
        params = self.spec.merge(overrides)
        seed = self.spec.point_seed(params, seed_index)
        key = run_key(self.spec.kind, params, seed)
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(
                f"campaign has no run for params={params} seed_index={seed_index}"
            ) from None

    def metrics_over_seeds(self, **overrides: Any) -> List[Any]:
        """The point's metrics bundles for every seed index, in order."""
        return [
            self.metrics(seed_index=index, **overrides)
            for index in range(self.spec.n_seeds)
        ]

    def points(self) -> List[Dict[str, Any]]:
        """Every distinct parameter point of the campaign, in spec order."""
        return self.spec.points()

    def seed_metric_values(
        self, metric: Callable[[Any], Optional[float]], **overrides: Any
    ) -> List[float]:
        """The point's per-seed ``metric`` values, ``None`` runs skipped.

        The raw samples behind :meth:`mean_metric` — what the analysis
        layer's bootstrap resampling draws from.
        """
        return [
            value
            for value in (
                metric(bundle) for bundle in self.metrics_over_seeds(**overrides)
            )
            if value is not None
        ]

    def mean_metric(
        self, metric: Callable[[Any], Optional[float]], **overrides: Any
    ) -> Optional[float]:
        """Mean of ``metric`` over the point's seeds, skipping ``None``.

        Mirrors the paper's averaging: runs where a metric is undefined
        (e.g. no 5-hop nodes in that deployment) are skipped, and the
        result is ``None`` when every run skips.
        """
        values = [
            value
            for value in (
                metric(bundle) for bundle in self.metrics_over_seeds(**overrides)
            )
            if value is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CampaignResult({self.spec!r}, runs={len(self.runs)}, "
            f"computed={self.computed}, reused={self.reused})"
        )


def run_campaign(
    spec: CampaignSpec,
    jobs: Optional[int] = None,
    cache: Optional[Union[ResultCache, str]] = None,
    use_cache: Optional[bool] = None,
    backend: Optional[Any] = None,
    progress: Optional[ProgressCallback] = None,
    post_process: Optional[Mapping[str, Callable[["CampaignResult"], Any]]] = None,
) -> CampaignResult:
    """Execute every run of ``spec`` and return its results.

    Parameters left ``None`` fall back to the ambient
    :class:`~repro.runners.context.ExecutionConfig` (which the CLI sets
    from its flags).  ``cache`` accepts a ready :class:`ResultCache` or a
    directory path; ``backend`` overrides the jobs-based choice entirely
    (any object with ``execute(runs) -> list[dict]``).  ``progress`` is
    called as ``progress(completed, total, cached, computed)`` once after
    the cache scan and then after every computed point (both built-in
    backends stream per-run completions; a custom backend without the
    ``on_result`` hook degrades to one final call).

    ``post_process`` maps artifact names to hooks run *after* every point
    has materialised; each hook receives the finished
    :class:`CampaignResult` and its return value lands in
    ``result.artifacts[name]``.  Hooks run in sorted-name order (so
    artifact production is deterministic) and may read earlier hooks'
    outputs from ``result.artifacts`` — the analysis layer chains
    frontier extraction and knee selection this way.
    """
    config = get_execution()
    stats = get_stats()
    if jobs is None:
        jobs = config.jobs
    if use_cache is None:
        use_cache = config.use_cache
    if progress is None:
        progress = config.progress
    store: Optional[ResultCache] = None
    if use_cache:
        if isinstance(cache, ResultCache):
            store = cache
        elif cache is not None:
            store = ResultCache(cache, max_size_mb=config.cache_max_size_mb)
        else:
            store = ResultCache(
                config.cache_dir, max_size_mb=config.cache_max_size_mb
            )

    runs = spec.runs()
    by_key: Dict[str, Any] = {}
    pending: List[CampaignRun] = []
    pending_keys = set()
    reused = 0
    for run in runs:
        if run.key in by_key or run.key in pending_keys:
            continue  # duplicate point within the spec
        if run.key in _MEMO:
            metrics = _MEMO[run.key]
            by_key[run.key] = metrics
            stats.reused_memory += 1
            reused += 1
            if store is not None and not store.has(run.key):
                # Backfill: a result computed before this cache directory
                # was configured must still survive the process.
                store.put(run.key, _payload_for(run, metrics))
            continue
        if store is not None:
            payload = store.get(run.key)
            if payload is not None:
                try:
                    metrics = metrics_from_dict(spec.kind, payload["metrics"])
                except TypeError:
                    # Metrics schema drifted without a CACHE_VERSION bump:
                    # honour the cache contract and treat it as a miss.
                    metrics = None
                if metrics is not None:
                    _MEMO[run.key] = metrics
                    by_key[run.key] = metrics
                    stats.reused_disk += 1
                    reused += 1
                    continue
        pending.append(run)
        pending_keys.add(run.key)

    total = reused + len(pending)
    if progress is not None:
        progress(reused, total, reused, 0)

    if pending:
        if backend is None:
            backend = (
                ProcessPoolBackend(jobs) if jobs and jobs > 1 else SerialBackend()
            )
        flat_results = _execute_with_progress(
            backend, pending, reused, total, progress
        )
        if len(flat_results) != len(pending):
            raise RuntimeError(
                f"backend returned {len(flat_results)} results "
                f"for {len(pending)} runs"
            )
        for run, flat in zip(pending, flat_results):
            metrics = metrics_from_dict(spec.kind, flat)
            _MEMO[run.key] = metrics
            by_key[run.key] = metrics
            if store is not None:
                store.put(run.key, _payload_for(run, metrics))
        stats.computed += len(pending)

    result = CampaignResult(
        spec=spec,
        runs=runs,
        by_key=by_key,
        computed=len(pending),
        reused=reused,
    )
    if post_process:
        for name in sorted(post_process):
            result.artifacts[name] = post_process[name](result)
    return result
