"""``run_campaign``: execute a spec through memo, cache and backend.

The pipeline for every run of a spec:

1. **in-process memo** — results already materialised this process;
2. **campaign journal** — with ``resume=True``, results a killed
   invocation already journaled (see :mod:`repro.runners.journal`);
3. **disk cache** — JSON entries keyed by the run's content hash;
4. **backend** — whatever is left is simulated, serially or fanned out
   over a process pool, under the ambient
   :class:`~repro.runners.failures.FailurePolicy`.

Results stream back: each computed run is written to the cache *and*
the journal as it completes, so an interrupted campaign keeps every
finished point.  Runs that exhaust their retries become
:class:`~repro.runners.failures.RunFailure` records on the result (or a
:class:`~repro.runners.failures.CampaignExecutionError` under the
default ``on_exhausted="raise"``) — the campaign, like the paper's
broadcasts, completes around its dead members.

Results are returned as a :class:`CampaignResult`, which resolves points
by parameter values (not enumeration position), so callers read metrics
the same way regardless of which layer produced them.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs import ensure_recorder
from repro.runners.backends import ProcessPoolBackend, SerialBackend
from repro.runners.cache import ResultCache
from repro.runners.context import ProgressCallback, get_execution, get_stats
from repro.runners.failures import FailurePolicy, RunFailure
from repro.runners.journal import CampaignJournal
from repro.runners.points import metrics_from_dict, metrics_to_dict
from repro.runners.queue import ShardedBackend
from repro.runners.spec import CampaignRun, CampaignSpec, run_key

#: Per-point streaming hook: ``on_point(run, metrics)`` fires in the
#: parent for every unique run of the campaign — reused points during
#: the scan, computed points as each completes (before it is visible in
#: the returned result) — so frontiers and figure panels can render
#: incrementally.  Failed runs never fire it.
OnPoint = Callable[[CampaignRun, Any], None]

#: Results materialised in this process, keyed by run content hash.  This
#: is what lets several figures share one campaign's points without
#: re-simulating, whatever backend produced them.
_MEMO: Dict[str, Any] = {}


def clear_memo() -> None:
    """Drop every in-process campaign result (benchmarks, tests)."""
    _MEMO.clear()


def _execute_with_progress(
    backend: Any,
    pending: List[CampaignRun],
    reused: int,
    total: int,
    progress: Optional[ProgressCallback],
    policy: FailurePolicy,
    persist_run: Callable[[int, Dict[str, Any]], None],
    note_failure: Callable[[RunFailure], None],
) -> List[Optional[Dict[str, Any]]]:
    """Run the backend, streaming persistence and progress when possible.

    Both built-in backends accept the ``on_result`` / ``on_failure`` /
    ``failure_policy`` hooks; third-party backends that predate them
    (anything exposing only ``execute(runs)``) still work — results are
    persisted after the batch and the caller sees one final progress
    call instead of a stream.
    """
    done = 0

    def on_result(index: int, flat: Dict[str, Any]) -> None:
        nonlocal done
        # Persist before reporting: a kill right after the progress line
        # must never lose the point the line just claimed.
        persist_run(index, flat)
        done += 1
        if progress is not None:
            progress(reused + done, total, reused, done)

    try:
        parameters = inspect.signature(backend.execute).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        parameters = {}
    if "on_result" in parameters:
        kwargs: Dict[str, Any] = {"on_result": on_result}
        if "failure_policy" in parameters:
            kwargs["failure_policy"] = policy
        if "on_failure" in parameters:
            kwargs["on_failure"] = note_failure
        return backend.execute(pending, **kwargs)
    flat_results = backend.execute(pending)
    if len(flat_results) != len(pending):
        raise RuntimeError(
            f"backend returned {len(flat_results)} results "
            f"for {len(pending)} runs"
        )
    for index, flat in enumerate(flat_results):
        if flat is not None:
            persist_run(index, flat)
    if progress is not None:
        progress(reused + len(pending), total, reused, len(pending))
    return flat_results


def _payload_for(run: CampaignRun, metrics: Any) -> Dict[str, Any]:
    """The JSON cache payload for one materialised run."""
    return {
        "kind": run.kind,
        "params": run.params_dict(),
        "seed": run.seed,
        "metrics": metrics_to_dict(metrics),
    }


class CampaignResult:
    """Executed campaign: typed metrics for every run of the spec."""

    def __init__(
        self,
        spec: CampaignSpec,
        runs: List[CampaignRun],
        by_key: Dict[str, Any],
        computed: int,
        reused: int,
        failures: Sequence[RunFailure] = (),
    ) -> None:
        self.spec = spec
        self.runs = runs
        self._by_key = by_key
        #: Points simulated by this call (vs served from memo/cache).
        self.computed = computed
        #: Points served without simulating in this call.
        self.reused = reused
        #: Runs that exhausted their retry policy (``on_exhausted`` of
        #: ``skip`` — or ``degrade`` whose last-resort attempt also
        #: failed); empty for a fully-successful campaign.
        self.failures: tuple = tuple(failures)
        self._failed_keys = {failure.key for failure in self.failures}
        #: Post-processing outputs by hook name (see ``run_campaign``'s
        #: ``post_process``): derived artifacts — Pareto frontiers, knee
        #: selections, summaries — computed once per execution and carried
        #: with the results they were derived from.
        self.artifacts: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self.runs)

    def metrics(self, seed_index: int = 0, **overrides: Any):
        """The metrics bundle for one point (``overrides`` over fixed)."""
        params = self.spec.merge(overrides)
        seed = self.spec.point_seed(params, seed_index)
        key = run_key(self.spec.kind, params, seed)
        try:
            return self._by_key[key]
        except KeyError:
            if key in self._failed_keys:
                failure = next(f for f in self.failures if f.key == key)
                raise KeyError(
                    f"campaign run failed for params={params} "
                    f"seed_index={seed_index}: {failure.error_type} after "
                    f"{failure.attempts} attempt(s): {failure.error}"
                ) from None
            raise KeyError(
                f"campaign has no run for params={params} seed_index={seed_index}"
            ) from None

    def metrics_over_seeds(self, **overrides: Any) -> List[Any]:
        """The point's metrics bundles for every seed index, in order.

        Seeds whose run *failed* (see :attr:`failures`) are skipped —
        the same convention :meth:`mean_metric` applies to undefined
        metrics, mirroring the paper's averaging over surviving runs.
        """
        params = self.spec.merge(overrides)
        bundles: List[Any] = []
        for index in range(self.spec.n_seeds):
            seed = self.spec.point_seed(params, index)
            if run_key(self.spec.kind, params, seed) in self._failed_keys:
                continue
            bundles.append(self.metrics(seed_index=index, **overrides))
        return bundles

    def points(self) -> List[Dict[str, Any]]:
        """Every distinct parameter point of the campaign, in spec order."""
        return self.spec.points()

    def seed_metric_values(
        self, metric: Callable[[Any], Optional[float]], **overrides: Any
    ) -> List[float]:
        """The point's per-seed ``metric`` values, ``None`` runs skipped.

        The raw samples behind :meth:`mean_metric` — what the analysis
        layer's bootstrap resampling draws from.
        """
        return [
            value
            for value in (
                metric(bundle) for bundle in self.metrics_over_seeds(**overrides)
            )
            if value is not None
        ]

    def mean_metric(
        self, metric: Callable[[Any], Optional[float]], **overrides: Any
    ) -> Optional[float]:
        """Mean of ``metric`` over the point's seeds, skipping ``None``.

        Mirrors the paper's averaging: runs where a metric is undefined
        (e.g. no 5-hop nodes in that deployment) are skipped, and the
        result is ``None`` when every run skips.
        """
        values = [
            value
            for value in (
                metric(bundle) for bundle in self.metrics_over_seeds(**overrides)
            )
            if value is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CampaignResult({self.spec!r}, runs={len(self.runs)}, "
            f"computed={self.computed}, reused={self.reused}, "
            f"failures={len(self.failures)})"
        )


def run_campaign(
    spec: CampaignSpec,
    jobs: Optional[int] = None,
    cache: Optional[Union[ResultCache, str, Path, Any]] = None,
    use_cache: Optional[bool] = None,
    backend: Optional[Any] = None,
    progress: Optional[ProgressCallback] = None,
    post_process: Optional[Mapping[str, Callable[["CampaignResult"], Any]]] = None,
    failure_policy: Optional[FailurePolicy] = None,
    resume: Optional[bool] = None,
    journal: Optional[Union[CampaignJournal, str, Path, bool]] = None,
    on_point: Optional[OnPoint] = None,
) -> CampaignResult:
    """Execute every run of ``spec`` and return its results.

    Parameters left ``None`` fall back to the ambient
    :class:`~repro.runners.context.ExecutionConfig` (which the CLI sets
    from its flags).  ``cache`` accepts a ready :class:`ResultCache` (or
    any object with its ``get``/``put`` protocol, e.g. a
    :class:`~repro.runners.sqlite_tier.SQLiteCacheTier`) or a directory
    path; ``backend`` overrides the config-based choice entirely (any
    object with ``execute(runs) -> list[dict]``; the ambient
    ``config.backend`` otherwise picks serial, pool or sharded).
    ``progress`` is called as ``progress(completed, total, cached,
    computed)`` once after the cache scan and then after every computed
    point (all built-in backends stream per-run completions; a custom
    backend without the ``on_result`` hook degrades to one final call).

    ``on_point`` streams typed results: it fires in the parent as
    ``on_point(run, metrics)`` for every unique run of the campaign —
    reused points during the scan, computed points as each completes,
    whatever backend runs them — and every fired point is visible
    before the final :class:`CampaignResult` returns, so frontiers and
    figure panels can render incrementally (see
    :class:`repro.analysis.StreamingFrontier`).  Failed runs fire the
    journal/failure paths instead, never ``on_point``.

    ``failure_policy`` is the retry/timeout/exhaustion envelope (see
    :class:`~repro.runners.failures.FailurePolicy`; the CLI sets it from
    ``--max-retries`` / ``--task-timeout-s`` / ``--on-exhausted``).
    Under the default ``on_exhausted="raise"`` a run that stays failed
    raises :class:`~repro.runners.failures.CampaignExecutionError` *after*
    the rest of the campaign completed and persisted; with ``skip`` or
    ``degrade`` the campaign returns with ``result.failures`` populated.

    While the campaign executes, completed runs are appended to a
    crash-safe ``journal`` (default: ``<cache root>/journal/<spec
    hash>.jsonl``; pass ``False`` to disable).  ``resume=True`` (or the
    CLI's ``--resume``) replays that journal first, so a re-invoked
    campaign simulates only what its killed predecessor never finished.
    A campaign that completes with zero failures discards its journal —
    the cache owns the results from then on.

    ``post_process`` maps artifact names to hooks run *after* every point
    has materialised; each hook receives the finished
    :class:`CampaignResult` and its return value lands in
    ``result.artifacts[name]``.  Hooks run in sorted-name order (so
    artifact production is deterministic) and may read earlier hooks'
    outputs from ``result.artifacts`` — the analysis layer chains
    frontier extraction and knee selection this way.
    """
    config = get_execution()
    stats = get_stats()
    # Telemetry observes the pipeline; nothing it records (wall-clock
    # timestamps included) flows back into keys, seeds or results.
    recorder = ensure_recorder(config.telemetry_dir)
    if jobs is None:
        jobs = config.jobs
    if use_cache is None:
        use_cache = config.use_cache
    if progress is None:
        progress = config.progress
    if resume is None:
        resume = config.resume
    policy = failure_policy
    if policy is None:
        policy = config.failure_policy
    if policy is None:
        policy = FailurePolicy()
    store: Optional[Any] = None
    if use_cache:
        if cache is not None and not isinstance(cache, (str, Path)):
            # A ready store: ResultCache, SQLiteCacheTier, or anything
            # speaking the get/put protocol.
            store = cache
        else:
            cache_dir = cache if cache is not None else config.cache_dir
            if config.cache_tier == "sqlite":
                from repro.runners.sqlite_tier import SQLiteCacheTier

                store = SQLiteCacheTier(
                    cache_dir,
                    max_size_mb=config.cache_max_size_mb,
                    object_store=config.object_store,
                )
            else:
                store = ResultCache(
                    cache_dir,
                    max_size_mb=config.cache_max_size_mb,
                    object_store=config.object_store,
                )

    journal_store: Optional[CampaignJournal] = None
    if isinstance(journal, CampaignJournal):
        journal_store = journal
    elif isinstance(journal, (str, Path)):
        journal_store = CampaignJournal(journal)
    elif journal is None and store is not None:
        # Share the cache's object store so journal lines reference the
        # same stored payloads (markers still resolve when disabled).
        journal_store = CampaignJournal.for_campaign(
            store.root,
            spec.content_hash(),
            object_store=(
                getattr(store, "objects", None) if config.object_store else None
            ),
        )
    # journal=False (or no cache to sit beside) disables journaling.

    runs = spec.runs()
    recorder.event(
        "campaign.begin",
        spec=spec.content_hash()[:12],
        kind=spec.kind,
        n_runs=len(runs),
    )

    journal_hits: Dict[str, Dict[str, Any]] = {}
    if resume and journal_store is not None and journal_store.exists:
        journal_hits = journal_store.load().results

    by_key: Dict[str, Any] = {}
    pending: List[CampaignRun] = []
    probe: List[CampaignRun] = []
    probe_keys = set()
    reused = 0

    def reuse(run: CampaignRun, metrics: Any) -> None:
        nonlocal reused
        by_key[run.key] = metrics
        reused += 1
        if on_point is not None:
            on_point(run, metrics)

    for run in runs:
        if run.key in by_key or run.key in probe_keys:
            continue  # duplicate point within the spec
        if run.key in _MEMO:
            metrics = _MEMO[run.key]
            stats.reused_memory += 1
            reuse(run, metrics)
            if store is not None and not store.has(run.key):
                # Backfill: a result computed before this cache directory
                # was configured must still survive the process.
                store.put(run.key, _payload_for(run, metrics))
            continue
        if run.key in journal_hits:
            try:
                metrics = metrics_from_dict(spec.kind, journal_hits[run.key])
            except TypeError:
                metrics = None  # journal from a different metrics schema
            if metrics is not None:
                _MEMO[run.key] = metrics
                stats.reused_journal += 1
                reuse(run, metrics)
                if store is not None and not store.has(run.key):
                    # The predecessor died between journal append and
                    # cache write (or the cache was purged since).
                    store.put(run.key, _payload_for(run, metrics))
                continue
        probe.append(run)
        probe_keys.add(run.key)

    # Disk probes batch: the SQLite tier answers a warm million-point
    # campaign in a handful of queries (the file layer's get_many is the
    # same per-key loop it always ran).
    payloads: Dict[str, Dict[str, Any]] = {}
    if store is not None and probe:
        keys = [run.key for run in probe]
        with recorder.span("phase.cache-get", keys=len(keys)):
            if hasattr(store, "get_many"):
                payloads = store.get_many(keys)
            else:  # a minimal third-party store
                payloads = {
                    key: payload
                    for key in keys
                    if (payload := store.get(key)) is not None
                }
    for run in probe:
        payload = payloads.get(run.key)
        if payload is not None:
            try:
                metrics = metrics_from_dict(spec.kind, payload["metrics"])
            except TypeError:
                # Metrics schema drifted without a CACHE_VERSION bump:
                # honour the cache contract and treat it as a miss.
                metrics = None
            if metrics is not None:
                _MEMO[run.key] = metrics
                stats.reused_disk += 1
                reuse(run, metrics)
                continue
        pending.append(run)

    total = reused + len(pending)
    if progress is not None:
        progress(reused, total, reused, 0)

    failures: List[RunFailure] = []
    if pending:
        if backend is None:
            choice = config.backend
            if choice == "sharded":
                backend = ShardedBackend(
                    jobs or 0,
                    queue_dir=config.queue_dir,
                    lease_block=config.lease_block,
                )
            elif choice == "serial":
                backend = SerialBackend()
            elif choice == "pool":
                backend = ProcessPoolBackend(jobs)
            else:  # "auto": the historical jobs-based choice
                backend = (
                    ProcessPoolBackend(jobs)
                    if jobs and jobs > 1
                    else SerialBackend()
                )

        def persist_run(index: int, flat: Dict[str, Any]) -> None:
            run = pending[index]
            metrics = metrics_from_dict(spec.kind, flat)
            _MEMO[run.key] = metrics
            by_key[run.key] = metrics
            stats.computed += 1
            if store is not None:
                with recorder.span("phase.cache-put"):
                    store.put(run.key, _payload_for(run, metrics))
            if journal_store is not None:
                journal_store.append_result(run.key, run.kind, run.seed, flat)
            if on_point is not None:
                on_point(run, metrics)

        def note_failure(failure: RunFailure) -> None:
            failures.append(failure)
            if journal_store is not None:
                journal_store.append_failure(failure)

        try:
            flat_results = _execute_with_progress(
                backend, pending, reused, total, progress, policy,
                persist_run, note_failure,
            )
        except BaseException:
            # Interrupted (or raising on exhausted retries): everything
            # completed so far is already in cache + journal; flush the
            # journal so ``--resume`` replays it.
            if journal_store is not None:
                journal_store.close()
            raise
        delivered = sum(1 for flat in flat_results if flat is not None)
        if delivered + len(failures) < len(pending):
            raise RuntimeError(
                f"backend returned {delivered} results and "
                f"{len(failures)} failures for {len(pending)} runs"
            )

    if journal_store is not None:
        if failures:
            # Keep the journal: a later --resume (or a rerun after the
            # flaky cause is fixed) picks up the completed majority.
            journal_store.close()
        else:
            journal_store.discard()

    recorder.event(
        "campaign.end",
        spec=spec.content_hash()[:12],
        computed=len(pending) - len(failures),
        reused=reused,
        failures=len(failures),
    )
    recorder.flush()
    result = CampaignResult(
        spec=spec,
        runs=runs,
        by_key=by_key,
        computed=len(pending) - len(failures),
        reused=reused,
        failures=failures,
    )
    if post_process:
        for name in sorted(post_process):
            result.artifacts[name] = post_process[name](result)
    return result
