"""Content-addressed payload store for campaign-scale metric blobs.

Million-point campaigns repeat the same large flat-metrics dictionaries
across queue result rows, journal lines and both cache tiers.  Storing
each distinct payload once under its content hash keeps every one of
those surfaces O(reference) instead of O(payload): rows carry a tiny
``{"__object__": "<sha256>"}`` marker and readers resolve it back to
the original dict on the way out.

Design rules, in order of importance:

* **Readers always resolve.**  Decoding a marker never depends on any
  configuration flag, so payloads written with the store enabled stay
  readable after it is switched off (and vice versa).
* **Writers are gated.**  Markers are only *produced* when the caller
  opted in (``--object-store`` / ``ExecutionConfig.object_store``) and
  the encoded payload crosses :func:`default_object_threshold` — small
  dicts are never indirected, so the hot path for typical campaigns is
  untouched and ``CACHE_VERSION`` does not change.
* **Dangling references degrade to a miss.**  A swept or corrupt object
  makes :meth:`ObjectStore.resolve` return ``None`` and the caller
  treats the row as absent — the point is recomputed and re-stored, the
  same degrade-to-recompute contract the cache tiers already follow.

Objects live under ``<root>/objects/<sha[:2]>/<sha>.json`` next to the
cache's ``points/`` shards, are written atomically (tmp + rename) and
verified against their hash on read, so a torn write can never serve a
wrong payload for a key.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from repro.obs import get_recorder

#: Key of the single-entry marker dict that replaces a stored payload.
MARKER_KEY = "__object__"

#: Payloads whose canonical JSON is at least this many bytes are stored
#: once under their hash; anything smaller is kept inline.
DEFAULT_THRESHOLD_BYTES = 2048

_REF_PATTERN = re.compile(r'"__object__"\s*:\s*"([0-9a-f]{64})"')


def default_object_threshold() -> int:
    """The inline-vs-store size threshold, in bytes.

    ``$REPRO_OBJECT_THRESHOLD`` overrides the default — handy for tests
    and for campaigns whose metrics are uniformly mid-sized.
    """
    raw = os.environ.get("REPRO_OBJECT_THRESHOLD")
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_THRESHOLD_BYTES


def object_marker_ref(value: Any) -> Optional[str]:
    """The sha256 ref if ``value`` is a marker dict, else ``None``."""
    if (
        type(value) is dict
        and len(value) == 1
        and isinstance(value.get(MARKER_KEY), str)
    ):
        return value[MARKER_KEY]
    return None


def refs_in_text(text: str) -> Set[str]:
    """Every object ref mentioned in a serialized row/entry/journal line.

    Textual scanning (rather than parsing) keeps liveness sweeps cheap
    over thousands of entries; the marker shape is distinctive enough
    that false positives only ever *keep* an object alive, never sweep
    a live one.
    """
    return set(_REF_PATTERN.findall(text))


class ObjectStore:
    """Content-addressed JSON blobs under ``<root>/objects/``.

    The store is safe to share between the file cache, the SQLite tier
    and the work queue: objects are immutable and named by content, so
    concurrent writers of the same payload race benignly to an
    identical file.  OSError on write degrades to inline storage (the
    caller keeps the original payload); OSError on read degrades to a
    miss.
    """

    def __init__(
        self, root: Optional[Path] = None, threshold_bytes: Optional[int] = None
    ) -> None:
        if root is None:
            from repro.runners.cache import default_cache_dir

            root = default_cache_dir()
        self.root = Path(root)
        self.dir = self.root / "objects"
        self.threshold_bytes = (
            default_object_threshold()
            if threshold_bytes is None
            else int(threshold_bytes)
        )

    # ------------------------------------------------------------------
    # Encode / resolve
    # ------------------------------------------------------------------
    def encode(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Replace ``payload`` with a marker when it is worth storing.

        Returns the original dict unchanged when it is below the
        threshold, already a marker, or the store write degraded — the
        caller can test ``encode(x) is x`` to learn whether a marker
        was produced.
        """
        if object_marker_ref(payload) is not None:
            return payload
        text = json.dumps(payload, sort_keys=True)
        if len(text) < self.threshold_bytes:
            return payload
        ref = self.put_text(text)
        if ref is None:
            return payload
        return {MARKER_KEY: ref}

    def resolve(self, value: Any) -> Optional[Any]:
        """Load a marker back into its payload.

        Non-marker values pass through unchanged; a marker resolves to
        the stored dict, or to ``None`` when the object is missing or
        fails hash verification (the caller treats that as a miss).
        """
        ref = object_marker_ref(value)
        if ref is None:
            return value
        text = self.get_text(ref)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        get_recorder().counter("objstore.hit")
        return payload

    # ------------------------------------------------------------------
    # Raw text I/O
    # ------------------------------------------------------------------
    def _path(self, ref: str) -> Path:
        return self.dir / ref[:2] / f"{ref}.json"

    def put_text(self, text: str) -> Optional[str]:
        """Store canonical JSON ``text``, returning its ref.

        Idempotent: an existing object with the same hash is a dedup
        hit and nothing is written.  Returns ``None`` when the write
        degrades (read-only or full disk) so the caller keeps the
        payload inline.
        """
        recorder = get_recorder()
        ref = hashlib.sha256(text.encode("utf-8")).hexdigest()
        path = self._path(ref)
        if path.exists():
            recorder.counter("objstore.dedup")
            return ref
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return None
        recorder.counter("objstore.put")
        return ref

    def get_text(self, ref: str) -> Optional[str]:
        """The stored text for ``ref``, hash-verified, or ``None``."""
        try:
            text = self._path(ref).read_text(encoding="utf-8")
        except OSError:
            return None
        if hashlib.sha256(text.encode("utf-8")).hexdigest() != ref:
            return None
        return text

    def has(self, ref: str) -> bool:
        return self._path(ref).exists()

    # ------------------------------------------------------------------
    # Accounting and maintenance
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Whether any objects have ever been stored under this root."""
        return self.dir.is_dir()

    def object_paths(self) -> Iterable[Path]:
        if not self.dir.is_dir():
            return
        yield from sorted(self.dir.glob("*/*.json"))

    def stats(self) -> Tuple[int, int]:
        """``(n_objects, total_bytes)`` currently stored."""
        count = 0
        total = 0
        for path in self.object_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        return count, total

    def sweep(self, keep: Set[str]) -> Tuple[int, int]:
        """Unlink every object whose ref is not in ``keep``.

        Returns ``(n_swept, bytes_swept)``.  Shard directories left
        empty are removed too, so a fully swept store leaves no trace.
        """
        swept = 0
        swept_bytes = 0
        for path in self.object_paths():
            if path.stem in keep:
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            swept += 1
            swept_bytes += size
        if self.dir.is_dir():
            for shard in sorted(self.dir.iterdir()):
                try:
                    shard.rmdir()
                except OSError:
                    pass
            try:
                self.dir.rmdir()
            except OSError:
                pass
        return swept, swept_bytes
