"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a parameter sweep without saying how to
execute it: which simulator *kind* to run (``ideal``, ``detailed`` or
``percolation``), the swept axes (cartesian product), fixed parameters
shared by every point, explicit extra points (the PSM / NO PSM baseline
corners that no product expresses), and how many independent seeds each
point gets.

Two properties make specs the unit of reproducibility and caching:

* **deterministic seeds** — every run's seed derives from the spec's base
  seed and the point's *content* (never its enumeration position), so
  results are bit-identical regardless of execution order or backend;
* **content hashing** — each run has a stable key hashing its kind, full
  parameters and seed, which the on-disk cache uses to recognise
  already-computed points across invocations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.runners.cache import CACHE_VERSION
from repro.scenarios import ScenarioSpec
from repro.util.canonical import canonical_json
from repro.util.rng import fold_seed

#: The simulator families the point evaluators know how to run.
KINDS = ("ideal", "detailed", "percolation")

#: Default root seed (shared with :class:`repro.experiments.scale.Scale`).
DEFAULT_BASE_SEED = 20050610

ParamValue = Any
Params = Dict[str, ParamValue]


def _normalize_param(value: ParamValue) -> ParamValue:
    """Normalise one parameter value into its hashable wire form.

    :class:`~repro.scenarios.ScenarioSpec` values collapse to their
    canonical token string, so scenario axes hash, seed-fold, pickle and
    cache exactly like any scalar axis.
    """
    if isinstance(value, ScenarioSpec):
        return value.token
    return value


def run_key(kind: str, params: Mapping[str, ParamValue], seed: int) -> str:
    """Content hash identifying one (kind, parameters, seed) run."""
    payload = canonical_json(
        {"kind": kind, "params": dict(params), "seed": seed, "version": CACHE_VERSION}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CampaignRun:
    """One executable unit of a campaign: a fully-merged point + seed."""

    kind: str
    params: Tuple[Tuple[str, ParamValue], ...]
    seed_index: int
    seed: int
    key: str

    def params_dict(self) -> Params:
        """The point's parameters as a plain dict."""
        return dict(self.params)

    def describe(self) -> str:
        """One human-readable line (progress, failure and resume output)."""
        point = ", ".join(f"{name}={value}" for name, value in self.params)
        return f"{self.kind}[{point}] seed={self.seed}"


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep over one simulator kind.

    Build with :meth:`build`, which accepts plain mappings/sequences and
    normalises them into the hashable tuple form stored here.
    """

    kind: str
    #: Swept axes in declared order: ``((name, (v1, v2, ...)), ...)``.
    axes: Tuple[Tuple[str, Tuple[ParamValue, ...]], ...]
    #: Parameters shared by every point.
    fixed: Tuple[Tuple[str, ParamValue], ...] = ()
    #: Explicit points outside the product (each overrides ``fixed``).
    extra_points: Tuple[Tuple[Tuple[str, ParamValue], ...], ...] = ()
    #: Parameter names folded (in order) into each point's seed label.
    seed_params: Tuple[str, ...] = ()
    #: Independent seeds per point (the paper's "averaged over ten runs").
    n_seeds: int = 1
    base_seed: int = DEFAULT_BASE_SEED
    #: Append the seed index to the seed label; :meth:`build` forces this
    #: on whenever ``n_seeds > 1`` (identical seeds would be silent).
    seed_with_run_index: bool = field(default=False)

    @classmethod
    def build(
        cls,
        kind: str,
        axes: Mapping[str, Sequence[ParamValue]],
        fixed: Optional[Mapping[str, ParamValue]] = None,
        extra_points: Iterable[Mapping[str, ParamValue]] = (),
        seed_params: Sequence[str] = (),
        n_seeds: int = 1,
        base_seed: int = DEFAULT_BASE_SEED,
        seed_with_run_index: bool = False,
    ) -> "CampaignSpec":
        """Validate and normalise a spec from plain mappings."""
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        if n_seeds <= 0:
            raise ValueError(f"n_seeds must be > 0, got {n_seeds}")
        # Multiple seeds are only meaningful if the index reaches the seed
        # label; otherwise every "independent run" would silently be the
        # same simulation replicated n_seeds times.
        seed_with_run_index = seed_with_run_index or n_seeds > 1
        axes_t = []
        for name, values in axes.items():
            values_t = tuple(_normalize_param(value) for value in values)
            if not values_t:
                raise ValueError(f"axis {name!r} has no values")
            axes_t.append((name, values_t))
        fixed_t = tuple(
            sorted((name, _normalize_param(value)) for name, value in (fixed or {}).items())
        )
        known = {name for name, _ in axes_t} | {name for name, _ in fixed_t}
        extras_t = []
        for extra in extra_points:
            unknown = set(extra) - known
            if unknown:
                raise ValueError(
                    f"extra point overrides unknown parameters {sorted(unknown)}"
                )
            extras_t.append(
                tuple(sorted((name, _normalize_param(value)) for name, value in extra.items()))
            )
        missing = set(seed_params) - known
        if missing:
            raise ValueError(f"seed_params reference unknown parameters {sorted(missing)}")
        return cls(
            kind=kind,
            axes=tuple(axes_t),
            fixed=fixed_t,
            extra_points=tuple(extras_t),
            seed_params=tuple(seed_params),
            n_seeds=n_seeds,
            base_seed=base_seed,
            seed_with_run_index=seed_with_run_index,
        )

    # -- point enumeration -------------------------------------------------

    def merge(self, overrides: Mapping[str, ParamValue]) -> Params:
        """Fixed parameters overlaid with ``overrides`` (a full point).

        Overrides are normalised like :meth:`build` inputs, so result
        lookups may pass :class:`~repro.scenarios.ScenarioSpec` objects
        where the stored point carries the token string.
        """
        merged: Params = dict(self.fixed)
        merged.update(
            (name, _normalize_param(value)) for name, value in overrides.items()
        )
        return merged

    def points(self) -> List[Params]:
        """Every point of the campaign: axis product, then extras.

        Points appearing more than once (an extra that coincides with a
        grid point) are deduplicated, keeping first occurrence order.
        """
        result: List[Params] = []
        seen = set()
        names = [name for name, _ in self.axes]
        for combo in product(*(values for _, values in self.axes)):
            point = self.merge(dict(zip(names, combo)))
            marker = canonical_json(point)
            if marker not in seen:
                seen.add(marker)
                result.append(point)
        for extra in self.extra_points:
            point = self.merge(dict(extra))
            marker = canonical_json(point)
            if marker not in seen:
                seen.add(marker)
                result.append(point)
        return result

    def point_seed(self, params: Mapping[str, ParamValue], seed_index: int = 0) -> int:
        """The deterministic seed for one (point, seed-index) run.

        The label folds the kind and the values of ``seed_params`` — point
        content only, so the seed is independent of enumeration order and
        identical to what :meth:`repro.experiments.scale.Scale.seed_for`
        produces for the same labels.
        """
        labels: List[object] = [self.kind]
        labels.extend(params[name] for name in self.seed_params)
        if self.seed_with_run_index:
            labels.append(seed_index)
        return fold_seed(self.base_seed, *labels)

    def runs(self) -> List[CampaignRun]:
        """Every executable run: each point at each seed index."""
        result: List[CampaignRun] = []
        for point in self.points():
            for seed_index in range(self.n_seeds):
                seed = self.point_seed(point, seed_index)
                result.append(
                    CampaignRun(
                        kind=self.kind,
                        params=tuple(sorted(point.items())),
                        seed_index=seed_index,
                        seed=seed,
                        key=run_key(self.kind, point, seed),
                    )
                )
        return result

    # -- identity ----------------------------------------------------------

    def content_hash(self) -> str:
        """Stable hash of the spec's full content (campaign identity)."""
        payload = canonical_json(
            {
                "kind": self.kind,
                "axes": [[name, list(values)] for name, values in sorted(self.axes)],
                "fixed": dict(self.fixed),
                "extra_points": sorted(
                    canonical_json(dict(extra)) for extra in self.extra_points
                ),
                "seed_params": list(self.seed_params),
                "n_seeds": self.n_seeds,
                "base_seed": self.base_seed,
                "seed_with_run_index": self.seed_with_run_index,
                "version": CACHE_VERSION,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def n_points(self) -> int:
        """Number of distinct parameter points."""
        return len(self.points())

    @property
    def n_runs(self) -> int:
        """Total runs (points x seeds), before dedup across extras."""
        return self.n_points * self.n_seeds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        axes = ", ".join(f"{name}[{len(values)}]" for name, values in self.axes)
        return (
            f"CampaignSpec(kind={self.kind!r}, axes=({axes}), "
            f"extras={len(self.extra_points)}, n_seeds={self.n_seeds})"
        )
