"""Seed-batched structure-of-arrays kernel for the detailed simulator.

The heap-loop :class:`~repro.detailed.simulator.DetailedSimulator` spends
the bulk of its time on beacon-interval *machinery*: two events per node
per BI (window open, Sleep-Decision-Handler) that every node executes at
schedule-determined instants regardless of traffic.  This kernel advances
**all seeds of a campaign point simultaneously**: per-node radio/energy/
PBBF state lives in numpy arrays of shape ``(n_nodes, n_seeds)`` and each
machinery instant is a handful of vectorized mask operations instead of
``n_nodes * n_seeds`` Python callbacks.  Sparse *traffic* (CSMA
contention, transmissions, receptions, application updates, node deaths)
runs per seed through a lean tuple-event heap that replaces the engine's
``EventHandle``/closure plumbing with direct dispatch.

Bit-identical parity with the heap loop is a hard contract (the figures
must not move by one ulp), which pins three design rules:

* **Float expressions are transcribed, not simplified.**  Machinery
  instants accumulate (``t + BI`` from the previous instant, exactly as
  self-rescheduling ``engine.schedule`` calls do) while gate times use
  the closed forms in :mod:`repro.mac.pbbf`; energy accumulates at
  exactly the instants the heap loop calls ``set_state`` — splitting a
  ``w*(c-a)`` rectangle at ``b`` is not an IEEE no-op.
* **Per-stream draw order is preserved.**  Every named
  :class:`~repro.util.rng.RandomStreams` stream is independently seeded,
  so only the draw sequence *within* a stream must match — which it
  does, because each node's backoff/pbbf draws happen at the same
  simulated instants for the same reasons.
* **Event ordering replicates the engine's ``(time, priority, seq)``
  heap.**  Deaths (control priority) precede same-instant traffic;
  machinery precedes same-instant traffic because machinery events are
  always scheduled at least one ATIM window ahead while every traffic
  delay (gate wait, DIFS+backoff, busy-defer, airtime) is shorter;
  within a machinery instant, window opens precede window ends and nodes
  are processed in ascending id order, matching the seq order their
  self-rescheduling callbacks hold in the engine heap.

Scope: the PSM scheduler under ``PSM_PBBF`` mode with default agents and
MACs (loss, k > 1, pre-failed nodes, mid-run deaths, scenario clock
offsets and half-normal skew all supported).  Everything else —
smac/tmac, ``ALWAYS_ON``, adaptive agents, custom MAC factories,
tracers — falls back to the heap loop via :func:`supports_batch`.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.apps.code_distribution import CodeDistributionApp, UpdateRecord
from repro.apps.metrics import BroadcastMetrics
from repro.ideal.simulator import SchedulingMode
from repro.mac.base import MacStats
from repro.mac.csma import CsmaConfig
from repro.mac.pbbf import bi_index_at, data_gate_at, in_atim_window_at
from repro.net.channel import ChannelStats
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine, SimulationError
from repro.util.validation import check_positive

# Radio state codes (power_lut index); LISTEN is the boot state.
_LISTEN, _TX, _SLEEP = 0, 1, 2

# Traffic event kinds, dispatched per seed in (time, priority, seq) order.
_ATTEMPT, _FIRE, _CH_DONE, _TX_DONE, _GEN, _DIE = 0, 1, 2, 3, 4, 5

# CSMA frame tags mapping completions to the MAC's stats hooks.
_TAG_BEACON, _TAG_ATIM, _TAG_NORMAL, _TAG_IMMEDIATE = 0, 1, 2, 3


def supports_batch(sim) -> bool:
    """Can ``sim`` run on the batched kernel with bit-identical results?"""
    return (
        sim.mode is SchedulingMode.PSM_PBBF
        and sim.scheduler == "psm"
        and sim._agent_factory is None
        and sim._mac_factory is None
        and sim._tracer is None
    )


class _Transmission:
    """On-air frame (identity-compared, like the channel's dataclass)."""

    __slots__ = ("sender", "packet", "start", "end")

    def __init__(self, sender: int, packet: Packet, start: float, end: float) -> None:
        self.sender = sender
        self.packet = packet
        self.start = start
        self.end = end


class _SeedState:
    """Per-seed scalar state: traffic heap, CSMA queues, RNGs, stats."""

    __slots__ = (
        "sim", "s", "n", "source", "heap", "seq", "offsets",
        "neighbors", "audible", "recent", "max_duration",
        "channel_stats", "mac_stats", "loss_p", "loss_rng",
        "backoff_rngs", "pbbf_rngs", "p", "q", "seen",
        "normal_queue", "queued_nodes", "csma_queue", "pending_id",
        "transmitting", "failed", "updates", "receptions",
        "next_update_id", "state_l", "since_l", "mirror_fresh",
    )

    def __init__(self, sim, s: int) -> None:
        topology = sim.topology
        n = topology.n_nodes
        streams = sim._streams
        self.sim = sim
        self.s = s
        self.n = n
        self.source = sim.source
        self.heap: List[tuple] = []
        self.seq = 0
        self.neighbors = [topology.neighbors(node) for node in topology.nodes()]
        self.audible = [frozenset(nbrs) for nbrs in self.neighbors]
        self.recent: List[_Transmission] = []
        self.max_duration = 0.0
        self.channel_stats = ChannelStats()
        self.mac_stats = [MacStats() for _ in range(n)]
        self.loss_p = sim._loss_probability
        self.loss_rng = streams.stream("loss")
        self.backoff_rngs = [
            streams.stream(f"node.{node_id}.backoff") for node_id in range(n)
        ]
        self.pbbf_rngs = [
            streams.stream(f"node.{node_id}.pbbf") for node_id in range(n)
        ]
        self.p = sim.params.p
        self.q = sim.params.q
        self.seen: List[Set[Tuple[int, int]]] = [set() for _ in range(n)]
        self.normal_queue: List[List[Packet]] = [[] for _ in range(n)]
        self.queued_nodes: Set[int] = set()
        self.csma_queue: List[List[Tuple[Packet, bool, int]]] = [
            [] for _ in range(n)
        ]
        self.pending_id: List[Optional[int]] = [None] * n
        self.transmitting = [False] * n
        self.failed = [False] * n
        self.updates: List[UpdateRecord] = []
        self.receptions: Dict[int, Dict[int, float]] = {
            node: {} for node in range(n)
        }
        self.next_update_id = 0
        # Read-cache of this seed's state / state_since columns for the
        # per-receiver listening checks (the arrays stay authoritative).
        # Machinery instants invalidate it; completions refresh lazily.
        self.state_l: List[int] = []
        self.since_l: List[float] = []
        self.mirror_fresh = False
        # Per-node clock offsets, replicating the simulator's draw order:
        # scenario phase first, half-normal skew on top, wrapped into one
        # beacon interval by the MAC.
        bi = sim.config.beacon_interval
        offsets = []
        for node_id in range(n):
            offset = 0.0
            if sim._scenario_offsets:
                offset = sim._scenario_offsets[node_id]
            if sim._clock_skew_std > 0.0:
                offset += abs(
                    streams.stream(f"node.{node_id}.skew").gauss(
                        0.0, sim._clock_skew_std
                    )
                )
            offsets.append(float(offset) % bi)
        self.offsets = offsets

    def push(self, time: float, priority: int, *payload) -> int:
        """Queue a traffic event; returns its seq (the cancellation token)."""
        seq = self.seq
        self.seq += 1
        heapq.heappush(self.heap, (time, priority, seq) + payload)
        return seq

    def has_pending(self, node: int) -> bool:
        return bool(self.csma_queue[node]) or self.transmitting[node]


class _Group:
    """Nodes sharing one schedule offset (one machinery stream)."""

    __slots__ = ("offset", "mask")

    def __init__(self, offset: float, n: int, n_seeds: int) -> None:
        self.offset = offset
        self.mask = np.zeros((n, n_seeds), dtype=bool)


class _Batch:
    """All seeds of one campaign point, stepped in lockstep."""

    def __init__(self, sims, duration: float) -> None:
        first = sims[0]
        cfg = first.config
        n = first.topology.n_nodes
        S = len(sims)
        for sim in sims:
            if sim.topology.n_nodes != n:
                raise ValueError("batched sims must share a network size")
            if sim.config != cfg:
                raise ValueError("batched sims must share a configuration")
        self.sims = sims
        self.cfg = cfg
        self.n = n
        self.S = S
        self.duration = duration
        self.bi = cfg.beacon_interval
        self.aw = cfg.atim_window
        self.bit_rate = cfg.bit_rate_bps
        self.data_size = cfg.total_packet_bytes
        csma = CsmaConfig()
        self.slot_time = csma.slot_time
        self.difs = csma.difs
        self.cw = csma.contention_window
        # MacConfig defaults carried by the simulator's wiring.
        self.atim_size = 28
        self.beacon_size = 28
        self.send_beacons = True
        power = cfg.power
        self.power_lut = np.array(
            [power.listen_w, power.tx_w, power.sleep_w], dtype=np.float64
        )
        # SoA radio/energy/PBBF state, trailing seed axis.
        self.state = np.full((n, S), _LISTEN, dtype=np.int8)
        self.state_since = np.zeros((n, S), dtype=np.float64)
        self.last_time = np.zeros((n, S), dtype=np.float64)
        self.joules = np.zeros((n, S), dtype=np.float64)
        self.awake = np.ones((n, S), dtype=bool)
        self.announced_tx = np.zeros((n, S), dtype=bool)
        self.announced_rx = np.zeros((n, S), dtype=bool)
        self.started = np.ones((n, S), dtype=bool)
        self.stopped = np.zeros((n, S), dtype=bool)
        self.pending = np.zeros((n, S), dtype=bool)
        self.bi_index = np.full((n, S), -1, dtype=np.int64)
        self.all_nodes = list(range(n))
        self.states = [_SeedState(sim, s) for s, sim in enumerate(sims)]
        groups: Dict[float, _Group] = {}
        for st in self.states:
            for node_id, offset in enumerate(st.offsets):
                group = groups.get(offset)
                if group is None:
                    group = groups[offset] = _Group(offset, n, S)
                group.mask[node_id, st.s] = True
        self.groups = list(groups.values())
        # Pre-broadcast failures: the MAC never starts, the radio sleeps
        # from t=0 (set_state at the boot instant changes no energy).
        for st in self.states:
            for node_id in st.sim._pre_failed:
                st.failed[node_id] = True
                self.started[node_id, st.s] = False
                self.stopped[node_id, st.s] = True
                self.state[node_id, st.s] = _SLEEP
        # Incrementally-maintained ``started & ~stopped`` (deaths are rare).
        self.live = self.started & ~self.stopped

    # -- energy bookkeeping ---------------------------------------------------

    def _accumulate(self, st: _SeedState, node: int, now: float) -> None:
        """Scalar ``RadioEnergyModel._accumulate`` (traffic path)."""
        elapsed = now - self.last_time[node, st.s]
        if elapsed > 0.0:
            self.joules[node, st.s] += (
                self.power_lut[self.state[node, st.s]] * elapsed
            )
            self.last_time[node, st.s] = now

    def _accumulate_bulk(self, now: float, sel: np.ndarray) -> None:
        """Vectorized accumulate at one shared instant.

        Adding ``w * 0.0`` where a node's meter already sits at ``now`` is
        an exact IEEE no-op for the non-negative totals involved, so the
        ``elapsed > 0`` guard can be dropped under the mask.
        """
        idx = np.nonzero(sel)
        elapsed = now - self.last_time[idx]
        self.joules[idx] += self.power_lut[self.state[idx]] * elapsed
        self.last_time[idx] = now

    def _set_state(self, st: _SeedState, node: int, code: int, now: float) -> None:
        """Scalar ``RadioEnergyModel.set_state`` (traffic path)."""
        self._accumulate(st, node, now)
        if self.state[node, st.s] != code:
            self.state[node, st.s] = code
            self.state_since[node, st.s] = now
            if st.mirror_fresh:
                st.state_l[node] = code
                st.since_l[node] = now

    def _scheduled_code(self, st: _SeedState, node: int, now: float) -> int:
        """``PBBFMac._scheduled_state`` against the SoA arrays."""
        if st.failed[node]:
            return _SLEEP
        if in_atim_window_at(now, st.offsets[node], self.bi, self.aw):
            return _LISTEN
        if self.awake[node, st.s] or st.has_pending(node):
            return _LISTEN
        return _SLEEP

    # -- beacon interval machinery --------------------------------------------

    def _on_bi_start(self, now: float, group: _Group) -> None:
        active = group.mask & self.live
        if not active.any():
            return
        non_tx = active & (self.state != _TX)
        self._accumulate_bulk(now, non_tx)
        to_listen = non_tx & (self.state != _LISTEN)
        self.state[to_listen] = _LISTEN
        self.state_since[to_listen] = now
        for st in self.states:
            st.mirror_fresh = False
        bi = bi_index_at(now, group.offset, self.bi)
        self.bi_index[active] = bi
        self.announced_tx[active] = False
        self.announced_rx[active] = False
        self.awake[active] = True
        beacon_node = bi % self.n if self.send_beacons else -1
        for st in self.states:
            column = active[:, st.s]
            candidates = set(st.queued_nodes)
            if beacon_node >= 0:
                candidates.add(beacon_node)
            for node in sorted(candidates):
                if not column[node]:
                    continue
                if node == beacon_node:
                    beacon = Packet(
                        kind=PacketKind.BEACON,
                        origin=node,
                        sender=node,
                        seqno=bi,
                        size_bytes=self.beacon_size,
                    )
                    self._enqueue(st, node, beacon, False, _TAG_BEACON, now)
                if st.normal_queue[node]:
                    self._announce_pending(st, node, now)

    def _on_window_end(self, now: float, group: _Group) -> None:
        active = group.mask & self.live
        if not active.any():
            return
        # Sleep-Decision-Handler: the q-coin is drawn (in ascending node
        # order, matching the heap's event seq order) only when the node
        # neither holds pending frames nor was announced to.
        for st in self.states:
            column = active[:, st.s]
            if column.all():
                nodes = self.all_nodes
            elif column.any():
                nodes = np.nonzero(column)[0].tolist()
            else:
                continue
            announced = self.announced_rx[:, st.s].tolist()
            queue = st.csma_queue
            transmitting = st.transmitting
            rngs = st.pbbf_rngs
            q = st.q
            stay = []
            for node in nodes:
                if announced[node] or queue[node] or transmitting[node]:
                    stay.append(True)
                else:
                    stay.append(rngs[node].random() < q)
            self.awake[nodes, st.s] = stay
        non_tx = active & (self.state != _TX)
        self._accumulate_bulk(now, non_tx)
        if in_atim_window_at(now, group.offset, self.bi, self.aw):
            listen = non_tx
        else:
            listen = non_tx & (self.awake | self.pending)
        to_listen = listen & (self.state != _LISTEN)
        to_sleep = (non_tx & ~listen) & (self.state != _SLEEP)
        self.state[to_listen] = _LISTEN
        self.state_since[to_listen] = now
        self.state[to_sleep] = _SLEEP
        self.state_since[to_sleep] = now
        for st in self.states:
            st.mirror_fresh = False

    # -- MAC ------------------------------------------------------------------

    def _announce_pending(self, st: _SeedState, node: int, now: float) -> None:
        if not st.normal_queue[node]:
            return
        if not self.announced_tx[node, st.s]:
            atim = Packet(
                kind=PacketKind.ATIM,
                origin=node,
                sender=node,
                seqno=int(self.bi_index[node, st.s]),
                size_bytes=self.atim_size,
            )
            self._enqueue(st, node, atim, False, _TAG_ATIM, now)
            self.announced_tx[node, st.s] = True
        queued, st.normal_queue[node] = st.normal_queue[node], []
        st.queued_nodes.discard(node)
        for packet in queued:
            self._enqueue(st, node, packet, True, _TAG_NORMAL, now)

    def _handle_receive(
        self,
        st: _SeedState,
        node: int,
        packet: Packet,
        now: float,
        kind: PacketKind,
        broadcast_id: tuple,
    ) -> None:
        if st.failed[node]:
            return
        if kind is not PacketKind.DATA:
            if kind is PacketKind.ATIM:
                st.mac_stats[node].atims_received += 1
                self.announced_rx[node, st.s] = True
            return  # beacons carry no payload; synchronisation is assumed
        stats = st.mac_stats[node]
        seen = st.seen[node]
        if broadcast_id in seen:
            stats.duplicates_dropped += 1
            return
        seen.add(broadcast_id)
        immediate = st.pbbf_rngs[node].random() < st.p
        stats.data_received += 1
        records = st.receptions[node]
        for update_id in packet.updates:
            if update_id not in records:
                records[update_id] = now
        forward = packet.forwarded_by(node)
        if immediate:
            self._enqueue(st, node, forward, True, _TAG_IMMEDIATE, now)
        else:
            st.normal_queue[node].append(forward)
            st.queued_nodes.add(node)
            if in_atim_window_at(now, st.offsets[node], self.bi, self.aw):
                self._announce_pending(st, node, now)

    def _generate(self, st: _SeedState, now: float) -> None:
        update_id = st.next_update_id
        st.next_update_id += 1
        st.updates.append(UpdateRecord(update_id, now))
        st.receptions[st.source][update_id] = now
        recent = tuple(
            record.update_id for record in st.updates[-self.cfg.k:]
        )
        packet = Packet(
            kind=PacketKind.DATA,
            origin=st.source,
            sender=st.source,
            seqno=update_id,
            size_bytes=self.data_size,
            updates=recent,
        )
        # PBBFMac.broadcast at the source.
        node = st.source
        if st.failed[node]:
            return
        st.seen[node].add(packet.broadcast_id)
        st.normal_queue[node].append(packet)
        st.queued_nodes.add(node)
        if in_atim_window_at(now, st.offsets[node], self.bi, self.aw):
            self._announce_pending(st, node, now)

    def _die(self, st: _SeedState, node: int, now: float) -> None:
        if st.failed[node]:
            return
        st.failed[node] = True
        self.stopped[node, st.s] = True
        self.live[node, st.s] = False
        st.csma_queue[node].clear()
        st.pending_id[node] = None
        self.pending[node, st.s] = st.transmitting[node]
        st.normal_queue[node].clear()
        st.queued_nodes.discard(node)
        if self.state[node, st.s] != _SLEEP:
            self._set_state(st, node, _SLEEP, now)

    # -- CSMA -----------------------------------------------------------------

    def _enqueue(
        self, st: _SeedState, node: int, packet: Packet, gated: bool, tag: int, now: float
    ) -> None:
        st.csma_queue[node].append((packet, gated, tag))
        self.pending[node, st.s] = True
        if st.transmitting[node] or st.pending_id[node] is not None:
            return
        self._attempt(st, node, now)

    def _attempt(self, st: _SeedState, node: int, now: float) -> None:
        st.pending_id[node] = None
        queue = st.csma_queue[node]
        if not queue:
            return
        packet, gated, _tag = queue[0]
        gate_time = (
            data_gate_at(now, st.offsets[node], self.bi, self.aw) if gated else now
        )
        if gate_time > now:
            st.pending_id[node] = st.push(
                now + (gate_time - now), 0, _ATTEMPT, node
            )
            return
        if self._is_busy(st, node, now):
            resume = self._busy_until(st, node, now) - now
            jitter = st.backoff_rngs[node].random() * self.slot_time
            st.pending_id[node] = st.push(
                now + (resume + jitter), 0, _ATTEMPT, node
            )
            return
        wait = self.difs + st.backoff_rngs[node].randrange(self.cw) * self.slot_time
        st.pending_id[node] = st.push(now + wait, 0, _FIRE, node, now)

    def _fire(self, st: _SeedState, node: int, now: float, countdown_start: float) -> None:
        st.pending_id[node] = None
        queue = st.csma_queue[node]
        if not queue:
            return
        packet, gated, tag = queue[0]
        gate_time = (
            data_gate_at(now, st.offsets[node], self.bi, self.aw) if gated else now
        )
        if gate_time > now:
            self._attempt(st, node, now)
            return
        if self._busy_during(st, node, countdown_start, now):
            self._attempt(st, node, now)
            return
        queue.pop(0)
        st.transmitting[node] = True
        self._set_state(st, node, _TX, now)
        duration = packet.size_bytes * 8.0 / self.bit_rate
        transmission = _Transmission(node, packet, now, now + duration)
        st.recent.append(transmission)
        st.max_duration = max(st.max_duration, duration)
        st.channel_stats.transmissions += 1
        kind = packet.kind.value
        st.channel_stats.by_kind[kind] = (
            st.channel_stats.by_kind.get(kind, 0) + 1
        )
        # The channel's completion resolves first, then the MAC's (the
        # channel schedules before the transmitter, so its event holds the
        # lower seq); their instants can differ by an ulp, so both delay
        # expressions are transcribed from their sources.
        seq = st.seq
        heapq.heappush(st.heap, (now + duration, 0, seq, _CH_DONE, transmission))
        mac_delay = transmission.end - transmission.start
        heapq.heappush(
            st.heap, (now + mac_delay, 0, seq + 1, _TX_DONE, node, (packet, gated, tag))
        )
        st.seq = seq + 2

    def _tx_done(self, st: _SeedState, node: int, frame, now: float) -> None:
        st.transmitting[node] = False
        self.pending[node, st.s] = bool(st.csma_queue[node])
        self._set_state(st, node, self._scheduled_code(st, node, now), now)
        packet, _gated, tag = frame
        stats = st.mac_stats[node]
        if tag == _TAG_BEACON:
            stats.beacons_sent += 1
        elif tag == _TAG_ATIM:
            stats.atims_sent += 1
        elif tag == _TAG_NORMAL:
            stats.data_sent += 1
            stats.normal_sends += 1
        else:
            stats.data_sent += 1
            stats.immediate_sends += 1
        if (
            not st.transmitting[node]
            and st.pending_id[node] is None
            and st.csma_queue[node]
        ):
            self._attempt(st, node, now)

    # -- channel --------------------------------------------------------------

    def _is_busy(self, st: _SeedState, node: int, now: float) -> bool:
        audible = st.audible[node]
        for tx in st.recent:
            if tx.start <= now < tx.end and (
                tx.sender in audible or tx.sender == node
            ):
                return True
        return False

    def _busy_until(self, st: _SeedState, node: int, now: float) -> float:
        audible = st.audible[node]
        latest = now
        for tx in st.recent:
            if tx.start <= now < tx.end and (
                tx.sender in audible or tx.sender == node
            ):
                latest = max(latest, tx.end)
        return latest

    def _busy_during(
        self, st: _SeedState, node: int, start: float, end: float
    ) -> bool:
        audible = st.audible[node]
        for tx in st.recent:
            if (
                (tx.sender in audible or tx.sender == node)
                and tx.start < end
                and tx.end > start
            ):
                return True
        return False

    def _channel_complete(
        self, st: _SeedState, transmission: _Transmission, now: float
    ) -> None:
        packet = transmission.packet
        stats = st.channel_stats
        s = st.s
        tx_start = transmission.start
        tx_end = transmission.end
        # A reception at r is corrupted iff some *other* transmission with
        # sender r or sender audible at r overlaps this one.  The set of
        # overlapping senders is receiver-independent, so hoist it out of
        # the per-receiver loop (it is empty for most completions).
        overlap_senders = set()
        for other in st.recent:
            if (
                other is not transmission
                and other.start < tx_end
                and other.end > tx_start
            ):
                overlap_senders.add(other.sender)
        if not st.mirror_fresh:
            st.state_l = self.state[:, s].tolist()
            st.since_l = self.state_since[:, s].tolist()
            st.mirror_fresh = True
        state_l = st.state_l
        since_l = st.since_l
        failed = st.failed
        audible = st.audible
        loss_p = st.loss_p
        # Packet attributes are receiver-independent: resolve the kind and
        # the (property-computed) broadcast id once per completion.
        kind = packet.kind
        broadcast_id = packet.broadcast_id if kind is PacketKind.DATA else ()
        for receiver in st.neighbors[transmission.sender]:
            if (
                failed[receiver]
                or state_l[receiver] != _LISTEN
                or since_l[receiver] > tx_start
            ):
                stats.missed_asleep += 1
                continue
            if overlap_senders and (
                receiver in overlap_senders
                or not overlap_senders.isdisjoint(audible[receiver])
            ):
                stats.collisions += 1
                st.mac_stats[receiver].collisions_heard += 1
                continue
            if loss_p > 0.0 and not (st.loss_rng.random() >= loss_p):
                stats.lost_random += 1
                continue
            stats.deliveries += 1
            self._handle_receive(st, receiver, packet, now, kind, broadcast_id)
        self._prune(st, now)

    def _prune(self, st: _SeedState, now: float) -> None:
        keep_for = max(2.0 * st.max_duration, 1.0)
        horizon = now - keep_for
        for tx in st.recent:
            if tx.end < horizon:
                st.recent = [t for t in st.recent if t.end >= horizon]
                return

    # -- event dispatch -------------------------------------------------------

    def _dispatch(self, st: _SeedState, event: tuple) -> None:
        time = event[0]
        kind = event[3]
        if kind == _ATTEMPT:
            node = event[4]
            if st.pending_id[node] != event[2]:
                return
            self._attempt(st, node, time)
        elif kind == _FIRE:
            node = event[4]
            if st.pending_id[node] != event[2]:
                return
            self._fire(st, node, time, event[5])
        elif kind == _CH_DONE:
            self._channel_complete(st, event[4], time)
        elif kind == _TX_DONE:
            self._tx_done(st, event[4], event[5], time)
        elif kind == _GEN:
            self._generate(st, time)
        else:
            self._die(st, event[4], time)

    def _drain_before(self, st: _SeedState, instant: float) -> None:
        """Run traffic strictly before ``instant`` (deaths at it included).

        Machinery at a shared instant precedes same-time default-priority
        traffic (its events always hold lower seqs — see module docstring)
        but follows control-priority deaths.
        """
        heap = st.heap
        while heap:
            head = heap[0]
            if head[0] < instant or (head[0] == instant and head[1] < 0):
                self._dispatch(st, heapq.heappop(heap))
            else:
                break

    def _drain_through(self, st: _SeedState, until: float) -> None:
        """Run all remaining traffic with ``time <= until`` (engine.run)."""
        heap = st.heap
        while heap and heap[0][0] <= until:
            self._dispatch(st, heapq.heappop(heap))

    # -- top-level ------------------------------------------------------------

    def run(self) -> List:
        duration = self.duration
        machinery: List[Tuple[float, int, int]] = []
        for gid, group in enumerate(self.groups):
            if group.offset == 0.0:
                # The heap loop runs t=0 window opens synchronously during
                # node start-up, before traffic generation or deaths are
                # scheduled; replicate that seq order here.
                self._on_bi_start(0.0, group)
                heapq.heappush(machinery, (0.0 + self.aw, 1, gid))
                heapq.heappush(machinery, (0.0 + self.bi, 0, gid))
            else:
                heapq.heappush(machinery, (group.offset, 0, gid))
        for st in self.states:
            t = 0.01  # CodeDistributionApp first_offset default
            while t < duration:
                st.push(t, 0, _GEN)
                t += self.cfg.update_interval
        for st in self.states:
            for node_id, fail_time in sorted(st.sim._node_failures.items()):
                if not 0 <= node_id < self.n:
                    raise IndexError(f"failing node {node_id} outside topology")
                if math.isnan(fail_time) or fail_time < 0.0:
                    raise SimulationError(
                        f"cannot schedule at t={fail_time} before current "
                        "time t=0.0"
                    )
                st.push(fail_time, -1, _DIE, node_id)
        while machinery:
            now, cls, gid = heapq.heappop(machinery)
            if now >= duration:
                # At-or-past-horizon machinery is unobservable: its energy
                # split coincides with the final settlement instant and
                # its coin draws are stream tails nothing consumes after.
                break
            for st in self.states:
                self._drain_before(st, now)
            group = self.groups[gid]
            if cls == 0:
                self._on_bi_start(now, group)
                heapq.heappush(machinery, (now + self.aw, 1, gid))
                heapq.heappush(machinery, (now + self.bi, 0, gid))
            else:
                self._on_window_end(now, group)
        for st in self.states:
            self._drain_through(st, duration)
        self._accumulate_bulk(duration, np.ones((self.n, self.S), dtype=bool))
        return [self._result(st) for st in self.states]

    def _result(self, st: _SeedState):
        from repro.detailed.simulator import DetailedResult

        sim = st.sim
        node_joules = [float(j) for j in self.joules[:, st.s]]
        app = CodeDistributionApp(
            Engine(),
            source=st.source,
            n_nodes=self.n,
            update_interval=self.cfg.update_interval,
            k=self.cfg.k,
            packet_size_bytes=self.data_size,
        )
        app.updates = st.updates
        app.receptions = st.receptions
        app._next_update_id = st.next_update_id
        metrics = BroadcastMetrics(
            app,
            sim.topology.hop_distances_from(st.source),
            node_joules,
        )
        return DetailedResult(
            params=sim.params,
            mode=sim.mode,
            config=self.cfg,
            source=st.source,
            topology=sim.topology,
            metrics=metrics,
            channel_stats=st.channel_stats,
            mac_stats=st.mac_stats,
            node_joules=node_joules,
        )


def run_batch(sims, duration: Optional[float] = None) -> List:
    """Run every simulator in ``sims`` through the batched kernel.

    All sims must satisfy :func:`supports_batch` and share a
    configuration (they may differ in seed, and therefore in topology,
    source, offsets and coin flips).  Returns one
    :class:`~repro.detailed.simulator.DetailedResult` per sim, in order,
    bit-identical to what each ``sim.run(duration)`` heap loop produces.
    """
    if not sims:
        return []
    for sim in sims:
        if not supports_batch(sim):
            raise ValueError(
                "sim not supported by the batched kernel; route through "
                "DetailedSimulator.run() for automatic fallback"
            )
    effective = duration if duration is not None else sims[0].config.duration
    check_positive("duration", effective)
    from repro.obs import get_recorder

    with get_recorder().span(
        "kernel.detailed.batched", seeds=len(sims), duration=effective
    ):
        return _Batch(list(sims), effective).run()
