"""Table 2: the code-distribution scenario parameters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.energy.model import MICA2, PowerProfile
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class CodeDistributionParameters:
    """The Section 5 configuration (paper Table 2, plus shared Table 1 values).

    Attributes
    ----------
    n_nodes:
        Deployment size (Table 2: N = 50).
    density:
        Node density ``delta`` of Eq. 13 — roughly the expected number of
        one-hop neighbours (Table 2 default: 10.0; Figures 17-18 sweep it).
    radio_range:
        Transmission range R in metres.  The paper never states R because
        no result depends on it (the area is derived from the density); we
        fix 40 m, a typical Mica2 outdoor figure.
    total_packet_bytes / payload_bytes:
        Table 2: 64-byte packets with a 30-byte data payload.
    k:
        Most-recent updates carried per packet (presented results use 1).
    update_rate:
        lambda, updates per second at the source (Table 1: 0.01/s).
    beacon_interval / atim_window:
        BI and AW, "set according to the values of Tframe and Tactive"
        (10 s / 1 s).
    bit_rate_bps:
        19.2 kbps (Section 5: "the bit rate of the nodes is 19.2 kbps").
    duration:
        Simulated seconds per run (Section 5.1: 500 s).
    power:
        Radio power profile (Table 1's Mica2 values).
    """

    n_nodes: int = 50
    density: float = 10.0
    radio_range: float = 40.0
    total_packet_bytes: int = 64
    payload_bytes: int = 30
    k: int = 1
    update_rate: float = 0.01
    beacon_interval: float = 10.0
    atim_window: float = 1.0
    bit_rate_bps: float = 19200.0
    duration: float = 500.0
    power: PowerProfile = MICA2

    def __post_init__(self) -> None:
        check_positive_int("n_nodes", self.n_nodes)
        check_positive("density", self.density)
        check_positive("radio_range", self.radio_range)
        check_positive_int("total_packet_bytes", self.total_packet_bytes)
        check_positive_int("payload_bytes", self.payload_bytes)
        check_positive_int("k", self.k)
        check_positive("update_rate", self.update_rate)
        check_positive("beacon_interval", self.beacon_interval)
        check_positive("atim_window", self.atim_window)
        check_positive("bit_rate_bps", self.bit_rate_bps)
        check_positive("duration", self.duration)
        if self.payload_bytes >= self.total_packet_bytes:
            raise ValueError(
                f"payload ({self.payload_bytes}B) must fit inside the total "
                f"packet ({self.total_packet_bytes}B) with headers"
            )
        if self.atim_window >= self.beacon_interval:
            raise ValueError(
                f"atim_window ({self.atim_window}) must be < "
                f"beacon_interval ({self.beacon_interval})"
            )

    @classmethod
    def for_topology(cls, topology, **overrides) -> "CodeDistributionParameters":
        """Parameters sized to a pre-built (scenario-realized) deployment.

        ``n_nodes`` is taken from the topology; every other field keeps
        its Table 2 default unless overridden.  This is how the
        scenario-resolved detailed evaluator builds its configuration:
        the topology comes from ``ScenarioSpec.realize``, so the config's
        placement knobs (``density``, ``radio_range``) describe nothing
        and only the protocol/traffic/timing fields matter.
        """
        if "n_nodes" in overrides and overrides["n_nodes"] != topology.n_nodes:
            raise ValueError(
                f"n_nodes override ({overrides['n_nodes']}) contradicts the "
                f"topology ({topology.n_nodes} nodes)"
            )
        overrides = dict(overrides, n_nodes=topology.n_nodes)
        return cls(**overrides)

    @property
    def update_interval(self) -> float:
        """Seconds between updates, ``1 / lambda``."""
        return 1.0 / self.update_rate

    @property
    def expected_updates(self) -> int:
        """Updates generated over one run."""
        return int(self.duration * self.update_rate) + (
            1 if self.duration * self.update_rate % 1 else 0
        )

    def table_rows(self) -> List[Tuple[str, str]]:
        """Render the Table 2 rows (parameter, value) for the bench harness."""
        return [
            ("N", f"{self.n_nodes}"),
            ("Delta", f"{self.density:g}"),
            ("Total Packet Size", f"{self.total_packet_bytes} bytes"),
            ("Data Packet Payload", f"{self.payload_bytes} bytes"),
            ("k", f"{self.k}"),
            ("lambda", f"{self.update_rate:g} updates/s"),
            ("Bit rate", f"{self.bit_rate_bps / 1000:g} kbps"),
            ("Run length", f"{self.duration:g} s"),
        ]
