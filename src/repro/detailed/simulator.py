"""Scenario assembly and execution for the Section 5 study.

A :class:`DetailedSimulator` is a pure function of ``(params, config,
seed, mode)``: the same inputs rebuild the same deployment, the same
traffic, and the same coin flips, which is what makes the paired
protocol comparisons in Figures 13-18 meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.code_distribution import CodeDistributionApp
from repro.apps.metrics import BroadcastMetrics
from repro.core.params import PBBFParams
from repro.core.pbbf import PBBFAgent
from repro.detailed.config import CodeDistributionParameters
from repro.detailed.node import AnyMac, SensorNode
from repro.energy.model import RadioEnergyModel
from repro.ideal.simulator import SchedulingMode
from repro.mac.always_on import AlwaysOnMac
from repro.mac.base import MacConfig, MacStats
from repro.mac.csma import CsmaConfig
from repro.mac.pbbf import PBBFMac
from repro.mac.smac import SMacConfig, SMacPBBF
from repro.mac.tmac import TMacConfig, TMacPBBF
from repro.net.channel import Channel, ChannelStats
from repro.net.propagation import LossModel
from repro.net.topology import RandomTopology, Topology
from repro.scenarios import RealizedScenario
from repro.sim.engine import CONTROL_PRIORITY, Engine
from repro.util.rng import RandomStreams


@dataclass
class DetailedResult:
    """Everything measured from one detailed run."""

    params: PBBFParams
    mode: SchedulingMode
    config: CodeDistributionParameters
    source: int
    topology: Topology
    metrics: BroadcastMetrics
    channel_stats: ChannelStats
    mac_stats: List[MacStats]
    node_joules: List[float]
    # Aggregates reduced once on first access; the analysis layer reads
    # them inside tight loops over whole campaigns.
    _n_updates: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )
    _total_data_transmissions: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_updates(self) -> int:
        """Updates generated at the source during the run."""
        if self._n_updates is None:
            self._n_updates = self.metrics.n_updates
        return self._n_updates

    def total_data_transmissions(self) -> int:
        """Data frames put on the air across all nodes."""
        if self._total_data_transmissions is None:
            self._total_data_transmissions = sum(
                stats.data_sent for stats in self.mac_stats
            )
        return self._total_data_transmissions


class DetailedSimulator:
    """Builds and runs one code-distribution scenario.

    Parameters
    ----------
    params:
        PBBF's (p, q); use ``PBBFParams.psm()`` for the PSM baseline.
    config:
        Scenario parameters (Table 2 defaults).
    seed:
        Root seed; deployment, source choice, traffic and every coin flip
        derive from it.
    mode:
        ``PSM_PBBF`` (default) or ``ALWAYS_ON`` (the "NO PSM" baseline,
        where ``params`` is ignored).
    topology:
        Optional pre-built topology (tests use small deterministic ones);
        by default a connected random deployment is sampled from the seed.
    loss_probability:
        Optional independent per-reception loss (failure injection).
    scheduler:
        Which sleep scheduler carries PBBF: ``"psm"`` (the paper's
        802.11 PSM, default), ``"smac"`` or ``"tmac"`` (the extension
        schedulers demonstrating PBBF's portability).  Ignored in
        ``ALWAYS_ON`` mode.
    agent_factory:
        Optional ``factory(node_id, rng) -> PBBFAgent`` overriding the
        default static agent — the hook the adaptive-PBBF extension
        plugs into.
    clock_skew_std:
        Failure injection: per-node schedule offsets drawn from a
        half-normal with this standard deviation (seconds).  The paper
        assumes perfect synchronisation; non-zero skew desynchronises
        ATIM windows (PSM scheduler only).
    node_failures:
        Failure injection: ``{node_id: fail_time_s}`` — each listed node
        falls permanently silent at its time (radio off, queues dropped).
    tracer:
        Optional :class:`~repro.net.trace.PacketTracer` capturing every
        MAC-level event of the run (the ns-2-style trace file).
    mac_factory:
        Escape hatch for custom MACs (e.g. the gossip baseline):
        ``factory(node_id, engine, channel, radio, deliver, rng) -> mac``.
        When given it overrides ``mode``/``scheduler`` entirely; the MAC
        must satisfy :class:`~repro.mac.base.BroadcastMac`.
    scenario:
        A :class:`~repro.scenarios.RealizedScenario` (from
        ``ScenarioSpec.realize``) supplying the whole world at once:
        topology, source, pre-broadcast failed nodes, the mid-run death
        schedule and per-node clock offsets.  Mutually exclusive with
        ``topology``; the scenario's perturbations *combine* with any
        explicit ``node_failures`` / ``clock_skew_std`` injection
        (explicit death times win for a node listed by both).  Scenario
        clock offsets model the PSM schedule phase; a skew-carrying
        scenario on any other scheduler/mode raises rather than silently
        caching nominal results under the perturbed token.
    fast_path:
        Kernel selection: ``True`` forces the seed-batched kernel
        (:mod:`repro.detailed.batched`), ``False`` forces the heap-loop
        reference, ``None`` (default) defers to the ambient
        ``ExecutionConfig.detailed_fast_path``.  Configurations the
        batched kernel does not support fall back to the reference
        automatically; results are bit-identical either way.
    """

    def __init__(
        self,
        params: PBBFParams,
        config: Optional[CodeDistributionParameters] = None,
        seed: int = 0,
        mode: SchedulingMode = SchedulingMode.PSM_PBBF,
        topology: Optional[Topology] = None,
        loss_probability: float = 0.0,
        scheduler: str = "psm",
        agent_factory=None,
        clock_skew_std: float = 0.0,
        node_failures: Optional[Dict[int, float]] = None,
        tracer=None,
        mac_factory=None,
        scenario: Optional[RealizedScenario] = None,
        fast_path: Optional[bool] = None,
    ) -> None:
        if scheduler not in ("psm", "smac", "tmac"):
            raise ValueError(
                f"scheduler must be 'psm', 'smac' or 'tmac', got {scheduler!r}"
            )
        if clock_skew_std < 0.0:
            raise ValueError(f"clock_skew_std must be >= 0, got {clock_skew_std}")
        if scenario is not None and topology is not None:
            raise ValueError(
                "pass either a realized scenario or an explicit topology, "
                "not both"
            )
        if scenario is not None and scenario.clock_offsets and (
            mode is not SchedulingMode.PSM_PBBF
            or scheduler != "psm"
            or mac_factory is not None
        ):
            # Only the PSM MAC models a schedule phase; running a
            # skew-carrying token on any other MAC would cache results
            # bit-identical to the nominal world under the perturbed key.
            raise ValueError(
                "scenario clock_skew is only supported on the PSM "
                f"scheduler (got scheduler={scheduler!r}, "
                f"mode={mode.value!r})"
            )
        self.scenario = scenario
        self.scheduler = scheduler
        self._agent_factory = agent_factory
        self._clock_skew_std = clock_skew_std
        # Scenario death schedule first, explicit injection layered over it.
        self._node_failures: Dict[int, float] = (
            dict(scenario.failure_times) if scenario is not None else {}
        )
        if node_failures:
            self._node_failures.update(node_failures)
        self._scenario_offsets = (
            scenario.clock_offsets if scenario is not None else ()
        )
        self._pre_failed = (
            frozenset(scenario.failed_nodes) if scenario is not None else frozenset()
        )
        self._tracer = tracer
        self._mac_factory = mac_factory
        self.params = params
        if config is None:
            if scenario is not None:
                config = CodeDistributionParameters.for_topology(scenario.topology)
            else:
                config = CodeDistributionParameters()
        elif scenario is not None and config.n_nodes != scenario.topology.n_nodes:
            raise ValueError(
                f"config.n_nodes ({config.n_nodes}) contradicts the realized "
                f"scenario ({scenario.topology.n_nodes} nodes)"
            )
        self.config = config
        self.mode = mode
        self._streams = RandomStreams(seed)
        if scenario is not None:
            topology = scenario.topology
        elif topology is None:
            topology = RandomTopology.connected(
                self.config.n_nodes,
                self.config.radio_range,
                self.config.density,
                self._streams.stream("placement"),
            )
        self.topology = topology
        if scenario is not None:
            # The scenario's source policy already chose (and its streams
            # already drew) the source; the legacy "source" stream stays
            # untouched, so named-stream consumption elsewhere is stable.
            self.source = scenario.source
        else:
            # "One random node is chosen to be the broadcast and code
            # distribution source for each scenario."
            self.source = self._streams.stream("source").randrange(
                topology.n_nodes
            )
        self._loss_probability = loss_probability
        self._fast_path = fast_path

    def _use_fast_path(self) -> bool:
        """Batched kernel selection: explicit flag wins, else ambient config."""
        if self._fast_path is not None:
            return self._fast_path
        from repro.runners.context import get_execution

        return get_execution().detailed_fast_path

    def run(self, duration: Optional[float] = None) -> DetailedResult:
        """Execute the scenario and return its measurements.

        Routes through the seed-batched kernel
        (:mod:`repro.detailed.batched`) when selected and supported —
        bit-identical to the heap loop — and falls back to
        :meth:`run_reference` otherwise.
        """
        if self._use_fast_path():
            from repro.detailed.batched import run_batch, supports_batch

            if supports_batch(self):
                return run_batch([self], duration=duration)[0]
        return self.run_reference(duration)

    def run_reference(self, duration: Optional[float] = None) -> DetailedResult:
        """Execute via the event-heap reference loop (the parity baseline)."""
        duration = duration if duration is not None else self.config.duration
        cfg = self.config
        engine = Engine()
        channel = Channel(
            engine,
            self.topology,
            cfg.bit_rate_bps,
            loss_model=LossModel(
                self._loss_probability, self._streams.stream("loss")
            ),
            tracer=self._tracer,
        )
        app = CodeDistributionApp(
            engine,
            source=self.source,
            n_nodes=self.topology.n_nodes,
            update_interval=cfg.update_interval,
            k=cfg.k,
            packet_size_bytes=cfg.total_packet_bytes,
        )
        mac_config = MacConfig(
            beacon_interval=cfg.beacon_interval,
            atim_window=cfg.atim_window,
            bit_rate_bps=cfg.bit_rate_bps,
            data_size_bytes=cfg.total_packet_bytes,
        )
        csma_config = CsmaConfig()
        nodes: List[SensorNode] = []
        n = self.topology.n_nodes
        for node_id in range(n):
            radio = RadioEnergyModel(cfg.power, start_time=engine.now)
            deliver = app.delivery_callback(node_id)
            backoff_rng = self._streams.stream(f"node.{node_id}.backoff")
            mac: AnyMac
            if self._mac_factory is not None:
                mac = self._mac_factory(
                    node_id, engine, channel, radio, deliver, backoff_rng
                )
            elif self.mode is SchedulingMode.ALWAYS_ON:
                mac = AlwaysOnMac(
                    engine, channel, node_id, radio, deliver, backoff_rng,
                    csma_config=csma_config,
                )
            else:
                agent_rng = self._streams.stream(f"node.{node_id}.pbbf")
                if self._agent_factory is not None:
                    agent = self._agent_factory(node_id, agent_rng)
                else:
                    agent = PBBFAgent(self.params, agent_rng)
                if self.scheduler == "smac":
                    mac = SMacPBBF(
                        engine, channel, node_id, agent, radio, deliver,
                        backoff_rng,
                        config=SMacConfig(
                            frame_time=cfg.beacon_interval,
                            listen_time=cfg.atim_window,
                        ),
                        csma_config=csma_config,
                    )
                elif self.scheduler == "tmac":
                    mac = TMacPBBF(
                        engine, channel, node_id, agent, radio, deliver,
                        backoff_rng,
                        config=TMacConfig(frame_time=cfg.beacon_interval),
                        csma_config=csma_config,
                    )
                else:
                    # Scenario-drawn phase offset first, then the legacy
                    # per-node skew injection on top (both default to 0).
                    offset = 0.0
                    if self._scenario_offsets:
                        offset = self._scenario_offsets[node_id]
                    if self._clock_skew_std > 0.0:
                        offset += abs(
                            self._streams.stream(f"node.{node_id}.skew").gauss(
                                0.0, self._clock_skew_std
                            )
                        )
                    mac = PBBFMac(
                        engine,
                        channel,
                        node_id,
                        agent,
                        radio,
                        deliver,
                        backoff_rng,
                        config=mac_config,
                        csma_config=csma_config,
                        beacon_duty=_round_robin_beacon_duty(node_id, n),
                        clock_offset=offset,
                    )
            node = SensorNode(node_id, radio, mac)
            channel.attach(node_id, node)
            nodes.append(node)
        for node in nodes:
            if node.node_id in self._pre_failed:
                if not hasattr(node.mac, "stop"):
                    raise ValueError(
                        f"scheduler {type(node.mac).__name__} does not "
                        "support node-failure injection"
                    )
                # Dead before the first broadcast: the MAC never starts,
                # the radio sleeps from t=0, and the node counts as
                # unreached in every delivery metric.
                node.fail()
            else:
                node.mac.start()
        app.bind_source_mac(nodes[self.source].mac)
        app.start(duration)
        for node_id, fail_time in sorted(self._node_failures.items()):
            if not 0 <= node_id < n:
                raise IndexError(f"failing node {node_id} outside topology")
            mac = nodes[node_id].mac
            if not hasattr(mac, "stop"):
                raise ValueError(
                    f"scheduler {type(mac).__name__} does not support "
                    "node-failure injection"
                )
            # Deaths are first-class heap events at control priority: a
            # node dying at t is silenced before any same-instant frame.
            engine.schedule_at(
                fail_time, nodes[node_id].fail, priority=CONTROL_PRIORITY
            )
        from repro.obs import get_recorder

        with get_recorder().span(
            "kernel.detailed.reference",
            nodes=self.topology.n_nodes,
            duration=duration,
        ):
            engine.run(until=duration)
        node_joules = [node.radio.consumed_joules(duration) for node in nodes]
        metrics = BroadcastMetrics(
            app,
            self.topology.hop_distances_from(self.source),
            node_joules,
        )
        return DetailedResult(
            params=self.params,
            mode=self.mode,
            config=cfg,
            source=self.source,
            topology=self.topology,
            metrics=metrics,
            channel_stats=channel.stats,
            mac_stats=[node.mac.stats for node in nodes],
            node_joules=node_joules,
        )


def _round_robin_beacon_duty(node_id: int, n_nodes: int):
    """Each beacon interval gets exactly one beacon sender, round robin."""

    def duty(bi_index: int) -> bool:
        return bi_index % n_nodes == node_id

    return duty
