"""One sensor node: radio + MAC, presented to the channel as a listener."""

from __future__ import annotations

from typing import Union

from repro.energy.model import RadioEnergyModel
from repro.mac.always_on import AlwaysOnMac
from repro.mac.pbbf import PBBFMac
from repro.mac.smac import SMacPBBF
from repro.mac.tmac import TMacPBBF
from repro.net.packet import Packet

#: The MAC variants a node can run.
AnyMac = Union[PBBFMac, AlwaysOnMac, SMacPBBF, TMacPBBF]


class SensorNode:
    """Thin composition of a radio and a MAC.

    Implements the :class:`~repro.net.channel.ChannelListener` protocol by
    delegation: the radio answers "could I hear this?", the MAC consumes
    what was heard.
    """

    def __init__(self, node_id: int, radio: RadioEnergyModel, mac: AnyMac) -> None:
        self.node_id = node_id
        self.radio = radio
        self.mac = mac
        self._failed = False

    @property
    def alive(self) -> bool:
        """False once the node has failed (pre-broadcast or mid-run)."""
        return not self._failed

    def fail(self) -> None:
        """Permanently kill this node (scenario failure injection).

        Delegates to the MAC's ``stop`` — radio asleep forever, queues
        dropped — and latches the node dead so the channel's delivery
        callbacks become no-ops.  Idempotent; scheduled on the engine
        heap by the simulator for mid-run death events, or called before
        ``start`` for nodes dead from the first instant.
        """
        if self._failed:
            return
        self._failed = True
        self.mac.stop()

    def is_listening_interval(self, start: float, end: float) -> bool:
        """Was the radio continuously listening over ``[start, end]``?"""
        return not self._failed and self.radio.is_listening_interval(start, end)

    def on_receive(self, packet: Packet) -> None:
        """Channel delivered a clean frame."""
        if self._failed:
            return
        self.mac.handle_receive(packet)

    def on_collision(self, packet: Packet) -> None:
        """Channel reported a corrupted frame."""
        if self._failed:
            return
        self.mac.handle_collision(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SensorNode({self.node_id}, mac={type(self.mac).__name__})"
