"""The Section 5 detailed simulator (the reproduction's ns-2 stand-in).

Assembles the full stack — random deployment, collision-modelling channel,
CSMA/CA, 802.11 PSM with PBBF, code-distribution application, Mica2 energy
accounting — and runs the paper's 500-second scenarios:

* :class:`~repro.detailed.config.CodeDistributionParameters` -- Table 2's
  values plus the shared Table 1 timing;
* :class:`~repro.detailed.node.SensorNode` -- one node's radio + MAC
  bundle, presented to the channel as a listener;
* :class:`~repro.detailed.simulator.DetailedSimulator` -- builds a
  scenario from a seed, runs it, and returns a
  :class:`~repro.detailed.simulator.DetailedResult` exposing every
  Figure 13-18 metric.
"""

from repro.detailed.config import CodeDistributionParameters
from repro.detailed.node import SensorNode
from repro.detailed.simulator import DetailedResult, DetailedSimulator

__all__ = [
    "CodeDistributionParameters",
    "DetailedResult",
    "DetailedSimulator",
    "SensorNode",
]
