"""The shared wireless medium.

Models the three PHY effects the paper's Section 5 evaluation adds on top
of the idealized analysis:

* **finite transmission time** — a packet occupies the channel for
  ``size * 8 / bit_rate`` seconds (~26.7 ms for 64 bytes at 19.2 kbps);
* **collisions** — a reception is corrupted when any other audible
  transmission overlaps it in time at the receiver;
* **sleeping / deaf receivers** — a node only receives when its radio was
  continuously in a listening state for the whole transmission
  (half-duplex: its own transmissions make it deaf, as does sleep).

The channel is topology-driven: audibility is one-hop adjacency in the
:class:`~repro.net.topology.Topology` (an optional separate interference
adjacency supports carrier-sense ranges beyond reception range).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.net.packet import Packet

if TYPE_CHECKING:  # import cycle guard: trace imports Packet from net
    from repro.net.trace import PacketTracer
from repro.net.propagation import LossModel
from repro.net.topology import Topology
from repro.sim.engine import Engine
from repro.util.validation import check_positive


class ChannelListener(Protocol):
    """What the channel needs from a node's receive path."""

    def is_listening_interval(self, start: float, end: float) -> bool:
        """Was the radio continuously able to receive over ``[start, end]``?"""

    def on_receive(self, packet: Packet) -> None:
        """Deliver a cleanly received packet."""

    def on_collision(self, packet: Packet) -> None:
        """Notify that a packet addressed this way was corrupted."""


@dataclass
class Transmission:
    """One on-air transmission."""

    sender: int
    packet: Packet
    start: float
    end: float

    def overlaps(self, start: float, end: float) -> bool:
        """True when this transmission overlaps the open interval (start, end)."""
        return self.start < end and self.end > start


@dataclass
class ChannelStats:
    """Aggregate medium statistics for one simulation run."""

    transmissions: int = 0
    deliveries: int = 0
    collisions: int = 0
    missed_asleep: int = 0
    lost_random: int = 0
    #: Per-kind transmission counts, keyed by ``PacketKind.value``.
    by_kind: Dict[str, int] = field(default_factory=dict)


class Channel:
    """Broadcast medium over a fixed topology.

    Parameters
    ----------
    engine:
        The simulation engine supplying the clock and scheduling.
    topology:
        Reception adjacency: a transmission by ``u`` is decodable exactly at
        ``topology.neighbors(u)``.
    bit_rate_bps:
        Channel bit rate (the paper uses 19.2 kbps, the Mica2 rate).
    loss_model:
        Optional independent per-reception loss (failure injection);
        lossless by default.
    interference_neighbors:
        Optional adjacency used for carrier sensing and collision audibility
        when it exceeds reception range.  Defaults to reception adjacency.
    tracer:
        Optional :class:`~repro.net.trace.PacketTracer` receiving every
        TX / RX / COLL / MISS / DROP event (the ns-2-style trace file).
    """

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        bit_rate_bps: float,
        loss_model: Optional[LossModel] = None,
        interference_neighbors: Optional[Sequence[Sequence[int]]] = None,
        tracer: Optional["PacketTracer"] = None,
    ) -> None:
        check_positive("bit_rate_bps", bit_rate_bps)
        self._engine = engine
        self._topology = topology
        self.bit_rate_bps = float(bit_rate_bps)
        self._loss_model = loss_model if loss_model is not None else LossModel(0.0)
        if interference_neighbors is None:
            self._interference: List[Tuple[int, ...]] = [
                topology.neighbors(node) for node in topology.nodes()
            ]
        else:
            if len(interference_neighbors) != topology.n_nodes:
                raise ValueError(
                    "interference adjacency must cover every node "
                    f"({len(interference_neighbors)} != {topology.n_nodes})"
                )
            self._interference = [tuple(nbrs) for nbrs in interference_neighbors]
        self._listeners: Dict[int, ChannelListener] = {}
        self._recent: List[Transmission] = []
        self._max_duration_seen = 0.0
        self.stats = ChannelStats()
        self._tracer = tracer

    @property
    def topology(self) -> Topology:
        """The reception topology this channel runs over."""
        return self._topology

    def attach(self, node_id: int, listener: ChannelListener) -> None:
        """Register the receive path for ``node_id``."""
        if not 0 <= node_id < self._topology.n_nodes:
            raise IndexError(f"node {node_id} outside topology")
        self._listeners[node_id] = listener

    def packet_duration(self, packet: Packet) -> float:
        """On-air time of ``packet`` on this channel."""
        return packet.duration(self.bit_rate_bps)

    def transmit(self, sender: int, packet: Packet) -> Transmission:
        """Start transmitting ``packet`` from ``sender`` at the current time.

        Delivery (or corruption) at each in-range listener is resolved when
        the transmission ends.  The caller is responsible for putting the
        sender's radio in the TX state for the duration (the energy model
        and half-duplex behaviour depend on it).
        """
        now = self._engine.now
        duration = self.packet_duration(packet)
        transmission = Transmission(sender, packet, now, now + duration)
        self._recent.append(transmission)
        self._max_duration_seen = max(self._max_duration_seen, duration)
        self.stats.transmissions += 1
        kind = packet.kind.value
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        if self._tracer is not None:
            self._tracer.record(now, "TX", sender, packet)
        self._engine.schedule(duration, lambda: self._complete(transmission))
        return transmission

    def is_busy(self, node_id: int) -> bool:
        """Carrier sense: is any transmission audible at ``node_id`` now?"""
        now = self._engine.now
        audible = self._audible_set(node_id)
        return any(
            tx.start <= now < tx.end
            and (tx.sender in audible or tx.sender == node_id)
            for tx in self._recent
        )

    def busy_during(self, node_id: int, start: float, end: float) -> bool:
        """Was any transmission audible at ``node_id`` during ``[start, end]``?

        Supports CSMA's "medium stayed idle through DIFS + backoff" check:
        the MAC records when its backoff countdown began and asks, at fire
        time, whether anything was heard since.  Only transmissions still
        within the channel's retention horizon are considered, which covers
        every interval a MAC can legitimately ask about (bounded by twice
        the longest packet airtime).
        """
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        audible = self._audible_set(node_id)
        return any(
            (tx.sender in audible or tx.sender == node_id)
            and tx.overlaps(start, end)
            for tx in self._recent
        )

    def busy_until(self, node_id: int) -> float:
        """Latest end time of transmissions currently audible at ``node_id``.

        Returns the current time when the medium is idle, so callers can
        always wait ``max(0, busy_until - now)`` before retrying.
        """
        now = self._engine.now
        audible = self._audible_set(node_id)
        latest = now
        for tx in self._recent:
            if tx.start <= now < tx.end and (tx.sender in audible or tx.sender == node_id):
                latest = max(latest, tx.end)
        return latest

    # -- internal ------------------------------------------------------------

    def _complete(self, transmission: Transmission) -> None:
        """Resolve receptions when ``transmission`` leaves the air."""
        packet = transmission.packet
        for receiver in self._topology.neighbors(transmission.sender):
            listener = self._listeners.get(receiver)
            if listener is None:
                continue
            now = self._engine.now
            if not listener.is_listening_interval(transmission.start, transmission.end):
                self.stats.missed_asleep += 1
                if self._tracer is not None:
                    self._tracer.record(now, "MISS", receiver, packet)
                continue
            if self._corrupted_at(transmission, receiver):
                self.stats.collisions += 1
                if self._tracer is not None:
                    self._tracer.record(now, "COLL", receiver, packet)
                listener.on_collision(packet)
                continue
            if not self._loss_model.delivers():
                self.stats.lost_random += 1
                if self._tracer is not None:
                    self._tracer.record(now, "DROP", receiver, packet)
                continue
            self.stats.deliveries += 1
            if self._tracer is not None:
                self._tracer.record(now, "RX", receiver, packet)
            listener.on_receive(packet)
        self._prune()

    def _corrupted_at(self, transmission: Transmission, receiver: int) -> bool:
        """Did any other audible transmission overlap this one at ``receiver``?"""
        audible = self._audible_set(receiver)
        for other in self._recent:
            if other is transmission:
                continue
            if other.sender != receiver and other.sender not in audible:
                continue
            if other.overlaps(transmission.start, transmission.end):
                return True
        return False

    def _audible_set(self, node_id: int) -> Tuple[int, ...]:
        return self._interference[node_id]

    #: How long (s) a finished transmission stays queryable for
    #: ``busy_during``; must exceed the longest DIFS+backoff a MAC can wait.
    RETENTION_FLOOR = 1.0

    def _prune(self) -> None:
        """Drop transmissions too old to overlap anything still in flight."""
        keep_for = max(2.0 * self._max_duration_seen, self.RETENTION_FLOOR)
        horizon = self._engine.now - keep_for
        if any(tx.end < horizon for tx in self._recent):
            self._recent = [tx for tx in self._recent if tx.end >= horizon]
