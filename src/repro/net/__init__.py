"""Network substrate: topologies, packets, propagation, and the channel.

This package supplies everything below the MAC layer:

* :mod:`repro.net.topology` -- node placement and connectivity.  The paper
  uses two families: square lattices for the Section 4 analysis (75x75 by
  default) and uniform-random deployments of N=50 nodes whose density
  ``delta = pi * R^2 * N / A`` is the Section 5 control variable.
* :mod:`repro.net.packet` -- the frame types exchanged by the protocols
  (data broadcasts, PSM beacons, ATIM announcements).
* :mod:`repro.net.propagation` -- the unit-disk radio range model plus an
  optional independent-loss fault injector.
* :mod:`repro.net.channel` -- the shared wireless medium for the detailed
  simulator: half-duplex transceivers, carrier sensing, and corruption of
  overlapping transmissions (the collisions whose effect Section 5 studies).
"""

from repro.net.channel import Channel, ChannelListener, Transmission
from repro.net.packet import Packet, PacketKind
from repro.net.propagation import LossModel, UnitDiskPropagation
from repro.net.trace import PacketTracer, TraceRecord
from repro.net.topology import (
    GridTopology,
    RandomTopology,
    Topology,
    area_for_density,
    density_for_area,
)

__all__ = [
    "Channel",
    "ChannelListener",
    "GridTopology",
    "LossModel",
    "Packet",
    "PacketKind",
    "PacketTracer",
    "RandomTopology",
    "Topology",
    "TraceRecord",
    "Transmission",
    "UnitDiskPropagation",
    "area_for_density",
    "density_for_area",
]
