"""Packet and frame definitions.

The detailed simulator exchanges three frame kinds, mirroring the paper's
IEEE 802.11 PSM setting (Figures 1-2):

* ``BEACON`` -- the synchronisation beacon opening each beacon interval;
* ``ATIM`` -- Ad-hoc Traffic Indication Message announcing a pending
  broadcast inside the ATIM window;
* ``DATA`` -- the broadcast payload itself.  For the code-distribution
  application each data packet carries the ``k`` most recent updates
  generated at the source (Table 2 uses 64-byte packets with a 30-byte
  payload).

Transmission duration is ``size_bytes * 8 / bit_rate`` — at the paper's
19.2 kbps a 64-byte packet occupies the channel for ~26.7 ms.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.util.validation import check_positive

_uid_counter = itertools.count()


class PacketKind(enum.Enum):
    """Frame type on the air."""

    DATA = "data"
    BEACON = "beacon"
    ATIM = "atim"
    ATIM_ACK = "atim_ack"  # unicast PSM: announcement acknowledgement
    ACK = "ack"            # unicast PSM: data acknowledgement


@dataclass(frozen=True)
class Packet:
    """An immutable frame.

    Attributes
    ----------
    kind:
        Frame type (data / beacon / ATIM).
    origin:
        Node id that originally generated the broadcast (the source for
        data packets; the transmitter itself for beacons and ATIMs).
    sender:
        Node id of the current transmitter (changes hop by hop).
    seqno:
        Source-assigned sequence number identifying the broadcast.  Nodes
        suppress duplicates on ``(origin, seqno)``.
    size_bytes:
        On-air size, including headers.
    updates:
        For code-distribution data packets: tuple of update ids carried
        (the ``k`` most recent at the source when the packet was built).
    hops:
        Number of MAC hops this copy has travelled from the origin.
    destination:
        Unicast destination node id; ``None`` for broadcast frames.  The
        channel delivers to every in-range listener either way (radio is
        physically broadcast); MACs filter on this field.
    uid:
        Globally unique per-transmission identifier (diagnostics only).
    """

    kind: PacketKind
    origin: int
    sender: int
    seqno: int
    size_bytes: int
    updates: Tuple[int, ...] = ()
    hops: int = 0
    destination: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)

    @property
    def broadcast_id(self) -> Tuple[int, int]:
        """The duplicate-suppression key ``(origin, seqno)``."""
        return (self.origin, self.seqno)

    def duration(self, bit_rate_bps: float) -> float:
        """On-air time in seconds at ``bit_rate_bps``."""
        check_positive("bit_rate_bps", bit_rate_bps)
        return self.size_bytes * 8.0 / bit_rate_bps

    @property
    def is_broadcast(self) -> bool:
        """True when the frame has no unicast destination."""
        return self.destination is None

    def forwarded_by(self, sender: int) -> "Packet":
        """A copy of this packet re-sent by ``sender``, one hop further."""
        return Packet(
            kind=self.kind,
            origin=self.origin,
            sender=sender,
            seqno=self.seqno,
            size_bytes=self.size_bytes,
            updates=self.updates,
            hops=self.hops + 1,
            destination=self.destination,
        )
