"""Radio propagation and link-loss models.

The paper's ns-2 study uses a fixed transmission range (the R in Eq. 13);
we reproduce that with a unit-disk model: a transmission is audible at
exactly the receivers within ``radio_range`` of the sender.  Interference
and collisions are handled by :mod:`repro.net.channel` on top of this.

:class:`LossModel` adds optional independent per-reception loss, used by the
test suite's failure-injection scenarios (it defaults to lossless, matching
the paper).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.util.validation import check_positive, check_probability

Position = Tuple[float, float]


class UnitDiskPropagation:
    """Deterministic disk-range propagation.

    A receiver hears a transmission iff it lies within ``radio_range`` of
    the transmitter.  ``carrier_sense_range`` (>= radio_range) governs how
    far away a transmission still holds the medium busy for CSMA; the
    default equals the radio range, the common simplification the paper's
    grid/density analysis relies on.
    """

    def __init__(
        self,
        radio_range: float,
        carrier_sense_range: Optional[float] = None,
    ) -> None:
        check_positive("radio_range", radio_range)
        if carrier_sense_range is None:
            carrier_sense_range = radio_range
        check_positive("carrier_sense_range", carrier_sense_range)
        if carrier_sense_range < radio_range:
            raise ValueError(
                "carrier_sense_range must be >= radio_range "
                f"({carrier_sense_range} < {radio_range})"
            )
        self.radio_range = radio_range
        self.carrier_sense_range = carrier_sense_range

    def in_reception_range(self, a: Position, b: Position) -> bool:
        """True when a transmission at ``a`` is decodable at ``b``."""
        return _distance_sq(a, b) <= self.radio_range**2

    def in_carrier_sense_range(self, a: Position, b: Position) -> bool:
        """True when a transmission at ``a`` is *audible* (busy medium) at ``b``."""
        return _distance_sq(a, b) <= self.carrier_sense_range**2


class LossModel:
    """Independent per-reception packet loss (failure injection).

    Each delivery attempt independently fails with ``loss_probability``.
    The default 0.0 reproduces the paper's setting where losses come only
    from collisions and sleeping receivers.
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.loss_probability = check_probability("loss_probability", loss_probability)
        self._rng = rng if rng is not None else random.Random()

    def delivers(self) -> bool:
        """Sample whether one reception survives the loss process."""
        if self.loss_probability == 0.0:
            return True
        return self._rng.random() >= self.loss_probability


def _distance_sq(a: Position, b: Position) -> float:
    return (a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2
