"""Node placement and connectivity.

Two topology families reproduce the paper's settings:

* :class:`GridTopology` -- a square lattice with 4-neighbour connectivity
  and no wrap-around, used throughout the Section 4 analysis (75x75 for the
  simulated analysis, 10x10 .. 40x40 for the percolation study).
* :class:`RandomTopology` -- N nodes placed uniformly at random in a square
  deployment area, connected by radio range R.  Density follows Eq. 13:
  ``delta = pi * R^2 * N / A``; like the paper we fix N and R and derive the
  area A from the requested density.

Both expose the same interface (:class:`Topology`): neighbour lists,
positions, BFS hop distances, and connectivity queries, so the simulators
and percolation machinery are topology-agnostic.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import check_positive, check_positive_int

Position = Tuple[float, float]


@dataclass(frozen=True)
class CSRAdjacency:
    """Flat compressed-sparse-row view of an undirected adjacency.

    ``indices[indptr[v]:indptr[v + 1]]`` are node ``v``'s neighbours in
    ascending order.  The vectorized kernels (frontier gathers in the ideal
    simulator, BFS sweeps, percolation edge shuffles) all index into these
    two arrays instead of walking per-node Python tuples.
    """

    #: Row offsets, shape ``(n_nodes + 1,)``.
    indptr: np.ndarray
    #: Concatenated neighbour lists, shape ``(2 * n_edges,)``.
    indices: np.ndarray
    #: Per-node degree, ``indptr[1:] - indptr[:-1]``.
    degrees: np.ndarray
    #: Undirected edge endpoints with ``edge_u < edge_v``, in the same
    #: node-major order :meth:`Topology.edges` reports.
    edge_u: np.ndarray
    edge_v: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.edge_u)

    @cached_property
    def padded(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(neighbors, valid)`` matrices of shape ``(n, max_degree)``.

        Row ``v`` holds ``v``'s neighbours in ascending order, padded with
        zeros where ``valid`` is ``False``.  One fancy-index into these
        gathers a whole frontier's neighbourhoods — cheaper than the CSR
        repeat/cumsum dance when degrees are small and uniform (grids,
        unit-disk graphs), which is the frontier kernel's per-batch case.

        Staleness guard: the matrices are built exactly once per
        adjacency, validated against the CSR arrays they were derived
        from, and returned *read-only* — a kernel scribbling into the
        shared cache (the way frontier buffers get reused) would
        otherwise corrupt every later broadcast on the same topology
        without any error.  Realizing the same scenario again (any
        process, any seed) rebuilds an equal matrix from its own CSR, so
        cached and fresh views can never diverge.
        """
        n = self.n_nodes
        width = int(self.degrees.max()) if n else 0
        neighbors = np.zeros((n, width), dtype=self.indices.dtype)
        valid = np.zeros((n, width), dtype=bool)
        if width:
            cols = np.arange(width)
            valid = cols < self.degrees[:, None]
            neighbors[valid] = self.indices
        if int(valid.sum()) != len(self.indices):
            raise AssertionError(
                "padded neighbour matrix is stale: "
                f"{int(valid.sum())} valid slots for {len(self.indices)} "
                "CSR entries — the adjacency arrays changed after caching"
            )
        neighbors.setflags(write=False)
        valid.setflags(write=False)
        return neighbors, valid

    def neighbors_of_many(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Gather the neighbour lists of ``nodes`` as one flat array.

        Returns ``(flat_neighbors, owners)`` where ``owners[i]`` is the
        position *within ``nodes``* whose adjacency produced
        ``flat_neighbors[i]``.  Entries appear in node-major order (all of
        ``nodes[0]``'s neighbours first, each row ascending), which is
        exactly the order the scalar simulator visits them in — the
        fast path's first-claim tie-breaking depends on that.
        """
        counts = self.degrees[nodes]
        total = int(counts.sum())
        owners = np.repeat(np.arange(len(nodes)), counts)
        if total == 0:
            return np.empty(0, dtype=self.indices.dtype), owners
        starts = self.indptr[nodes]
        # offsets within each row: 0..counts[k]-1, concatenated.
        boundaries = np.cumsum(counts) - counts
        offsets = np.arange(total) - np.repeat(boundaries, counts)
        return self.indices[np.repeat(starts, counts) + offsets], owners


def bucket_by_distance(
    shortest_hops: Sequence[Optional[int]],
) -> Dict[int, List[int]]:
    """Group node ids by their hop distance (``None`` entries are skipped).

    The shared backing for per-hop-bucket metric queries
    (:meth:`repro.ideal.simulator.CampaignResult.nodes_at_distance`,
    :class:`repro.apps.metrics.BroadcastMetrics`), built once per result
    instead of re-scanning the distance list for every bucket.
    """
    buckets: Dict[int, List[int]] = {}
    for node, dist in enumerate(shortest_hops):
        if dist is not None:
            buckets.setdefault(dist, []).append(node)
    return buckets


def area_for_density(delta: float, n_nodes: int, radio_range: float) -> float:
    """Deployment area A satisfying Eq. 13 for the requested density.

    ``delta = pi * R^2 * N / A``  =>  ``A = pi * R^2 * N / delta``.
    """
    check_positive("delta", delta)
    check_positive_int("n_nodes", n_nodes)
    check_positive("radio_range", radio_range)
    return math.pi * radio_range**2 * n_nodes / delta


def density_for_area(area: float, n_nodes: int, radio_range: float) -> float:
    """Density ``delta`` of ``n_nodes`` with range ``radio_range`` in ``area``."""
    check_positive("area", area)
    check_positive_int("n_nodes", n_nodes)
    check_positive("radio_range", radio_range)
    return math.pi * radio_range**2 * n_nodes / area


class Topology:
    """An immutable undirected connectivity graph with node positions.

    Node ids are the integers ``0 .. n-1``.  Subclasses populate the
    adjacency structure; all queries (BFS distances, components, degree
    statistics) live here.
    """

    def __init__(self, positions: Sequence[Position], adjacency: Sequence[Iterable[int]]) -> None:
        if len(positions) != len(adjacency):
            raise ValueError(
                f"positions ({len(positions)}) and adjacency ({len(adjacency)}) "
                "must have the same length"
            )
        self._positions: List[Position] = [tuple(p) for p in positions]  # type: ignore[misc]
        n = len(self._positions)
        raw_rows = [list(nbrs) for nbrs in adjacency]
        counts = np.fromiter((len(r) for r in raw_rows), dtype=np.int64, count=n)
        flat = np.fromiter(
            (nbr for row in raw_rows for nbr in row),
            dtype=np.int64,
            count=int(counts.sum()),
        )
        owners = np.repeat(np.arange(n, dtype=np.int64), counts)
        if flat.size and (flat.min() < 0 or flat.max() >= n or (flat == owners).any()):
            self._raise_invalid_adjacency(raw_rows)
        # Sort + dedup every row at once: the combined key orders entries
        # node-major with neighbours ascending, uniqueness collapses repeats.
        combined = np.unique(owners * np.int64(n) + flat) if n else flat
        owners = combined // n if n else owners
        nbrs = combined % n if n else flat
        reverse = np.sort(nbrs * np.int64(n) + owners) if n else combined
        if not np.array_equal(combined, reverse):
            self._raise_invalid_adjacency(raw_rows)
        degrees = np.bincount(owners, minlength=n).astype(np.int64)
        indptr = np.concatenate(([0], np.cumsum(degrees)))
        forward = owners < nbrs
        self._csr = CSRAdjacency(
            indptr=indptr,
            indices=nbrs,
            degrees=degrees,
            edge_u=owners[forward],
            edge_v=nbrs[forward],
        )
        flat_list = nbrs.tolist()
        bounds = indptr.tolist()
        self._neighbors: List[Tuple[int, ...]] = [
            tuple(flat_list[bounds[v] : bounds[v + 1]]) for v in range(n)
        ]
        #: Per-source BFS results; topologies are immutable so entries
        #: never invalidate.  Arrays are marked read-only before caching.
        self._hop_cache: Dict[int, np.ndarray] = {}

    def _raise_invalid_adjacency(self, raw_rows: Sequence[Sequence[int]]) -> None:
        """Re-scan a rejected adjacency slowly to name the offending node."""
        normalized = [tuple(sorted(set(nbrs))) for nbrs in raw_rows]
        for node, nbrs in enumerate(normalized):
            for nbr in nbrs:
                if not 0 <= nbr < len(normalized):
                    raise ValueError(f"node {node} lists out-of-range neighbor {nbr}")
                if nbr == node:
                    raise ValueError(f"node {node} lists itself as a neighbor")
                if node not in normalized[nbr]:
                    raise ValueError(
                        f"adjacency is not symmetric: {node} -> {nbr} but not back"
                    )
        raise AssertionError("vectorized validation rejected a valid adjacency")

    @property
    def csr(self) -> CSRAdjacency:
        """The flat array view of the adjacency (built at construction)."""
        return self._csr

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self._positions)

    def nodes(self) -> range:
        """Iterable of all node ids."""
        return range(self.n_nodes)

    def position(self, node: int) -> Position:
        """(x, y) coordinates of ``node``."""
        return self._positions[node]

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Sorted tuple of ``node``'s one-hop neighbours."""
        return self._neighbors[node]

    def degree(self, node: int) -> int:
        """Number of one-hop neighbours of ``node``."""
        return len(self._neighbors[node])

    def edges(self) -> List[Tuple[int, int]]:
        """All undirected edges as ``(u, v)`` pairs with ``u < v``."""
        return list(zip(self._csr.edge_u.tolist(), self._csr.edge_v.tolist()))

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self._csr.n_edges

    def average_degree(self) -> float:
        """Mean node degree (the paper's expected one-hop neighbour count)."""
        if self.n_nodes == 0:
            return 0.0
        return float(self._csr.degrees.mean())

    def hop_distance_array(self, source: int) -> np.ndarray:
        """BFS hop counts from ``source`` as a read-only int64 array.

        Unreachable nodes get ``-1``.  Computed once per source with a
        frontier-at-a-time gather over the CSR view and memoized for the
        topology's lifetime (topologies are immutable), so the figure
        code's repeated per-hop-bucket queries never re-run BFS.
        """
        self._check_node(source)
        cached = self._hop_cache.get(source)
        if cached is not None:
            return cached
        distances = np.full(self.n_nodes, -1, dtype=np.int64)
        distances[source] = 0
        frontier = np.array([source], dtype=np.int64)
        hop = 0
        while frontier.size:
            flat, _ = self._csr.neighbors_of_many(frontier)
            candidates = np.unique(flat)
            frontier = candidates[distances[candidates] < 0]
            hop += 1
            distances[frontier] = hop
        distances.flags.writeable = False
        self._hop_cache[source] = distances
        return distances

    def hop_distances_from(self, source: int) -> List[Optional[int]]:
        """BFS hop count from ``source`` to every node.

        Unreachable nodes get ``None``.  This is the paper's "d", the
        shortest distance used to bucket nodes for the latency figures
        (2-hop, 5-hop, 20-hop, 60-hop).
        """
        return [
            None if d < 0 else d for d in self.hop_distance_array(source).tolist()
        ]

    def nodes_at_hop_distance(self, source: int, d: int) -> List[int]:
        """Node ids exactly ``d`` hops from ``source``."""
        return np.nonzero(self.hop_distance_array(source) == d)[0].tolist()

    def is_connected(self) -> bool:
        """True when every node is reachable from node 0."""
        if self.n_nodes == 0:
            return True
        return bool((self.hop_distance_array(0) >= 0).all())

    def largest_component(self) -> List[int]:
        """Node ids of the largest connected component."""
        seen = [False] * self.n_nodes
        best: List[int] = []
        for start in range(self.n_nodes):
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for nbr in self._neighbors[node]:
                    if not seen[nbr]:
                        seen[nbr] = True
                        component.append(nbr)
                        frontier.append(nbr)
            if len(component) > len(best):
                best = component
        return best

    def euclidean_distance(self, a: int, b: int) -> float:
        """Straight-line distance between nodes ``a`` and ``b``."""
        (xa, ya), (xb, yb) = self._positions[a], self._positions[b]
        return math.hypot(xa - xb, ya - yb)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range [0, {self.n_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_nodes={self.n_nodes}, n_edges={self.n_edges})"


class GridTopology(Topology):
    """Square lattice with 4-neighbour connectivity and no wrap-around.

    Node ``(row, col)`` has id ``row * cols + col`` and unit spacing, so
    Euclidean and Manhattan geometry line up with hop counts.
    """

    #: Whether lattice neighbours wrap around the edges (torus subclass).
    _wrap = False

    def __init__(self, rows: int, cols: Optional[int] = None) -> None:
        check_positive_int("rows", rows)
        if cols is None:
            cols = rows
        check_positive_int("cols", cols)
        self.rows = rows
        self.cols = cols
        positions: List[Position] = []
        adjacency: List[List[int]] = []
        for row in range(rows):
            for col in range(cols):
                positions.append((float(col), float(row)))
                adjacency.append(self._lattice_neighbors(row, col))
        super().__init__(positions, adjacency)

    def _lattice_neighbors(self, row: int, col: int) -> List[int]:
        """Ids of the 4-neighbourhood of ``(row, col)`` (wrap-aware)."""
        rows, cols = self.rows, self.cols
        coords = set()
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if self._wrap:
                r, c = r % rows, c % cols
            elif not (0 <= r < rows and 0 <= c < cols):
                continue
            if (r, c) != (row, col):  # degenerate wrap on a 1-wide axis
                coords.add((r, c))
        return [r * cols + c for r, c in coords]

    def node_id(self, row: int, col: int) -> int:
        """Node id of grid coordinate ``(row, col)``."""
        if not 0 <= row < self.rows or not 0 <= col < self.cols:
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Grid coordinate ``(row, col)`` of ``node``."""
        self._check_node(node)
        return divmod(node, self.cols)

    def center_node(self) -> int:
        """The node nearest the grid centre (the paper's broadcast source)."""
        return self.node_id(self.rows // 2, self.cols // 2)


class TorusGridTopology(GridTopology):
    """Square lattice whose rows and columns wrap around (a torus).

    Every node has degree 4 (no boundary), which removes the edge effects
    of the open grid: broadcast reachability and percolation thresholds on
    the torus isolate the bulk behaviour the paper's analysis reasons
    about.  Positions keep the flat ``(col, row)`` embedding, so Euclidean
    geometry reflects the unwrapped lattice while hop distances wrap.
    """

    _wrap = True


class GridWithHolesTopology(GridTopology):
    """A grid with rectangular failed regions carved out.

    Models a deployment where contiguous areas of sensors are destroyed
    (fire, flooding, adversarial removal): the surviving nodes keep their
    lattice coordinates but the holes force broadcasts to route around
    them.  Node ids are re-compacted over the survivors.

    Parameters
    ----------
    rows, cols:
        Lattice shape before removal (``cols`` defaults to ``rows``).
    holes:
        Rectangles ``(top_row, left_col, height, width)``; nodes inside
        any rectangle are removed.  Rectangles may overlap each other and
        the boundary (out-of-range cells are ignored).
    """

    def __init__(
        self,
        rows: int,
        cols: Optional[int] = None,
        holes: Sequence[Tuple[int, int, int, int]] = (),
    ) -> None:
        check_positive_int("rows", rows)
        if cols is None:
            cols = rows
        check_positive_int("cols", cols)
        removed = np.zeros((rows, cols), dtype=bool)
        for top, left, height, width in holes:
            if height <= 0 or width <= 0:
                raise ValueError(
                    f"hole ({top}, {left}, {height}, {width}) has empty extent"
                )
            # Clamp both ends: a negative stop would wrap around and
            # silently remove cells on the far side of the grid.
            removed[
                max(0, top) : max(0, top + height),
                max(0, left) : max(0, left + width),
            ] = True
        if removed.all():
            raise ValueError("holes remove every node of the grid")
        self.rows = rows
        self.cols = cols
        self.holes = tuple(tuple(hole) for hole in holes)
        # Compacted ids in row-major order over the survivors.
        survivor_ids = np.full(rows * cols, -1, dtype=np.int64)
        keep = ~removed.reshape(-1)
        survivor_ids[keep] = np.arange(int(keep.sum()))
        self._survivor_ids = survivor_ids
        positions: List[Position] = []
        adjacency: List[List[int]] = []
        coordinates: List[Tuple[int, int]] = []
        for row in range(rows):
            for col in range(cols):
                if removed[row, col]:
                    continue
                positions.append((float(col), float(row)))
                coordinates.append((row, col))
                nbrs = []
                for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                    r, c = row + dr, col + dc
                    if 0 <= r < rows and 0 <= c < cols and not removed[r, c]:
                        nbrs.append(int(survivor_ids[r * cols + c]))
                adjacency.append(nbrs)
        self._coordinates = coordinates
        Topology.__init__(self, positions, adjacency)

    def node_id(self, row: int, col: int) -> int:
        """Compacted id of surviving coordinate ``(row, col)``."""
        if not 0 <= row < self.rows or not 0 <= col < self.cols:
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols} grid")
        node = int(self._survivor_ids[row * self.cols + col])
        if node < 0:
            raise IndexError(f"({row}, {col}) was removed by a hole")
        return node

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Lattice coordinate ``(row, col)`` of surviving ``node``."""
        self._check_node(node)
        return self._coordinates[node]

    def center_node(self) -> int:
        """The surviving node nearest the geometric grid centre."""
        cx = (self.cols - 1) / 2.0
        cy = (self.rows - 1) / 2.0
        return min(
            range(self.n_nodes),
            key=lambda v: (
                (self._positions[v][0] - cx) ** 2 + (self._positions[v][1] - cy) ** 2,
                v,
            ),
        )


class ClusteredRandomTopology(Topology):
    """Gaussian clusters of nodes bridged by unit-disk connectivity.

    Deployments in practice are rarely uniform: sensors are dropped in
    batches, so nodes form dense clusters with sparse bridges between
    them — the regime where broadcast reliability is most sensitive to
    p/q (intra-cluster redundancy is high, inter-cluster links are few).

    Cluster centres sit evenly on a ring around the deployment centre
    (adjacent centres within bridging range for sane defaults), and each
    cluster's nodes are drawn from an isotropic Gaussian around its
    centre, clipped to the deployment square.

    Parameters
    ----------
    n_clusters / cluster_size:
        Number of clusters and nodes per cluster (``n = product``).
    radio_range:
        Unit-disk connectivity radius.
    spread:
        Standard deviation of the per-cluster Gaussian.
    extent:
        Side of the deployment square; the ring of centres has radius
        ``0.3 * extent``.
    rng:
        Source of placement randomness (pass a seeded ``random.Random``).
    """

    def __init__(
        self,
        n_clusters: int,
        cluster_size: int,
        radio_range: float,
        spread: float,
        extent: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        check_positive_int("n_clusters", n_clusters)
        check_positive_int("cluster_size", cluster_size)
        check_positive("radio_range", radio_range)
        check_positive("spread", spread)
        check_positive("extent", extent)
        rng = rng if rng is not None else random.Random()
        self.n_clusters = n_clusters
        self.cluster_size = cluster_size
        self.radio_range = radio_range
        self.spread = spread
        self.extent = extent
        half = extent / 2.0
        ring = 0.3 * extent
        centers = [
            (
                half + ring * math.cos(2.0 * math.pi * k / n_clusters),
                half + ring * math.sin(2.0 * math.pi * k / n_clusters),
            )
            for k in range(n_clusters)
        ]
        self.centers: Tuple[Position, ...] = tuple(centers)
        positions: List[Position] = []
        cluster_of: List[int] = []
        for k, (cx, cy) in enumerate(centers):
            for _ in range(cluster_size):
                x = min(max(cx + rng.gauss(0.0, spread), 0.0), extent)
                y = min(max(cy + rng.gauss(0.0, spread), 0.0), extent)
                positions.append((x, y))
                cluster_of.append(k)
        self.cluster_of: Tuple[int, ...] = tuple(cluster_of)
        adjacency = _disk_adjacency(positions, radio_range)
        super().__init__(positions, adjacency)


class RandomTopology(Topology):
    """Uniform-random deployment in a square, unit-disk connectivity.

    Parameters
    ----------
    n_nodes:
        Number of nodes (the paper fixes N = 50).
    radio_range:
        Transmission range R; any pair within R is connected.
    density:
        Target density ``delta`` from Eq. 13.  The deployment area is
        derived as ``A = pi R^2 N / delta`` (the paper's procedure: "we
        fixed N and changed A to get the desired delta").
    rng:
        Source of placement randomness (pass a seeded ``random.Random``).
    """

    def __init__(
        self,
        n_nodes: int,
        radio_range: float,
        density: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        check_positive_int("n_nodes", n_nodes)
        check_positive("radio_range", radio_range)
        check_positive("density", density)
        rng = rng if rng is not None else random.Random()
        self.radio_range = radio_range
        self.density = density
        self.area = area_for_density(density, n_nodes, radio_range)
        self.side = math.sqrt(self.area)
        positions = [
            (rng.uniform(0.0, self.side), rng.uniform(0.0, self.side))
            for _ in range(n_nodes)
        ]
        adjacency = _disk_adjacency(positions, radio_range)
        super().__init__(positions, adjacency)

    @classmethod
    def connected(
        cls,
        n_nodes: int,
        radio_range: float,
        density: float,
        rng: random.Random,
        max_attempts: int = 200,
    ) -> "RandomTopology":
        """Sample deployments until one is fully connected.

        Low densities occasionally yield partitioned deployments; the paper
        implicitly studies connected scenarios (latency and reliability are
        measured to reachable nodes).  Raises :class:`RuntimeError` after
        ``max_attempts`` failures so infeasible parameters fail loudly
        (with how close the attempts came) instead of retrying forever.
        """
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be > 0, got {max_attempts}")
        best_component = 0
        for _ in range(max_attempts):
            topology = cls(n_nodes, radio_range, density, rng)
            if topology.is_connected():
                return topology
            best_component = max(best_component, len(topology.largest_component()))
        raise RuntimeError(
            f"no connected deployment found in {max_attempts} attempts "
            f"(n={n_nodes}, range={radio_range}, density={density}); "
            f"best attempt connected {best_component}/{n_nodes} nodes — "
            "raise the density or max_attempts, or drop the connectivity "
            "requirement"
        )


#: Below this size the dense vectorized distance matrix beats the
#: Python-level spatial hash; above it the hash's O(n) wins.  512 nodes
#: peaks around ~10 MB of transient n^2 temporaries — the dense path
#: must stay cheap in memory as well as time.
_DENSE_DISK_LIMIT = 512


def _disk_adjacency(
    positions: Sequence[Position], radio_range: float
) -> List[List[int]]:
    """Adjacency lists for the unit-disk graph over ``positions``.

    Small deployments (the paper's N=50 random scenarios) use one
    vectorized pairwise-distance comparison that feeds the CSR build
    directly; large ones fall back to a uniform spatial hash so
    construction stays O(n) for sparse graphs.
    """
    n = len(positions)
    if n <= _DENSE_DISK_LIMIT:
        if n == 0:
            return []
        xy = np.asarray(positions, dtype=np.float64)
        diff = xy[:, None, :] - xy[None, :, :]
        within = (diff * diff).sum(axis=2) <= radio_range * radio_range
        np.fill_diagonal(within, False)
        rows, cols = np.nonzero(within)
        adjacency: List[List[int]] = [[] for _ in range(n)]
        for u, v in zip(rows.tolist(), cols.tolist()):
            adjacency[u].append(v)
        return adjacency
    return _disk_adjacency_hashed(positions, radio_range)


def _disk_adjacency_hashed(
    positions: Sequence[Position], radio_range: float
) -> List[List[int]]:
    """Spatial-hash unit-disk adjacency for large deployments."""
    cell = radio_range
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for idx, (x, y) in enumerate(positions):
        buckets.setdefault((int(x // cell), int(y // cell)), []).append(idx)
    range_sq = radio_range * radio_range
    adjacency: List[List[int]] = [[] for _ in positions]
    for (cx, cy), members in buckets.items():
        neighbor_cells = [
            (cx + dx, cy + dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
        ]
        for idx in members:
            x, y = positions[idx]
            for cell_key in neighbor_cells:
                for other in buckets.get(cell_key, ()):
                    if other <= idx:
                        continue
                    ox, oy = positions[other]
                    if (x - ox) ** 2 + (y - oy) ** 2 <= range_sq:
                        adjacency[idx].append(other)
                        adjacency[other].append(idx)
    return adjacency
