"""Node placement and connectivity.

Two topology families reproduce the paper's settings:

* :class:`GridTopology` -- a square lattice with 4-neighbour connectivity
  and no wrap-around, used throughout the Section 4 analysis (75x75 for the
  simulated analysis, 10x10 .. 40x40 for the percolation study).
* :class:`RandomTopology` -- N nodes placed uniformly at random in a square
  deployment area, connected by radio range R.  Density follows Eq. 13:
  ``delta = pi * R^2 * N / A``; like the paper we fix N and R and derive the
  area A from the requested density.

Both expose the same interface (:class:`Topology`): neighbour lists,
positions, BFS hop distances, and connectivity queries, so the simulators
and percolation machinery are topology-agnostic.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.validation import check_positive, check_positive_int

Position = Tuple[float, float]


def area_for_density(delta: float, n_nodes: int, radio_range: float) -> float:
    """Deployment area A satisfying Eq. 13 for the requested density.

    ``delta = pi * R^2 * N / A``  =>  ``A = pi * R^2 * N / delta``.
    """
    check_positive("delta", delta)
    check_positive_int("n_nodes", n_nodes)
    check_positive("radio_range", radio_range)
    return math.pi * radio_range**2 * n_nodes / delta


def density_for_area(area: float, n_nodes: int, radio_range: float) -> float:
    """Density ``delta`` of ``n_nodes`` with range ``radio_range`` in ``area``."""
    check_positive("area", area)
    check_positive_int("n_nodes", n_nodes)
    check_positive("radio_range", radio_range)
    return math.pi * radio_range**2 * n_nodes / area


class Topology:
    """An immutable undirected connectivity graph with node positions.

    Node ids are the integers ``0 .. n-1``.  Subclasses populate the
    adjacency structure; all queries (BFS distances, components, degree
    statistics) live here.
    """

    def __init__(self, positions: Sequence[Position], adjacency: Sequence[Iterable[int]]) -> None:
        if len(positions) != len(adjacency):
            raise ValueError(
                f"positions ({len(positions)}) and adjacency ({len(adjacency)}) "
                "must have the same length"
            )
        self._positions: List[Position] = [tuple(p) for p in positions]  # type: ignore[misc]
        self._neighbors: List[Tuple[int, ...]] = [
            tuple(sorted(set(nbrs))) for nbrs in adjacency
        ]
        for node, nbrs in enumerate(self._neighbors):
            for nbr in nbrs:
                if not 0 <= nbr < len(self._neighbors):
                    raise ValueError(f"node {node} lists out-of-range neighbor {nbr}")
                if nbr == node:
                    raise ValueError(f"node {node} lists itself as a neighbor")
                if node not in self._neighbors[nbr]:
                    raise ValueError(
                        f"adjacency is not symmetric: {node} -> {nbr} but not back"
                    )

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self._positions)

    def nodes(self) -> range:
        """Iterable of all node ids."""
        return range(self.n_nodes)

    def position(self, node: int) -> Position:
        """(x, y) coordinates of ``node``."""
        return self._positions[node]

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Sorted tuple of ``node``'s one-hop neighbours."""
        return self._neighbors[node]

    def degree(self, node: int) -> int:
        """Number of one-hop neighbours of ``node``."""
        return len(self._neighbors[node])

    def edges(self) -> List[Tuple[int, int]]:
        """All undirected edges as ``(u, v)`` pairs with ``u < v``."""
        result = []
        for node, nbrs in enumerate(self._neighbors):
            for nbr in nbrs:
                if node < nbr:
                    result.append((node, nbr))
        return result

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._neighbors) // 2

    def average_degree(self) -> float:
        """Mean node degree (the paper's expected one-hop neighbour count)."""
        if self.n_nodes == 0:
            return 0.0
        return sum(len(nbrs) for nbrs in self._neighbors) / self.n_nodes

    def hop_distances_from(self, source: int) -> List[Optional[int]]:
        """BFS hop count from ``source`` to every node.

        Unreachable nodes get ``None``.  This is the paper's "d", the
        shortest distance used to bucket nodes for the latency figures
        (2-hop, 5-hop, 20-hop, 60-hop).
        """
        self._check_node(source)
        distances: List[Optional[int]] = [None] * self.n_nodes
        distances[source] = 0
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            next_hop = distances[node] + 1  # type: ignore[operator]
            for nbr in self._neighbors[node]:
                if distances[nbr] is None:
                    distances[nbr] = next_hop
                    frontier.append(nbr)
        return distances

    def nodes_at_hop_distance(self, source: int, d: int) -> List[int]:
        """Node ids exactly ``d`` hops from ``source``."""
        return [
            node
            for node, dist in enumerate(self.hop_distances_from(source))
            if dist == d
        ]

    def is_connected(self) -> bool:
        """True when every node is reachable from node 0."""
        if self.n_nodes == 0:
            return True
        return all(d is not None for d in self.hop_distances_from(0))

    def largest_component(self) -> List[int]:
        """Node ids of the largest connected component."""
        seen = [False] * self.n_nodes
        best: List[int] = []
        for start in range(self.n_nodes):
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for nbr in self._neighbors[node]:
                    if not seen[nbr]:
                        seen[nbr] = True
                        component.append(nbr)
                        frontier.append(nbr)
            if len(component) > len(best):
                best = component
        return best

    def euclidean_distance(self, a: int, b: int) -> float:
        """Straight-line distance between nodes ``a`` and ``b``."""
        (xa, ya), (xb, yb) = self._positions[a], self._positions[b]
        return math.hypot(xa - xb, ya - yb)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range [0, {self.n_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_nodes={self.n_nodes}, n_edges={self.n_edges})"


class GridTopology(Topology):
    """Square lattice with 4-neighbour connectivity and no wrap-around.

    Node ``(row, col)`` has id ``row * cols + col`` and unit spacing, so
    Euclidean and Manhattan geometry line up with hop counts.
    """

    def __init__(self, rows: int, cols: Optional[int] = None) -> None:
        check_positive_int("rows", rows)
        if cols is None:
            cols = rows
        check_positive_int("cols", cols)
        self.rows = rows
        self.cols = cols
        positions: List[Position] = []
        adjacency: List[List[int]] = []
        for row in range(rows):
            for col in range(cols):
                positions.append((float(col), float(row)))
                nbrs: List[int] = []
                if row > 0:
                    nbrs.append((row - 1) * cols + col)
                if row < rows - 1:
                    nbrs.append((row + 1) * cols + col)
                if col > 0:
                    nbrs.append(row * cols + col - 1)
                if col < cols - 1:
                    nbrs.append(row * cols + col + 1)
                adjacency.append(nbrs)
        super().__init__(positions, adjacency)

    def node_id(self, row: int, col: int) -> int:
        """Node id of grid coordinate ``(row, col)``."""
        if not 0 <= row < self.rows or not 0 <= col < self.cols:
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Grid coordinate ``(row, col)`` of ``node``."""
        self._check_node(node)
        return divmod(node, self.cols)

    def center_node(self) -> int:
        """The node nearest the grid centre (the paper's broadcast source)."""
        return self.node_id(self.rows // 2, self.cols // 2)


class RandomTopology(Topology):
    """Uniform-random deployment in a square, unit-disk connectivity.

    Parameters
    ----------
    n_nodes:
        Number of nodes (the paper fixes N = 50).
    radio_range:
        Transmission range R; any pair within R is connected.
    density:
        Target density ``delta`` from Eq. 13.  The deployment area is
        derived as ``A = pi R^2 N / delta`` (the paper's procedure: "we
        fixed N and changed A to get the desired delta").
    rng:
        Source of placement randomness (pass a seeded ``random.Random``).
    """

    def __init__(
        self,
        n_nodes: int,
        radio_range: float,
        density: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        check_positive_int("n_nodes", n_nodes)
        check_positive("radio_range", radio_range)
        check_positive("density", density)
        rng = rng if rng is not None else random.Random()
        self.radio_range = radio_range
        self.density = density
        self.area = area_for_density(density, n_nodes, radio_range)
        self.side = math.sqrt(self.area)
        positions = [
            (rng.uniform(0.0, self.side), rng.uniform(0.0, self.side))
            for _ in range(n_nodes)
        ]
        adjacency = _disk_adjacency(positions, radio_range)
        super().__init__(positions, adjacency)

    @classmethod
    def connected(
        cls,
        n_nodes: int,
        radio_range: float,
        density: float,
        rng: random.Random,
        max_attempts: int = 200,
    ) -> "RandomTopology":
        """Sample deployments until one is fully connected.

        Low densities occasionally yield partitioned deployments; the paper
        implicitly studies connected scenarios (latency and reliability are
        measured to reachable nodes).  Raises :class:`RuntimeError` after
        ``max_attempts`` failures so pathological parameters fail loudly.
        """
        for _ in range(max_attempts):
            topology = cls(n_nodes, radio_range, density, rng)
            if topology.is_connected():
                return topology
        raise RuntimeError(
            f"no connected deployment found in {max_attempts} attempts "
            f"(n={n_nodes}, range={radio_range}, density={density})"
        )


def _disk_adjacency(
    positions: Sequence[Position], radio_range: float
) -> List[List[int]]:
    """Adjacency lists for the unit-disk graph over ``positions``.

    Uses a uniform spatial hash so construction is O(n) for the sparse
    deployments we simulate rather than O(n^2).
    """
    cell = radio_range
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for idx, (x, y) in enumerate(positions):
        buckets.setdefault((int(x // cell), int(y // cell)), []).append(idx)
    range_sq = radio_range * radio_range
    adjacency: List[List[int]] = [[] for _ in positions]
    for (cx, cy), members in buckets.items():
        neighbor_cells = [
            (cx + dx, cy + dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
        ]
        for idx in members:
            x, y = positions[idx]
            for cell_key in neighbor_cells:
                for other in buckets.get(cell_key, ()):
                    if other <= idx:
                        continue
                    ox, oy = positions[other]
                    if (x - ox) ** 2 + (y - oy) ** 2 <= range_sq:
                        adjacency[idx].append(other)
                        adjacency[other].append(idx)
    return adjacency
