"""Packet-level tracing (the reproduction's ns-2 trace file).

ns-2 debugging workflows revolve around the trace file: one line per
MAC-level event.  :class:`PacketTracer` provides the same capability for
the detailed simulator — attach one to a
:class:`~repro.net.channel.Channel` and every transmission, clean
reception, collision and asleep-miss is recorded with its packet identity,
then query or dump it after the run.

Events
------
``TX``    a frame started transmitting;
``RX``    a frame was cleanly received;
``COLL``  a frame was corrupted by overlap at this receiver;
``MISS``  a frame found this receiver asleep/deaf;
``DROP``  a frame was lost to the injected random-loss process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.net.packet import Packet


@dataclass(frozen=True)
class TraceRecord:
    """One MAC-level event."""

    time: float
    event: str  # TX / RX / COLL / MISS / DROP
    node: int   # transmitter for TX, receiver otherwise
    kind: str   # data / atim / beacon
    origin: int
    seqno: int
    sender: int
    uid: int

    def format(self) -> str:
        """ns-2-style single-line rendering."""
        return (
            f"{self.time:.6f} {self.event:<4} node={self.node} "
            f"{self.kind} origin={self.origin} seq={self.seqno} "
            f"from={self.sender} uid={self.uid}"
        )


class PacketTracer:
    """Accumulates :class:`TraceRecord` entries during a run.

    Parameters
    ----------
    max_records:
        Hard cap guarding against unbounded memory in long simulations;
        recording silently stops at the cap and :attr:`truncated` reports
        it (a trace that silently drops its *beginning* would be worse).
    """

    def __init__(self, max_records: int = 1_000_000) -> None:
        if max_records <= 0:
            raise ValueError(f"max_records must be > 0, got {max_records}")
        self._records: List[TraceRecord] = []
        self._max_records = max_records
        self.truncated = False

    def record(self, time: float, event: str, node: int, packet: Packet) -> None:
        """Append one event (called by the channel)."""
        if len(self._records) >= self._max_records:
            self.truncated = True
            return
        self._records.append(
            TraceRecord(
                time=time,
                event=event,
                node=node,
                kind=packet.kind.value,
                origin=packet.origin,
                seqno=packet.seqno,
                sender=packet.sender,
                uid=packet.uid,
            )
        )

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Tuple[TraceRecord, ...]:
        """All records in event order."""
        return tuple(self._records)

    def by_event(self, event: str) -> List[TraceRecord]:
        """All records of one event type (``"TX"``, ``"RX"``, ...)."""
        return [r for r in self._records if r.event == event]

    def by_node(self, node: int) -> List[TraceRecord]:
        """Everything seen or sent by one node."""
        return [r for r in self._records if r.node == node]

    def by_broadcast(self, origin: int, seqno: int) -> List[TraceRecord]:
        """The life of one broadcast across the whole network."""
        return [
            r for r in self._records if r.origin == origin and r.seqno == seqno
        ]

    def lines(self) -> Iterator[str]:
        """Formatted trace lines, one per event."""
        return (record.format() for record in self._records)

    def dump(self) -> str:
        """The whole trace as one string (tests, small runs)."""
        return "\n".join(self.lines())
