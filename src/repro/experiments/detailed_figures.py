"""Figures 13-18 — the Section 5 detailed-simulator study.

Each figure point averages several independent scenarios (deployment,
source, traffic and coins all re-sampled per run), matching the paper's
"each data point is averaged over ten runs".  The q-sweep figures (13-16)
and the density-sweep figures (17-18) are each one declarative
:class:`~repro.runners.spec.CampaignSpec`, so the whole family shares its
underlying runs through the campaign runner's memo and disk cache, and
fans out over processes under ``--jobs N``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, Series
from repro.ideal.simulator import SchedulingMode
from repro.runners import CampaignResult, CampaignSpec, run_campaign
from repro.runners.points import (  # noqa: F401  (back-compat re-exports)
    DetailedPointMetrics,
    _detailed_run,
)

MetricFn = Callable[[DetailedPointMetrics], Optional[float]]

#: Table 2's default density, used by the q-sweep figures (13-16).
_DEFAULT_DENSITY = 10.0
#: Table 2's default q, used by the density-sweep figures (17-18).
_DEFAULT_Q = 0.25


def q_sweep_campaign(scale: Scale, density: float = _DEFAULT_DENSITY) -> CampaignSpec:
    """The Figures 13-16 sweep: (p, q) product plus the two baselines."""
    return CampaignSpec.build(
        kind="detailed",
        axes={"p": scale.detailed_p_values, "q": scale.detailed_q_values},
        fixed={
            "density": density,
            "mode": SchedulingMode.PSM_PBBF.value,
            "duration": scale.duration,
            "scheduler": "psm",
        },
        extra_points=(
            {"p": 0.0, "q": 0.0},
            {"p": 1.0, "q": 1.0, "mode": SchedulingMode.ALWAYS_ON.value},
        ),
        seed_params=("p", "q", "density", "mode"),
        n_seeds=scale.detailed_runs,
        base_seed=scale.base_seed,
        seed_with_run_index=True,
    )


def density_sweep_campaign(scale: Scale, q: float = _DEFAULT_Q) -> CampaignSpec:
    """The Figures 17-18 sweep: density on x, q fixed at Table 2's 0.25."""
    baselines = tuple(
        {"p": 0.0, "q": 0.0, "density": density} for density in scale.densities
    ) + tuple(
        {
            "p": 1.0,
            "q": 1.0,
            "density": density,
            "mode": SchedulingMode.ALWAYS_ON.value,
        }
        for density in scale.densities
    )
    return CampaignSpec.build(
        kind="detailed",
        axes={"p": scale.detailed_p_values, "density": scale.densities},
        fixed={
            "q": q,
            "mode": SchedulingMode.PSM_PBBF.value,
            "duration": scale.duration,
            "scheduler": "psm",
        },
        extra_points=baselines,
        seed_params=("p", "q", "density", "mode"),
        n_seeds=scale.detailed_runs,
        base_seed=scale.base_seed,
        seed_with_run_index=True,
    )


def _q_sweep(
    scale: Scale, metric: MetricFn, density: float = _DEFAULT_DENSITY
) -> Tuple[Series, ...]:
    """The Figures 13-16 layout: PBBF-p lines over q, plus two baselines."""
    campaign = run_campaign(q_sweep_campaign(scale, density))
    series: List[Series] = []
    for p in scale.detailed_p_values:
        points = tuple(
            (q, campaign.mean_metric(metric, p=p, q=q))
            for q in scale.detailed_q_values
        )
        series.append(Series(label=f"PBBF-{p:g}", points=points))
    psm = campaign.mean_metric(metric, p=0.0, q=0.0)
    series.append(
        Series(label="PSM", points=tuple((q, psm) for q in scale.detailed_q_values))
    )
    no_psm = campaign.mean_metric(
        metric, p=1.0, q=1.0, mode=SchedulingMode.ALWAYS_ON.value
    )
    series.append(
        Series(
            label="NO PSM",
            points=tuple((q, no_psm) for q in scale.detailed_q_values),
        )
    )
    return tuple(series)


def _density_sweep(
    scale: Scale, metric: MetricFn, q: float = _DEFAULT_Q
) -> Tuple[Series, ...]:
    """The Figures 17-18 layout: one point per (protocol, density)."""
    campaign = run_campaign(density_sweep_campaign(scale, q))

    def density_series(label: str, **overrides) -> Series:
        return Series(
            label=label,
            points=tuple(
                (density, campaign.mean_metric(metric, density=density, **overrides))
                for density in scale.densities
            ),
        )

    series: List[Series] = [
        density_series(f"PBBF-{p:g}", p=p) for p in scale.detailed_p_values
    ]
    series.append(density_series("PSM", p=0.0, q=0.0))
    series.append(
        density_series(
            "NO PSM", p=1.0, q=1.0, mode=SchedulingMode.ALWAYS_ON.value
        )
    )
    return tuple(series)


def run_fig13(scale: Scale) -> ExperimentResult:
    """Average per-node energy per update vs q (detailed simulator)."""
    return ExperimentResult(
        experiment_id="fig13",
        title="Average energy consumption (detailed, N=50, delta=10)",
        x_label="q",
        y_label="joules consumed / update (per node)",
        series=_q_sweep(scale, lambda m: m.joules_per_update_per_node),
        expectation=(
            "PSM saves roughly 2 J per update over NO PSM; PBBF's energy "
            "grows linearly with q and overlaps across p values (q "
            "dominates p for energy)."
        ),
    )


def run_fig14(scale: Scale) -> ExperimentResult:
    """2-hop average update latency vs q."""
    return ExperimentResult(
        experiment_id="fig14",
        title="2-hop average update latency (detailed)",
        x_label="q",
        y_label="mean latency at 2-hop nodes (s)",
        series=_q_sweep(scale, lambda m: m.latency_2hop),
        expectation=(
            "PSM stays near AW + BI (~11 s); NO PSM is far lower.  PBBF "
            "starts above/near PSM at small q (fewer redundant deliveries) "
            "and drops below it as p and q grow — a crossover in q."
        ),
    )


def run_fig15(scale: Scale) -> ExperimentResult:
    """5-hop average update latency vs q."""
    return ExperimentResult(
        experiment_id="fig15",
        title="5-hop average update latency (detailed)",
        x_label="q",
        y_label="mean latency at 5-hop nodes (s)",
        series=_q_sweep(scale, lambda m: m.latency_5hop),
        expectation=(
            "Same structure as Figure 14 scaled by distance (~4-5 beacon "
            "intervals for PSM), with the PBBF-beats-PSM crossover at a "
            "*lower* q than the 2-hop case (more chances en route to skip "
            "a beacon interval)."
        ),
    )


def run_fig16(scale: Scale) -> ExperimentResult:
    """Fraction of updates received vs q."""
    return ExperimentResult(
        experiment_id="fig16",
        title="Average updates received (detailed)",
        x_label="q",
        y_label="updates received / updates sent",
        series=_q_sweep(scale, lambda m: m.updates_received_fraction),
        expectation=(
            "PSM and NO PSM deliver ~everything.  PBBF-0.5 is visibly "
            "degraded until q reaches ~0.5; p=0.25 loses a little; "
            "p <= 0.1 loses under 1%."
        ),
    )


def run_fig17(scale: Scale) -> ExperimentResult:
    """Average update latency vs density (q = 0.25)."""
    return ExperimentResult(
        experiment_id="fig17",
        title="Average update latency vs density (detailed, q=0.25)",
        x_label="density (delta)",
        y_label="mean update latency (s)",
        series=_density_sweep(scale, lambda m: m.mean_update_latency),
        expectation=(
            "Latency falls as density rises for the sleep-scheduled "
            "protocols (nodes are fewer hops from the source, so fewer "
            "beacon intervals are paid); PSM and PBBF improve at about "
            "the same rate, NO PSM stays lowest throughout."
        ),
    )


def run_fig18(scale: Scale) -> ExperimentResult:
    """Fraction of updates received vs density (q = 0.25)."""
    return ExperimentResult(
        experiment_id="fig18",
        title="Average updates received vs density (detailed, q=0.25)",
        x_label="density (delta)",
        y_label="updates received / updates sent",
        series=_density_sweep(scale, lambda m: m.updates_received_fraction),
        expectation=(
            "PBBF's delivery fraction improves with density (more "
            "redundant broadcast copies per node); PSM and NO PSM stay "
            "at ~1.0 throughout."
        ),
    )
