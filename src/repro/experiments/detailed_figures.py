"""Figures 13-18 — the Section 5 detailed-simulator study.

Each figure point averages several independent scenarios (deployment,
source, traffic and coins all re-sampled per run), matching the paper's
"each data point is averaged over ten runs".  Per-run metric summaries are
memoized so the q-sweep figures (13-16) share their underlying runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

from repro.core.params import PBBFParams
from repro.detailed.config import CodeDistributionParameters
from repro.detailed.simulator import DetailedSimulator
from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, Series
from repro.ideal.simulator import SchedulingMode


@dataclass(frozen=True)
class DetailedPointMetrics:
    """Everything the Section 5 figures need from one run."""

    joules_per_update_per_node: float
    latency_2hop: Optional[float]
    latency_5hop: Optional[float]
    updates_received_fraction: float
    mean_update_latency: Optional[float]
    n_2hop_nodes: int
    n_5hop_nodes: int


@lru_cache(maxsize=8192)
def _detailed_run(
    p: float,
    q: float,
    density: float,
    mode_value: str,
    duration: float,
    seed: int,
) -> DetailedPointMetrics:
    """One scenario boiled down to its figure metrics."""
    mode = SchedulingMode(mode_value)
    config = CodeDistributionParameters(density=density, duration=duration)
    simulator = DetailedSimulator(
        PBBFParams(p=p, q=q), config, seed=seed, mode=mode
    )
    result = simulator.run()
    metrics = result.metrics
    return DetailedPointMetrics(
        joules_per_update_per_node=metrics.joules_per_update_per_node(),
        latency_2hop=metrics.mean_latency_at_distance(2),
        latency_5hop=metrics.mean_latency_at_distance(5),
        updates_received_fraction=metrics.mean_updates_received_fraction(),
        mean_update_latency=metrics.mean_update_latency(),
        n_2hop_nodes=len(metrics.nodes_at_distance(2)),
        n_5hop_nodes=len(metrics.nodes_at_distance(5)),
    )


MetricFn = Callable[[DetailedPointMetrics], Optional[float]]


def _averaged_metric(
    scale: Scale,
    p: float,
    q: float,
    density: float,
    mode: SchedulingMode,
    metric: MetricFn,
) -> Optional[float]:
    """Mean of ``metric`` over ``scale.detailed_runs`` independent runs.

    Runs where the metric is undefined (e.g. no 5-hop nodes in that
    deployment) are skipped; the result is ``None`` when every run skips.
    """
    values: List[float] = []
    for run_index in range(scale.detailed_runs):
        seed = scale.seed_for("detailed", p, q, density, mode.value, run_index)
        point = _detailed_run(p, q, density, mode.value, scale.duration, seed)
        value = metric(point)
        if value is not None:
            values.append(value)
    if not values:
        return None
    return sum(values) / len(values)


def _q_sweep(scale: Scale, metric: MetricFn, density: float = 10.0) -> Tuple[Series, ...]:
    """The Figures 13-16 layout: PBBF-p lines over q, plus two baselines."""
    series: List[Series] = []
    for p in scale.detailed_p_values:
        points = tuple(
            (
                q,
                _averaged_metric(
                    scale, p, q, density, SchedulingMode.PSM_PBBF, metric
                ),
            )
            for q in scale.detailed_q_values
        )
        series.append(Series(label=f"PBBF-{p:g}", points=points))
    psm = _averaged_metric(
        scale, 0.0, 0.0, density, SchedulingMode.PSM_PBBF, metric
    )
    series.append(
        Series(label="PSM", points=tuple((q, psm) for q in scale.detailed_q_values))
    )
    no_psm = _averaged_metric(
        scale, 1.0, 1.0, density, SchedulingMode.ALWAYS_ON, metric
    )
    series.append(
        Series(
            label="NO PSM",
            points=tuple((q, no_psm) for q in scale.detailed_q_values),
        )
    )
    return tuple(series)


def _density_sweep(scale: Scale, metric: MetricFn, q: float = 0.25) -> Tuple[Series, ...]:
    """The Figures 17-18 layout: density on x, q fixed at Table 2's 0.25."""
    series: List[Series] = []
    for p in scale.detailed_p_values:
        points = tuple(
            (
                density,
                _averaged_metric(
                    scale, p, q, density, SchedulingMode.PSM_PBBF, metric
                ),
            )
            for density in scale.densities
        )
        series.append(Series(label=f"PBBF-{p:g}", points=points))
    series.append(
        Series(
            label="PSM",
            points=tuple(
                (
                    density,
                    _averaged_metric(
                        scale, 0.0, 0.0, density, SchedulingMode.PSM_PBBF, metric
                    ),
                )
                for density in scale.densities
            ),
        )
    )
    series.append(
        Series(
            label="NO PSM",
            points=tuple(
                (
                    density,
                    _averaged_metric(
                        scale, 1.0, 1.0, density, SchedulingMode.ALWAYS_ON, metric
                    ),
                )
                for density in scale.densities
            ),
        )
    )
    return tuple(series)


def run_fig13(scale: Scale) -> ExperimentResult:
    """Average per-node energy per update vs q (detailed simulator)."""
    return ExperimentResult(
        experiment_id="fig13",
        title="Average energy consumption (detailed, N=50, delta=10)",
        x_label="q",
        y_label="joules consumed / update (per node)",
        series=_q_sweep(scale, lambda m: m.joules_per_update_per_node),
        expectation=(
            "PSM saves roughly 2 J per update over NO PSM; PBBF's energy "
            "grows linearly with q and overlaps across p values (q "
            "dominates p for energy)."
        ),
    )


def run_fig14(scale: Scale) -> ExperimentResult:
    """2-hop average update latency vs q."""
    return ExperimentResult(
        experiment_id="fig14",
        title="2-hop average update latency (detailed)",
        x_label="q",
        y_label="mean latency at 2-hop nodes (s)",
        series=_q_sweep(scale, lambda m: m.latency_2hop),
        expectation=(
            "PSM stays near AW + BI (~11 s); NO PSM is far lower.  PBBF "
            "starts above/near PSM at small q (fewer redundant deliveries) "
            "and drops below it as p and q grow — a crossover in q."
        ),
    )


def run_fig15(scale: Scale) -> ExperimentResult:
    """5-hop average update latency vs q."""
    return ExperimentResult(
        experiment_id="fig15",
        title="5-hop average update latency (detailed)",
        x_label="q",
        y_label="mean latency at 5-hop nodes (s)",
        series=_q_sweep(scale, lambda m: m.latency_5hop),
        expectation=(
            "Same structure as Figure 14 scaled by distance (~4-5 beacon "
            "intervals for PSM), with the PBBF-beats-PSM crossover at a "
            "*lower* q than the 2-hop case (more chances en route to skip "
            "a beacon interval)."
        ),
    )


def run_fig16(scale: Scale) -> ExperimentResult:
    """Fraction of updates received vs q."""
    return ExperimentResult(
        experiment_id="fig16",
        title="Average updates received (detailed)",
        x_label="q",
        y_label="updates received / updates sent",
        series=_q_sweep(scale, lambda m: m.updates_received_fraction),
        expectation=(
            "PSM and NO PSM deliver ~everything.  PBBF-0.5 is visibly "
            "degraded until q reaches ~0.5; p=0.25 loses a little; "
            "p <= 0.1 loses under 1%."
        ),
    )


def run_fig17(scale: Scale) -> ExperimentResult:
    """Average update latency vs density (q = 0.25)."""
    return ExperimentResult(
        experiment_id="fig17",
        title="Average update latency vs density (detailed, q=0.25)",
        x_label="density (delta)",
        y_label="mean update latency (s)",
        series=_density_sweep(scale, lambda m: m.mean_update_latency),
        expectation=(
            "Latency falls as density rises for the sleep-scheduled "
            "protocols (nodes are fewer hops from the source, so fewer "
            "beacon intervals are paid); PSM and PBBF improve at about "
            "the same rate, NO PSM stays lowest throughout."
        ),
    )


def run_fig18(scale: Scale) -> ExperimentResult:
    """Fraction of updates received vs density (q = 0.25)."""
    return ExperimentResult(
        experiment_id="fig18",
        title="Average updates received vs density (detailed, q=0.25)",
        x_label="density (delta)",
        y_label="updates received / updates sent",
        series=_density_sweep(scale, lambda m: m.updates_received_fraction),
        expectation=(
            "PBBF's delivery fraction improves with density (more "
            "redundant broadcast copies per node); PSM and NO PSM stay "
            "at ~1.0 throughout."
        ),
    )
