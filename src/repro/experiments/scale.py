"""Experiment scale presets.

Every knob that trades fidelity for runtime lives here, so "the paper's
configuration" and "the CI configuration" are two frozen values rather
than scattered magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.util.rng import fold_seed


@dataclass(frozen=True)
class Scale:
    """All size/repetition knobs for the experiment harness.

    Attributes mirror the paper's setup; :meth:`fast` shrinks sizes and
    repetitions while keeping every qualitative effect visible.
    """

    name: str

    # -- Section 4 (ideal simulator) ------------------------------------
    grid_side: int
    n_broadcasts: int
    ideal_runs: int
    ideal_p_values: Tuple[float, ...]
    ideal_q_values: Tuple[float, ...]
    hop_distance_near: int  # Figure 9's "20-hop nodes"
    hop_distance_far: int   # Figure 10's "60-hop nodes"

    # -- percolation (Figures 6, 7, 12) -----------------------------------
    percolation_sizes: Tuple[int, ...]
    percolation_runs: int
    frontier_grid_side: int
    reliability_levels: Tuple[float, ...]

    # -- Section 5 (detailed simulator) -----------------------------------
    detailed_runs: int
    detailed_p_values: Tuple[float, ...]
    detailed_q_values: Tuple[float, ...]
    densities: Tuple[float, ...]
    duration: float

    #: Root seed from which every run's seed is derived.
    base_seed: int = 20050610  # ICDCS 2005's opening day

    # -- scenario extension figures (scen01, scen02) ----------------------
    # Defaulted so miniature hand-built scales (tests) stay cheap; the
    # fast/full presets set them explicitly.
    #: Grid side for the scenario figures (smaller than the analysis grid).
    scenario_side: int = 10
    scenario_n_broadcasts: int = 4
    #: Independent realizations averaged per scenario point.
    scenario_seeds: int = 1
    #: Pre-broadcast node-failure fractions swept by scen01.
    failure_fractions: Tuple[float, ...] = (0.0, 0.2, 0.4)
    #: Forwarding probabilities compared in scen01.
    scenario_p_values: Tuple[float, ...] = (0.25, 0.5)
    #: Stay-awake probability fixed above threshold for scen01.
    scenario_q: float = 0.6
    #: Forwarding probability fixed for scen02's per-family q sweep.
    scenario_p: float = 0.75

    # -- trade-off analysis figures (pareto01-03) --------------------------
    #: Grid side of the ideal-simulator frontier campaigns.
    pareto_side: int = 10
    pareto_n_broadcasts: int = 4
    #: Independent seeds per frontier point (bootstrap CIs resample these).
    pareto_seeds: int = 2
    #: The static (p, q) grid swept into frontier candidates.
    pareto_p_values: Tuple[float, ...] = (0.25, 0.5, 0.75)
    pareto_q_values: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
    #: Scenario families compared by pareto01/pareto03 (registry names).
    pareto_families: Tuple[str, ...] = ("grid", "torus")
    #: Reliability floor (mean coverage) a point must meet to enter the
    #: ideal-simulator frontiers.
    pareto_coverage: float = 0.85
    #: Delivery floor (mean updates-received fraction) for the detailed
    #: adaptive-vs-static frontier (pareto02).
    pareto_delivery: float = 0.8
    #: Adaptive-controller starting q values swept by pareto02.
    pareto_adaptive_q0_values: Tuple[float, ...] = (0.2, 0.5)
    #: Bootstrap resamples per (point, objective) confidence interval.
    bootstrap_resamples: int = 200

    # -- scheduler-portability figure (sched01) ----------------------------
    #: Per-reception loss probabilities swept on the detailed simulator.
    sched_loss_values: Tuple[float, ...] = (0.0, 0.15, 0.3)
    #: Operating point fixed for the scheduler sweep.
    sched_p: float = 0.25
    sched_q: float = 0.5

    # -- detailed-scenario figures (scen03, scen04) ------------------------
    #: Node count of the random deployments the detailed scenario figures
    #: run (smaller than Table 2's N=50 below full scale).
    detailed_scenario_nodes: int = 12
    #: Simulated seconds per detailed-scenario run.
    detailed_scenario_duration: float = 150.0
    #: Mid-run failure fractions swept by scen03.
    midrun_failure_fractions: Tuple[float, ...] = (0.0, 0.3)
    #: Death-window bounds as fractions of the run duration.
    midrun_window: Tuple[float, float] = (0.25, 0.75)
    #: scen04's perturbed world: mid-run failure fraction and clock-skew
    #: standard deviation (seconds) layered onto the nominal scenario.
    scen04_failure_fraction: float = 0.15
    scen04_skew_std: float = 2.0
    #: Delivery floor a point must meet to enter the scen04 frontiers
    #: (lower than pareto_delivery: the perturbed side loses nodes).
    scen04_delivery: float = 0.5

    @classmethod
    def full(cls) -> "Scale":
        """The paper's configuration (minutes per figure)."""
        return cls(
            name="full",
            grid_side=75,
            n_broadcasts=50,
            ideal_runs=1,
            ideal_p_values=(0.05, 0.25, 0.375, 0.5, 0.75),
            ideal_q_values=tuple(round(0.1 * i, 1) for i in range(11)),
            hop_distance_near=20,
            hop_distance_far=60,
            percolation_sizes=(10, 20, 30, 40),
            percolation_runs=50,
            frontier_grid_side=30,
            reliability_levels=(0.8, 0.9, 0.99, 1.0),
            detailed_runs=10,
            detailed_p_values=(0.05, 0.1, 0.25, 0.5),
            detailed_q_values=tuple(round(0.1 * i, 1) for i in range(11)),
            densities=(8.0, 10.0, 12.0, 14.0, 16.0, 18.0),
            duration=500.0,
            scenario_side=30,
            scenario_n_broadcasts=30,
            scenario_seeds=5,
            failure_fractions=(0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
            scenario_p_values=(0.05, 0.25, 0.5),
            scenario_q=0.6,
            scenario_p=0.75,
            pareto_side=30,
            pareto_n_broadcasts=30,
            pareto_seeds=5,
            pareto_p_values=(0.05, 0.25, 0.375, 0.5, 0.75),
            pareto_q_values=tuple(round(0.1 * i, 1) for i in range(1, 11)),
            pareto_families=("grid", "torus", "random"),
            pareto_coverage=0.9,
            pareto_delivery=0.85,
            pareto_adaptive_q0_values=(0.1, 0.3, 0.5),
            bootstrap_resamples=1000,
            sched_loss_values=(0.0, 0.1, 0.2, 0.3),
            sched_p=0.25,
            sched_q=0.5,
            detailed_scenario_nodes=50,
            detailed_scenario_duration=500.0,
            midrun_failure_fractions=(0.0, 0.05, 0.1, 0.2, 0.3),
            scen04_failure_fraction=0.15,
            scen04_skew_std=2.0,
            scen04_delivery=0.7,
        )

    @classmethod
    def fast(cls) -> "Scale":
        """Reduced-scale configuration (seconds per figure; CI/benches)."""
        return cls(
            name="fast",
            grid_side=25,
            n_broadcasts=12,
            ideal_runs=1,
            ideal_p_values=(0.05, 0.25, 0.5, 0.75),
            ideal_q_values=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
            hop_distance_near=8,
            hop_distance_far=16,
            percolation_sizes=(10, 16, 22, 30),
            percolation_runs=12,
            frontier_grid_side=20,
            reliability_levels=(0.8, 0.9, 0.99, 1.0),
            detailed_runs=2,
            detailed_p_values=(0.1, 0.5),
            detailed_q_values=(0.0, 0.25, 0.5, 0.75, 1.0),
            densities=(8.0, 12.0, 16.0),
            duration=400.0,
            scenario_side=15,
            scenario_n_broadcasts=8,
            scenario_seeds=2,
            failure_fractions=(0.0, 0.1, 0.3, 0.5),
            scenario_p_values=(0.1, 0.5),
            scenario_q=0.6,
            scenario_p=0.75,
            pareto_side=13,
            pareto_n_broadcasts=8,
            pareto_seeds=2,
            pareto_p_values=(0.25, 0.5, 0.75),
            pareto_q_values=(0.2, 0.4, 0.6, 0.8, 1.0),
            pareto_families=("grid", "torus"),
            pareto_coverage=0.85,
            pareto_delivery=0.8,
            pareto_adaptive_q0_values=(0.25, 0.5),
            bootstrap_resamples=200,
            sched_loss_values=(0.0, 0.15, 0.3),
            sched_p=0.25,
            sched_q=0.5,
            detailed_scenario_nodes=16,
            detailed_scenario_duration=200.0,
            midrun_failure_fractions=(0.0, 0.15, 0.3),
            scen04_failure_fraction=0.15,
            scen04_skew_std=2.0,
            scen04_delivery=0.6,
        )

    def seed_for(self, *labels: object) -> int:
        """A stable per-(experiment, point, run) seed.

        Delegates to :func:`repro.util.rng.fold_seed`, the same derivation
        the campaign runner uses, so declarative campaigns and hand-rolled
        sweeps agree seed-for-seed.
        """
        return fold_seed(self.base_seed, *labels)
