"""Figures 6, 7, 12 and perc02 — the percolation analysis artifacts.

Figure 6 estimates the critical bond fraction per reliability level and
grid size (Newman-Ziff sweeps); Figure 7 inverts Remark 1 into the minimum
q per p on a fixed grid; Figure 12 walks that frontier at 99% reliability
and evaluates the Eq. 8 energy and Eq. 9 latency at every point.  The
extension figure **perc02** re-estimates the bond *and* site thresholds
across the scenario layer's topology families — how far the paper's
square-lattice percolation numbers travel to tori, carved-out grids and
unit-disk deployments.  The threshold estimates run as ``percolation``
campaigns, so Figures 7 and 12 share their frontier-grid points with each
other (and with any other invocation) through the campaign runner's memo
and disk cache.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.analysis.tradeoff import energy_latency_curve
from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, Series
from repro.ideal.config import AnalysisParameters
from repro.runners import CampaignSpec, run_campaign
from repro.runners.points import _percolation_point


def size_sweep_campaign(scale: Scale) -> CampaignSpec:
    """The Figure 6 sweep: grid sizes x reliability levels."""
    return CampaignSpec.build(
        kind="percolation",
        axes={
            "grid_side": scale.percolation_sizes,
            "reliability": scale.reliability_levels,
        },
        fixed={"runs": scale.percolation_runs, "process": "bond"},
        seed_params=("grid_side", "reliability"),
        base_seed=scale.base_seed,
    )


def frontier_campaign(scale: Scale) -> CampaignSpec:
    """The Figures 7/12 thresholds: every level on the frontier grid."""
    return CampaignSpec.build(
        kind="percolation",
        axes={"reliability": scale.reliability_levels},
        fixed={
            "grid_side": scale.frontier_grid_side,
            "runs": scale.percolation_runs,
            "process": "bond",
        },
        seed_params=("grid_side", "reliability"),
        base_seed=scale.base_seed,
    )


@lru_cache(maxsize=256)
def _critical_fraction(
    grid_side: int, reliability: float, runs: int, seed: int
) -> float:
    """Mean critical bond fraction for one (grid, reliability) pair."""
    return _percolation_point(
        grid_side, reliability, runs, seed, "bond"
    ).critical_fraction


def critical_fraction(scale: Scale, grid_side: int, reliability: float) -> float:
    """Memoized Figure 6 estimate at ``scale``'s repetition count."""
    seed = scale.seed_for("percolation", grid_side, reliability)
    return _critical_fraction(grid_side, reliability, scale.percolation_runs, seed)


def run_fig06(scale: Scale) -> ExperimentResult:
    """Critical bond fraction vs grid size, one line per reliability level."""
    campaign = run_campaign(size_sweep_campaign(scale))
    series: List[Series] = []
    for level in scale.reliability_levels:
        points = tuple(
            (
                float(size),
                campaign.metrics(grid_side=size, reliability=level).critical_fraction,
            )
            for size in scale.percolation_sizes
        )
        series.append(Series(label=f"{level:.0%} reliability", points=points))
    return ExperimentResult(
        experiment_id="fig06",
        title="Critical bond fraction for grid topologies",
        x_label="grid side (NxN)",
        y_label="fraction of occupied bonds",
        series=tuple(series),
        expectation=(
            "Higher reliability needs more occupied bonds at every size; "
            "thresholds for partial coverage (80-99%) hover a little above "
            "the infinite-lattice bond threshold 0.5 and drift down with "
            "grid size, while 100% coverage stays well above it."
        ),
    )


def run_fig07(scale: Scale) -> ExperimentResult:
    """Minimum q vs p for each reliability level on the frontier grid."""
    from repro.percolation.threshold import minimum_q_for_reliability

    campaign = run_campaign(frontier_campaign(scale))
    p_values = [round(0.05 * i, 2) for i in range(21)]
    series: List[Series] = []
    for level in scale.reliability_levels:
        pc = campaign.metrics(reliability=level).critical_fraction
        points = tuple(
            (p, minimum_q_for_reliability(p, pc)) for p in p_values
        )
        series.append(Series(label=f"{level:.0%} reliability", points=points))
    return ExperimentResult(
        experiment_id="fig07",
        title=(
            f"p vs q for given reliability levels "
            f"({scale.frontier_grid_side}x{scale.frontier_grid_side} grid)"
        ),
        x_label="p",
        y_label="minimum q",
        series=tuple(series),
        expectation=(
            "Each curve is flat at q=0 while p <= 1-pc, then rises "
            "concavely to q=pc at p=1; higher reliability levels lie "
            "strictly above lower ones.  Operating points above a curve "
            "satisfy Remark 1 for that level."
        ),
    )


def run_fig12(scale: Scale) -> ExperimentResult:
    """Energy vs latency along the 99% reliability frontier."""
    analysis = AnalysisParameters()
    # A one-point campaign; its run key coincides with the matching point
    # of ``frontier_campaign`` whenever 0.99 is among the scale's levels,
    # so the estimate is shared rather than recomputed.
    spec = CampaignSpec.build(
        kind="percolation",
        axes={"reliability": (0.99,)},
        fixed={
            "grid_side": scale.frontier_grid_side,
            "runs": scale.percolation_runs,
            "process": "bond",
        },
        seed_params=("grid_side", "reliability"),
        base_seed=scale.base_seed,
    )
    pc = run_campaign(spec).metrics(reliability=0.99).critical_fraction
    # L2 is the extra sleep-induced wait of a normal broadcast; one full
    # frame minus the access time reproduces the observed per-hop PSM
    # latency of ~Tframe (see EXPERIMENTS.md's calibration note).
    l2 = analysis.t_frame - analysis.l1
    p_values = [round(0.05 * i, 2) for i in range(1, 21)]
    points = energy_latency_curve(
        critical_bond_fraction=pc,
        p_values=p_values,
        l1=analysis.l1,
        l2=l2,
        t_active=analysis.t_active,
        t_sleep=analysis.t_sleep,
        update_interval=analysis.update_interval,
        profile=analysis.power,
    )
    curve = tuple(
        (point.per_hop_latency_s, point.joules_per_update) for point in points
    )
    ordered = tuple(sorted(curve))
    return ExperimentResult(
        experiment_id="fig12",
        title="Energy-latency trade-off at 99% reliability",
        x_label="per-hop latency (s)",
        y_label="joules consumed / update (per node)",
        series=(Series(label="99% reliability frontier", points=ordered),),
        expectation=(
            "A monotonically decreasing curve: pushing per-hop latency "
            "down from the PSM corner (~L1+L2) toward L1 requires more "
            "always-awake time and therefore more energy per update — the "
            "inverse energy-latency relationship of the paper's title."
        ),
        notes=(
            f"critical bond fraction pc(99%) = {pc:.3f} on "
            f"{scale.frontier_grid_side}x{scale.frontier_grid_side}",
            f"L1 = {analysis.l1} s, L2 = {l2} s (Tframe - L1)",
        ),
    )


# -- perc02: thresholds across scenario families --------------------------

#: The percolation processes perc02 estimates per family.
PERC02_PROCESSES = ("bond", "site")


def family_threshold_campaign(scale: Scale) -> CampaignSpec:
    """The perc02 sweep: topology family x process x reliability level.

    The family panel is scen02's (same sizes, same tokens), so the
    realized topologies are shared with the portability figure through
    the scenario-realization memo and the runner caches.
    """
    from repro.experiments.scenario_figures import portability_scenarios

    return CampaignSpec.build(
        kind="percolation",
        axes={
            "scenario": tuple(
                spec for _, spec in portability_scenarios(scale)
            ),
            "process": PERC02_PROCESSES,
            "reliability": scale.reliability_levels,
        },
        fixed={"runs": scale.percolation_runs},
        seed_params=("scenario", "process", "reliability"),
        base_seed=scale.base_seed,
    )


def run_perc02(scale: Scale) -> ExperimentResult:
    """Bond/site critical fractions per topology family.

    One series per (family, process); x is the reliability level, y the
    estimated critical occupied fraction.  This is Figure 6's question
    asked across deployment shapes instead of grid sizes.
    """
    from repro.experiments.scenario_figures import portability_scenarios

    campaign = run_campaign(family_threshold_campaign(scale))
    panel = portability_scenarios(scale)
    series: List[Series] = []
    for process in PERC02_PROCESSES:
        for label, spec in panel:
            series.append(
                Series(
                    label=f"{process} {label}",
                    points=tuple(
                        (
                            level,
                            campaign.metrics(
                                scenario=spec,
                                process=process,
                                reliability=level,
                            ).critical_fraction,
                        )
                        for level in scale.reliability_levels
                    ),
                )
            )
    return ExperimentResult(
        experiment_id="perc02",
        title="Critical bond/site fractions across topology families",
        x_label="coverage reliability level",
        y_label="critical occupied fraction",
        series=tuple(series),
        expectation=(
            "Every family shows Figure 6's structure — more occupied "
            "bonds/sites needed at higher reliability — but the level "
            "moves with connectivity: the torus needs the fewest (no "
            "boundary), carved-out grids the most among lattices, and "
            "dense unit-disk families (random, clustered) percolate at "
            "far lower fractions than the degree-4 lattices.  Site "
            "thresholds sit above bond thresholds on every family (a "
            "lost node severs all its bonds at once)."
        ),
        notes=tuple(
            f"{label}: {spec.describe()}" for label, spec in panel
        ),
    )
