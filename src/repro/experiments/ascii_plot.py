"""ASCII charts for experiment results.

The figure tables in :mod:`repro.experiments.report` are the precise
record; this module draws the same series as a terminal scatter chart so
the *shape* — thresholds, crossovers, linearity — is visible at a glance
without leaving the shell (``pbbf-experiments run fig04 --chart``).

Each series gets a marker letter (``a``, ``b``, ...); overlapping points
show ``*``.  Axes are linear, scaled to the data.
"""

from __future__ import annotations

from typing import List

from repro.experiments.spec import ExperimentResult
from repro.util.validation import check_positive_int

_MARKERS = "abcdefghijklmnopqrstuvwxyz"


def render_ascii_chart(
    result: ExperimentResult,
    width: int = 64,
    height: int = 18,
) -> str:
    """Render every series of ``result`` into one scatter chart.

    Results without plottable points (e.g. the table artifacts) raise
    :class:`ValueError` — callers should fall back to the tabular render.
    """
    check_positive_int("width", width)
    check_positive_int("height", height)
    if width < 16 or height < 6:
        raise ValueError(f"chart needs at least 16x6 cells, got {width}x{height}")
    points = [
        (series_index, x, y)
        for series_index, series in enumerate(result.series)
        for x, y in series.points
        if y is not None
    ]
    if not points:
        raise ValueError(f"{result.experiment_id} has no plottable points")

    xs = [x for _, x, _ in points]
    ys = [y for _, _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for series_index, x, y in points:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        row = height - 1 - row  # row 0 is the top of the chart
        current = grid[row][col]
        marker = _MARKERS[series_index % len(_MARKERS)]
        grid[row][col] = marker if current == " " else "*"

    lines = [f"{result.experiment_id}: {result.title}"]
    y_top = _format_tick(y_hi)
    y_bottom = _format_tick(y_lo)
    label_width = max(len(y_top), len(y_bottom))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_top.rjust(label_width)
        elif row_index == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}|")
    x_axis = f"{_format_tick(x_lo)}{' ' * (width - 12)}{_format_tick(x_hi):>6}"
    lines.append(f"{' ' * label_width} +{'-' * width}+")
    lines.append(f"{' ' * label_width}  {x_axis}   ({result.x_label})")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={series.label}"
        for i, series in enumerate(result.series)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    lines.append(f"{' ' * label_width}  y = {result.y_label}; * = overlap")
    return "\n".join(lines)


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"
