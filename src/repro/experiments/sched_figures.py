"""Scheduler-portability figure: PBBF across sleep schedulers under loss.

PR 3 exposed ``scheduler`` and ``loss_probability`` as detailed-simulator
campaign axes; **sched01** is the first figure to sweep them.  It runs
one fixed PBBF operating point over every supported sleep scheduler
(802.11 PSM, S-MAC, T-MAC) while raising the per-reception loss
probability — the paper's "PBBF works with any sleep scheduling
protocol" claim, stress-tested under the channel conditions a real
deployment sees.
"""

from __future__ import annotations

from typing import List

from repro.experiments.detailed_figures import _DEFAULT_DENSITY
from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, Series
from repro.ideal.simulator import SchedulingMode
from repro.runners import CampaignSpec, run_campaign

#: The detailed schedulers PBBF is carried by (see repro.mac).
SCHEDULERS = ("psm", "smac", "tmac")


def scheduler_campaign(scale: Scale) -> CampaignSpec:
    """The sched01 sweep: scheduler x loss probability at fixed (p, q)."""
    return CampaignSpec.build(
        kind="detailed",
        axes={
            "scheduler": SCHEDULERS,
            "loss_probability": scale.sched_loss_values,
        },
        fixed={
            "p": scale.sched_p,
            "q": scale.sched_q,
            "density": _DEFAULT_DENSITY,
            "mode": SchedulingMode.PSM_PBBF.value,
            "duration": scale.duration,
        },
        seed_params=("scheduler", "loss_probability", "p", "q"),
        n_seeds=scale.detailed_runs,
        base_seed=scale.base_seed,
        seed_with_run_index=True,
    )


def run_sched01(scale: Scale) -> ExperimentResult:
    """Delivery and energy vs loss probability, one pair per scheduler."""
    campaign = run_campaign(scheduler_campaign(scale))
    series: List[Series] = []
    for scheduler in SCHEDULERS:
        series.append(
            Series(
                label=f"delivery {scheduler.upper()}",
                points=tuple(
                    (
                        loss,
                        campaign.mean_metric(
                            lambda m: m.updates_received_fraction,
                            scheduler=scheduler,
                            loss_probability=loss,
                        ),
                    )
                    for loss in scale.sched_loss_values
                ),
            )
        )
    for scheduler in SCHEDULERS:
        series.append(
            Series(
                label=f"J/update {scheduler.upper()}",
                points=tuple(
                    (
                        loss,
                        campaign.mean_metric(
                            lambda m: m.joules_per_update_per_node,
                            scheduler=scheduler,
                            loss_probability=loss,
                        ),
                    )
                    for loss in scale.sched_loss_values
                ),
            )
        )
    return ExperimentResult(
        experiment_id="sched01",
        title=(
            f"Scheduler portability under reception loss "
            f"(p={scale.sched_p:g}, q={scale.sched_q:g})"
        ),
        x_label="per-reception loss probability",
        y_label="updates received (fraction) / joules per update",
        series=tuple(series),
        expectation=(
            "All three schedulers carry the PBBF workload: delivery "
            "degrades gracefully (not collapse) as loss rises, because "
            "PBBF's redundant immediate broadcasts mask independent "
            "losses.  T-MAC's truncated idle listening keeps its energy "
            "per update lowest throughout; loss shifts energy up for "
            "every scheduler as fewer updates complete."
        ),
        notes=(
            "scheduler and loss_probability became campaign axes in PR 3; "
            "this is the first figure to sweep them",
        ),
    )
