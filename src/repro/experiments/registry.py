"""The experiment registry: every table and figure by id."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments import (
    detailed_figures,
    ideal_figures,
    pareto_figures,
    percolation_figures,
    scenario_figures,
    sched_figures,
    tables,
)
from repro.experiments.spec import ExperimentSpec

_SPECS: Dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> None:
    if spec.experiment_id in _SPECS:
        raise ValueError(f"duplicate experiment id {spec.experiment_id}")
    _SPECS[spec.experiment_id] = spec


_register(ExperimentSpec(
    experiment_id="table1",
    title="Analysis parameter values",
    section="4",
    expectation="Defaults match the paper's Table 1.",
    runner=tables.run_table1,
))
_register(ExperimentSpec(
    experiment_id="table2",
    title="Code distribution parameter values",
    section="5",
    expectation="Defaults match the paper's Table 2.",
    runner=tables.run_table2,
))
_register(ExperimentSpec(
    experiment_id="fig04",
    title="Threshold behavior for 90% reliability",
    section="4.1",
    expectation="Sharp q-thresholds per p; PSM and NO PSM at 1.0.",
    runner=ideal_figures.run_fig04,
))
_register(ExperimentSpec(
    experiment_id="fig05",
    title="Threshold behavior for 99% reliability",
    section="4.1",
    expectation="Like Fig 4 with thresholds shifted to larger q.",
    runner=ideal_figures.run_fig05,
))
_register(ExperimentSpec(
    experiment_id="fig06",
    title="Critical bond fraction for grid sizes",
    section="4.1",
    expectation="More bonds needed for higher reliability levels.",
    runner=percolation_figures.run_fig06,
))
_register(ExperimentSpec(
    experiment_id="fig07",
    title="p vs q reliability frontier (30x30 grid)",
    section="4.1",
    expectation="Minimum q rises with p; higher levels sit above.",
    runner=percolation_figures.run_fig07,
))
_register(ExperimentSpec(
    experiment_id="fig08",
    title="Average energy consumption (ideal)",
    section="4.2",
    expectation="Energy linear in q, independent of p (Eq. 8).",
    runner=ideal_figures.run_fig08,
))
_register(ExperimentSpec(
    experiment_id="fig09",
    title="Average hops travelled, near nodes",
    section="4.3",
    expectation="Path stretch near threshold, ~d at high reliability.",
    runner=ideal_figures.run_fig09,
))
_register(ExperimentSpec(
    experiment_id="fig10",
    title="Average hops travelled, far nodes",
    section="4.3",
    expectation="Same as Fig 9, amplified with distance.",
    runner=ideal_figures.run_fig10,
))
_register(ExperimentSpec(
    experiment_id="fig11",
    title="Average per-hop update latency (ideal)",
    section="4.3",
    expectation="PSM ~Tframe, NO PSM ~L1, PBBF between (Eq. 9).",
    runner=ideal_figures.run_fig11,
))
_register(ExperimentSpec(
    experiment_id="fig12",
    title="Energy-latency trade-off at 99% reliability",
    section="4.4",
    expectation="Energy and latency inversely related on the frontier.",
    runner=percolation_figures.run_fig12,
))
_register(ExperimentSpec(
    experiment_id="fig13",
    title="Average energy consumption (detailed)",
    section="5.2",
    expectation="PSM saves ~2 J/update vs NO PSM; linear in q; p-independent.",
    runner=detailed_figures.run_fig13,
))
_register(ExperimentSpec(
    experiment_id="fig14",
    title="2-hop average update latency (detailed)",
    section="5.2",
    expectation="PSM ~AW+BI; PBBF crosses below it as p, q grow.",
    runner=detailed_figures.run_fig14,
))
_register(ExperimentSpec(
    experiment_id="fig15",
    title="5-hop average update latency (detailed)",
    section="5.2",
    expectation="Crossover at lower q than the 2-hop case.",
    runner=detailed_figures.run_fig15,
))
_register(ExperimentSpec(
    experiment_id="fig16",
    title="Average updates received (detailed)",
    section="5.2",
    expectation="p=0.5 degraded until q~0.5; small p nearly lossless.",
    runner=detailed_figures.run_fig16,
))
_register(ExperimentSpec(
    experiment_id="fig17",
    title="Average update latency vs density (detailed)",
    section="5.3",
    expectation="Latency falls with density, most sharply for PSM/PBBF.",
    runner=detailed_figures.run_fig17,
))
_register(ExperimentSpec(
    experiment_id="fig18",
    title="Average updates received vs density (detailed)",
    section="5.3",
    expectation="PBBF delivery improves with density.",
    runner=detailed_figures.run_fig18,
))
_register(ExperimentSpec(
    experiment_id="scen01",
    title="Reachability and latency vs node-failure fraction",
    section="ext",
    expectation="Coverage degrades gracefully, then collapses past percolation.",
    runner=scenario_figures.run_scen01,
))
_register(ExperimentSpec(
    experiment_id="pareto01",
    title="Static (p, q) energy-latency frontier per family",
    section="ext",
    expectation="Non-dominated points trace Fig 12's inverse relationship.",
    runner=pareto_figures.run_pareto01,
))
_register(ExperimentSpec(
    experiment_id="pareto02",
    title="Adaptive controller vs static (p, q) frontier",
    section="ext",
    expectation="Adaptive frontier matches or dominates the static sweep.",
    runner=pareto_figures.run_pareto02,
))
_register(ExperimentSpec(
    experiment_id="pareto03",
    title="Deployment lifetime vs latency frontier",
    section="ext",
    expectation="Battery-days fall as per-hop latency is pushed down.",
    runner=pareto_figures.run_pareto03,
))
_register(ExperimentSpec(
    experiment_id="sched01",
    title="Scheduler portability under reception loss",
    section="ext",
    expectation="All schedulers degrade gracefully; T-MAC cheapest.",
    runner=sched_figures.run_sched01,
))
_register(ExperimentSpec(
    experiment_id="scen02",
    title="Topology portability of the p/q trade-off",
    section="ext",
    expectation="Same q-threshold structure; threshold shifts per family.",
    runner=scenario_figures.run_scen02,
))
_register(ExperimentSpec(
    experiment_id="scen03",
    title="Detailed broadcast under mid-run node deaths",
    section="ext",
    expectation="Delivery decays gracefully with deaths on every scheduler.",
    runner=scenario_figures.run_scen03,
))
_register(ExperimentSpec(
    experiment_id="scen04",
    title="Frontier robustness under skew + mid-run deaths",
    section="ext",
    expectation="Perturbed frontier shifts up/right but keeps its structure.",
    runner=scenario_figures.run_scen04,
))
_register(ExperimentSpec(
    experiment_id="perc02",
    title="Critical bond/site fractions across topology families",
    section="ext",
    expectation="Fig 6's structure on every family; level tracks connectivity.",
    runner=percolation_figures.run_perc02,
))


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (e.g. ``"fig08"``, ``"table1"``)."""
    try:
        return _SPECS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(_SPECS))}"
        ) from None


def all_experiment_ids() -> List[str]:
    """Every registered artifact id, tables first, then figures in order."""
    return sorted(_SPECS, key=lambda eid: (not eid.startswith("table"), eid))
