"""Tables 1 and 2 — the paper's parameter tables.

These "experiments" verify that the library's default configurations are
the paper's, by rendering the exact rows the tables print.  They are the
anchors every simulation figure inherits its parameters from.
"""

from __future__ import annotations

from repro.detailed.config import CodeDistributionParameters
from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult
from repro.ideal.config import AnalysisParameters


def run_table1(scale: Scale) -> ExperimentResult:
    """Table 1: analysis parameter values."""
    config = AnalysisParameters()
    return ExperimentResult(
        experiment_id="table1",
        title="Analysis parameter values (Table 1)",
        x_label="parameter",
        y_label="value",
        series=(),
        table_rows=tuple(config.table_rows()),
        expectation=(
            "N=5625 (75x75), PTX=81 mW, PI=30 mW, PS=3 uW, "
            "lambda=0.01 packets/s, L1~1.5 s, Tframe=10 s, Tactive=1 s."
        ),
        notes=(
            f"harness runs the ideal figures at scale={scale.name} "
            f"(grid {scale.grid_side}x{scale.grid_side}); the config "
            "defaults above are the paper's full-scale values",
        ),
    )


def run_table2(scale: Scale) -> ExperimentResult:
    """Table 2: code distribution parameter values."""
    config = CodeDistributionParameters()
    return ExperimentResult(
        experiment_id="table2",
        title="Code distribution parameter values (Table 2)",
        x_label="parameter",
        y_label="value",
        series=(),
        table_rows=tuple(config.table_rows()),
        expectation=(
            "N=50, q=0.25 (when fixed), delta=10.0, total packet 64 bytes, "
            "data payload 30 bytes; bit rate 19.2 kbps, 500 s runs, "
            "lambda=0.01 updates/s, k=1."
        ),
        notes=(
            "q is a protocol parameter (PBBFParams), not a scenario "
            "parameter; the density figures hold it at Table 2's 0.25",
        ),
    )
