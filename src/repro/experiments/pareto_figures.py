"""Trade-off analysis figures: Pareto frontiers over campaign results.

The paper's central artifact is Figure 12's energy-latency curve, traced
from the *closed-form* model.  These figures recover the same structure
from *simulated* campaigns through :mod:`repro.analysis`:

* **pareto01** — the static (p, q) frontier per scenario family: which
  swept operating points are actually non-dominated in (per-hop latency,
  energy per update) once a coverage floor is imposed, with knee points
  and bootstrap confidence intervals;
* **pareto02** — adaptive controller vs. static (p, q) on the detailed
  simulator: the AIAD controller's operating points overlaid on the
  static frontier at an equal delivery floor (Remark 1's frontier
  discussion, tested empirically);
* **pareto03** — the pareto01 frontier re-denominated in projected
  battery-days through :mod:`repro.energy.lifetime` (Lipinski's
  maximum-lifetime framing): the same points, read as deployment
  lifetime against latency.

All three run as ordinary declarative campaigns; frontier extraction,
knee selection and cross-family comparison ride the runner's
``post_process`` hooks, so the derived artifacts are computed once per
execution and are bit-identical across backends and cache replays.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.adaptive import AdaptivePolicy
from repro.analysis.compare import compare_frontiers
from repro.analysis.objectives import Constraint, Objective, operating_points
from repro.analysis.pareto import Frontier, pareto_frontier
from repro.analysis.denomination import lifetime_objective
from repro.analysis.selectors import knee_index
from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, Series
from repro.ideal.config import AnalysisParameters
from repro.ideal.simulator import SchedulingMode
from repro.experiments.detailed_figures import _DEFAULT_DENSITY as _DETAILED_DENSITY
from repro.runners import CampaignResult, CampaignSpec, run_campaign
from repro.scenarios import ScenarioSpec

#: The adaptive controller swept by pareto02: gentle AIAD steps with a
#: reliability-first q floor — q decays only to 0.1 in loss-free windows,
#: so delivery holds while idle energy is shed.
PARETO02_POLICY = AdaptivePolicy(q_min=0.1, q_step=0.1, p_max=0.75)


# -- objectives ----------------------------------------------------------


def energy_objective() -> Objective:
    """Per-node energy per update (the Figure 8/13 y-axis), minimised."""
    return Objective(
        name="energy",
        label="J/update per node",
        metric=lambda m: m.joules_per_update_per_node,
        sense="min",
    )


def hop_latency_objective() -> Objective:
    """Ideal-simulator per-hop latency (the Figure 11 y-axis), minimised."""
    return Objective(
        name="latency",
        label="per-hop latency (s)",
        metric=lambda m: m.mean_per_hop_latency,
        sense="min",
    )


def update_latency_objective() -> Objective:
    """Detailed-simulator end-to-end update latency, minimised."""
    return Objective(
        name="latency",
        label="update latency (s)",
        metric=lambda m: m.mean_update_latency,
        sense="min",
    )


def coverage_constraint(scale: Scale) -> Constraint:
    """The ideal frontiers' reliability floor on mean coverage."""
    return Constraint(
        name="coverage",
        metric=lambda m: m.mean_coverage,
        bound=scale.pareto_coverage,
        sense="ge",
    )


def delivery_constraint(scale: Scale) -> Constraint:
    """pareto02's delivery floor on the updates-received fraction."""
    return Constraint(
        name="delivery",
        metric=lambda m: m.updates_received_fraction,
        bound=scale.pareto_delivery,
        sense="ge",
    )


def static_pbbf_where():
    """The genuine-static-PBBF point filter for q-sweep frontiers.

    The Figures 13-16 q-sweep campaign also carries the always-on NO PSM
    baseline corner, which is not a static (p, q) operating point and
    must not anchor a frontier.  Shared by pareto02 and the CLI's
    ``pareto --simulator detailed`` so the exclusion can never drift
    between the two.
    """
    return lambda params: params.get("mode") == SchedulingMode.PSM_PBBF.value


# -- campaigns -----------------------------------------------------------


def pareto_family_panel(scale: Scale) -> Tuple[Tuple[str, ScenarioSpec], ...]:
    """The (label, spec) scenario families whose frontiers are compared."""
    side = scale.pareto_side
    builders = {
        "grid": lambda: ScenarioSpec.build("grid", {"side": side}),
        "torus": lambda: ScenarioSpec.build("torus", {"side": side}),
        "grid_holes": lambda: ScenarioSpec.build(
            "grid_holes",
            {"side": side, "n_holes": 3, "hole_side": max(2, side // 6)},
        ),
        "random": lambda: ScenarioSpec.build(
            "random",
            {"n_nodes": side * side, "radio_range": 10.0, "density": 12.0},
            source="random",
        ),
    }
    panel = []
    for name in scale.pareto_families:
        if name not in builders:
            raise ValueError(
                f"unknown pareto family {name!r}; have {sorted(builders)}"
            )
        panel.append((name, builders[name]()))
    return tuple(panel)


def static_frontier_campaign(scale: Scale) -> CampaignSpec:
    """The pareto01/pareto03 sweep: family x p x q on the ideal simulator."""
    hop_near, hop_far = 2, max(4, scale.pareto_side // 3)
    return CampaignSpec.build(
        kind="ideal",
        axes={
            "scenario": tuple(spec for _, spec in pareto_family_panel(scale)),
            "p": scale.pareto_p_values,
            "q": scale.pareto_q_values,
        },
        fixed={
            "n_broadcasts": scale.pareto_n_broadcasts,
            "mode": SchedulingMode.PSM_PBBF.value,
            "hop_near": hop_near,
            "hop_far": hop_far,
        },
        seed_params=("scenario", "p", "q"),
        n_seeds=scale.pareto_seeds,
        base_seed=scale.base_seed,
    )


def adaptive_campaign(scale: Scale) -> CampaignSpec:
    """pareto02's adaptive side: controller start points on the detailed sim.

    Seed labels fold the same (p, q, density, mode) content as the static
    q-sweep, so an adaptive run starting at (p, q) shares deployment,
    traffic and coin streams with the static run *at* (p, q) — common
    random numbers make the frontier overlay a paired comparison.
    """
    return CampaignSpec.build(
        kind="detailed",
        axes={
            "p": scale.detailed_p_values,
            "q": scale.pareto_adaptive_q0_values,
        },
        fixed={
            "density": _DETAILED_DENSITY,
            "mode": SchedulingMode.PSM_PBBF.value,
            "duration": scale.duration,
            "scheduler": "psm",
            "adaptive": PARETO02_POLICY.token,
        },
        seed_params=("p", "q", "density", "mode"),
        n_seeds=scale.detailed_runs,
        base_seed=scale.base_seed,
        seed_with_run_index=True,
    )


# -- frontier extraction (the campaign post-processing hooks) ------------


def family_frontier_hook(
    panel: Sequence[Tuple[str, ScenarioSpec]],
    objectives: Sequence[Objective],
    constraints: Sequence[Constraint],
    n_resamples: int,
):
    """A ``post_process`` hook extracting one frontier per scenario family."""

    def hook(campaign: CampaignResult) -> Dict[str, Frontier]:
        frontiers: Dict[str, Frontier] = {}
        for label, spec in panel:
            token = spec.token
            points = operating_points(
                campaign,
                objectives,
                constraints=constraints,
                where=lambda params, token=token: params.get("scenario") == token,
                n_resamples=n_resamples,
            )
            frontiers[label] = pareto_frontier(points, objectives)
        return frontiers

    return hook


def frontier_hook(
    objectives: Sequence[Objective],
    constraints: Sequence[Constraint],
    n_resamples: int,
    where=None,
):
    """A ``post_process`` hook extracting one frontier over the campaign.

    ``where`` filters the candidate points by parameters — pareto02 uses
    it to keep the static frontier to genuine PBBF (p, q) operating
    points (the q-sweep campaign also carries the always-on NO PSM
    baseline corner, which is not a static operating point and must not
    anchor the frontier).
    """

    def hook(campaign: CampaignResult) -> Frontier:
        points = operating_points(
            campaign,
            objectives,
            constraints=constraints,
            where=where,
            n_resamples=n_resamples,
        )
        return pareto_frontier(points, objectives)

    return hook


# -- rendering helpers ---------------------------------------------------


def _format_value(value: float) -> str:
    return f"{value:.4g}"


def frontier_table(
    frontiers: Mapping[str, Frontier],
) -> Tuple[Tuple[str, ...], Tuple[Tuple[str, ...], ...]]:
    """The frontier block of a trade-off figure: header + formatted rows.

    One row per non-dominated point, grouped by frontier name in sorted
    order, the knee of each frontier marked ``*`` in the first cell.
    Objective columns interleave mean and bootstrap ``±95%`` half-width.
    """
    names = sorted(frontiers)
    if not names:
        raise ValueError("frontier_table() needs at least one frontier")
    objectives = frontiers[names[0]].objectives
    header = ["", "set", "point"]
    for objective in objectives:
        header.extend([objective.label, "±95%"])
    rows: List[Tuple[str, ...]] = []
    for name in names:
        frontier = frontiers[name]
        if not frontier.points:
            continue
        knee = knee_index(frontier)
        for index, point in enumerate(frontier.points):
            row = ["*" if index == knee else "", name, point.label]
            for value, ci in zip(point.values, point.ci95):
                row.extend([_format_value(value), _format_value(ci)])
            rows.append(tuple(row))
    return tuple(header), tuple(rows)


def _frontier_series(name: str, frontier: Frontier) -> Series:
    """A frontier as a plotted series: (objective 0, objective 1) points."""
    return Series(
        label=name,
        points=tuple((point.values[0], point.values[1]) for point in frontier.points),
    )


def _comparison_notes(
    frontiers: Mapping[str, Frontier], comparison=None
) -> List[str]:
    """Hypervolume/knee notes for the figure footer (deterministic order).

    Pass a precomputed :func:`compare_frontiers` result to avoid scoring
    the same frontiers twice when the caller also reads the comparison.
    """
    populated = {name: f for name, f in frontiers.items() if f.points}
    if not populated:
        return ["no operating point met the constraint at this scale"]
    if comparison is None:
        comparison = compare_frontiers(populated)
    notes = []
    for summary in comparison.summaries:
        notes.append(
            f"{summary.name}: {summary.n_points} non-dominated of "
            f"{summary.n_points + summary.n_dominated} feasible, "
            f"hypervolume {summary.hypervolume:.4g}, "
            f"knee {summary.knee_label}"
        )
    return notes


# -- the figures ---------------------------------------------------------


def run_pareto01(scale: Scale) -> ExperimentResult:
    """Static (p, q) Pareto frontier per scenario family."""
    objectives = (hop_latency_objective(), energy_objective())
    panel = pareto_family_panel(scale)
    campaign = run_campaign(
        static_frontier_campaign(scale),
        post_process={
            "frontiers": family_frontier_hook(
                panel,
                objectives,
                (coverage_constraint(scale),),
                scale.bootstrap_resamples,
            )
        },
    )
    frontiers: Dict[str, Frontier] = campaign.artifacts["frontiers"]
    header, rows = frontier_table(frontiers)
    series = tuple(
        _frontier_series(name, frontiers[name]) for name, _ in panel
    )
    return ExperimentResult(
        experiment_id="pareto01",
        title=(
            f"Static (p, q) energy-latency frontier per family "
            f"(coverage >= {scale.pareto_coverage:g})"
        ),
        x_label="per-hop latency (s)",
        y_label="joules consumed / update (per node)",
        series=series,
        expectation=(
            "Each family's non-dominated set traces Figure 12's inverse "
            "energy-latency relationship: lower latency is bought with "
            "more awake time.  Families with denser connectivity (torus, "
            "random) meet the coverage floor at cheaper operating points, "
            "so their frontiers sit left/below the open grid's."
        ),
        notes=tuple(_comparison_notes(frontiers)),
        frontier_header=header,
        frontier_rows=rows,
    )


def paired_adaptive_notes(
    static: CampaignResult, adaptive: CampaignResult, scale: Scale
) -> List[str]:
    """Per-start-point paired comparison: adaptive vs. the static it left.

    Both campaigns fold identical seed labels, so each comparison is a
    common-random-numbers pairing of the same deployments and traffic.
    Reported per start point shared by both sweeps: energy delta at the
    delivery each side achieved — the 'equal reliability, lower energy'
    demonstration the adaptive controller exists for.
    """
    notes: List[str] = []
    shared_q0 = [
        q0 for q0 in scale.pareto_adaptive_q0_values if q0 in scale.detailed_q_values
    ]
    for p in scale.detailed_p_values:
        for q0 in shared_q0:
            static_energy = static.mean_metric(
                lambda m: m.joules_per_update_per_node, p=p, q=q0
            )
            adaptive_energy = adaptive.mean_metric(
                lambda m: m.joules_per_update_per_node, p=p, q=q0
            )
            static_delivery = static.mean_metric(
                lambda m: m.updates_received_fraction, p=p, q=q0
            )
            adaptive_delivery = adaptive.mean_metric(
                lambda m: m.updates_received_fraction, p=p, q=q0
            )
            if None in (
                static_energy, adaptive_energy, static_delivery, adaptive_delivery
            ):
                continue
            notes.append(
                f"paired at p={p:g} q0={q0:g}: adaptive "
                f"{adaptive_energy:.4g} J/upd at {adaptive_delivery:.3f} "
                f"delivery vs static {static_energy:.4g} J/upd at "
                f"{static_delivery:.3f}"
            )
    return notes


def run_pareto02(scale: Scale) -> ExperimentResult:
    """Adaptive-controller frontier vs. the static (p, q) frontier."""
    from repro.experiments.detailed_figures import q_sweep_campaign

    objectives = (update_latency_objective(), energy_objective())
    constraints = (delivery_constraint(scale),)
    static = run_campaign(
        q_sweep_campaign(scale),
        post_process={
            "frontier": frontier_hook(
                objectives,
                constraints,
                scale.bootstrap_resamples,
                where=static_pbbf_where(),
            )
        },
    )
    adaptive = run_campaign(
        adaptive_campaign(scale),
        post_process={
            "frontier": frontier_hook(
                objectives, constraints, scale.bootstrap_resamples
            )
        },
    )
    frontiers = {
        "static": static.artifacts["frontier"],
        "adaptive": adaptive.artifacts["frontier"],
    }
    header, rows = frontier_table(frontiers)
    series = (
        _frontier_series("static frontier", frontiers["static"]),
        _frontier_series("adaptive frontier", frontiers["adaptive"]),
    )
    return ExperimentResult(
        experiment_id="pareto02",
        title=(
            f"Adaptive controller vs static (p, q) frontier "
            f"(delivery >= {scale.pareto_delivery:g})"
        ),
        x_label="mean update latency (s)",
        y_label="joules consumed / update (per node)",
        series=series,
        expectation=(
            "The adaptive controller's frontier matches or dominates the "
            "static sweep's: by shedding q in loss-free windows and "
            "raising it on detected misses, adapted operating points "
            "deliver equal reliability at lower energy than the static "
            "points they started from (Remark 1's frontier, tracked "
            "dynamically instead of provisioned statically)."
        ),
        notes=tuple(_comparison_notes(frontiers))
        + tuple(paired_adaptive_notes(static, adaptive, scale))
        + (f"adaptive policy: {PARETO02_POLICY.token}",),
        frontier_header=header,
        frontier_rows=rows,
    )


def run_pareto03(scale: Scale) -> ExperimentResult:
    """The static frontier denominated in projected battery-days."""
    analysis = AnalysisParameters()
    objectives = (
        hop_latency_objective(),
        lifetime_objective(energy_objective(), analysis.update_interval),
    )
    panel = pareto_family_panel(scale)
    campaign = run_campaign(
        static_frontier_campaign(scale),
        post_process={
            "frontiers": family_frontier_hook(
                panel,
                objectives,
                (coverage_constraint(scale),),
                scale.bootstrap_resamples,
            )
        },
    )
    frontiers: Dict[str, Frontier] = campaign.artifacts["frontiers"]
    header, rows = frontier_table(frontiers)
    series = tuple(
        _frontier_series(name, frontiers[name]) for name, _ in panel
    )
    return ExperimentResult(
        experiment_id="pareto03",
        title=(
            f"Deployment lifetime vs latency frontier per family "
            f"(coverage >= {scale.pareto_coverage:g}, AA pair)"
        ),
        x_label="per-hop latency (s)",
        y_label="projected lifetime (battery-days)",
        series=series,
        expectation=(
            "The same frontier as pareto01 read in deployment units: "
            "battery-days fall as per-hop latency is pushed down.  The "
            "knee is where the paper's 'weeks of lifetime on a pair of "
            "AAs' motivation meets its latency budget — past it, each "
            "second of latency saved costs days of deployment life."
        ),
        notes=tuple(_comparison_notes(frontiers))
        + (
            f"lifetime from {analysis.update_interval:g}s update interval "
            "on a 20 kJ AA pair",
        ),
        frontier_header=header,
        frontier_rows=rows,
    )
