"""The experiment harness: every table and figure, regenerated.

One :class:`~repro.experiments.spec.ExperimentSpec` per paper artifact
(Tables 1-2, Figures 4-18, plus the DESIGN.md ablations).  Each spec knows
how to run itself at two scales:

* ``full`` -- the paper's parameters (75x75 analysis grid, ten detailed
  runs per point, 500 s scenarios).  Minutes per figure.
* ``fast`` -- reduced-scale defaults used by the benchmark suite and CI.
  Seconds per figure, same qualitative shapes.

Entry points: the :mod:`repro.cli` command-line tool, or programmatically::

    from repro.experiments import get_experiment, Scale
    result = get_experiment("fig08").run(Scale.fast())
    print(result.render())
"""

from repro.experiments.registry import all_experiment_ids, get_experiment
from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, ExperimentSpec, Series

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "Scale",
    "Series",
    "all_experiment_ids",
    "get_experiment",
]
