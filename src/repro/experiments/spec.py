"""Experiment spec and result containers.

An :class:`ExperimentSpec` binds a paper artifact (one table or figure) to
the function that regenerates it.  Results are x/y *series* — exactly the
lines of the paper's plot — rendered as aligned text tables, because the
comparison we care about is shape and ordering, not pixels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.experiments.scale import Scale


@dataclass(frozen=True)
class Series:
    """One plotted line: a label and its (x, y) points.

    ``y`` may be ``None`` where a metric is undefined (e.g. latency when
    nothing was delivered); rendering shows a dash, mirroring how the
    paper's plots simply have no sample there.
    """

    label: str
    points: Tuple[Tuple[float, Optional[float]], ...]

    def y_at(self, x: float) -> Optional[float]:
        """The y value at ``x`` (exact match), or None."""
        for px, py in self.points:
            if px == x:
                return py
        return None

    def xs(self) -> List[float]:
        """X coordinates in plotting order."""
        return [px for px, _ in self.points]


@dataclass(frozen=True)
class ExperimentResult:
    """A regenerated table or figure."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: Tuple[Series, ...]
    #: What the paper's version of this artifact shows (for EXPERIMENTS.md).
    expectation: str
    #: Free-form notes recorded during the run (calibration values etc.).
    notes: Tuple[str, ...] = ()
    #: For table artifacts (Tables 1-2): (parameter, value) rows.  Table
    #: results carry these instead of series.
    table_rows: Tuple[Tuple[str, str], ...] = ()
    #: For trade-off artifacts (pareto01-03): column names of the frontier
    #: table rendered below the series.
    frontier_header: Tuple[str, ...] = ()
    #: Frontier rows as pre-formatted cells, one per non-dominated
    #: operating point; by convention the first cell carries a ``*``
    #: marker on the selected knee point.
    frontier_rows: Tuple[Tuple[str, ...], ...] = ()

    def get_series(self, label: str) -> Series:
        """Look up a series by its legend label."""
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(
            f"{self.experiment_id} has no series {label!r}; "
            f"have {[s.label for s in self.series]}"
        )

    def render(self) -> str:
        """Aligned text table: x column plus one column per series."""
        from repro.experiments.report import render_result

        return render_result(self)


@dataclass(frozen=True)
class ExperimentSpec:
    """Binds an artifact id ("fig08", "table1", ...) to its generator."""

    experiment_id: str
    title: str
    #: Paper section the artifact comes from.
    section: str
    #: One-line statement of the result the paper reports.
    expectation: str
    runner: Callable[[Scale], ExperimentResult]

    def run(self, scale: Optional[Scale] = None) -> ExperimentResult:
        """Regenerate the artifact at ``scale`` (default: fast)."""
        return self.runner(scale if scale is not None else Scale.fast())
