"""Scenario-extension figures: broadcasts beyond the paper's one world.

The paper evaluates a single scenario shape — one broadcast source at the
centre of an open grid.  These figures run the *same* simulator metrics
through the scenario layer (:mod:`repro.scenarios`) to probe the regimes
related work cares about:

* **scen01** — reachability and per-hop latency as a growing fraction of
  nodes fail before the broadcast ("Sleeping on the Job"'s unreliable
  participants, expressed as a swept campaign axis);
* **scen02** — the p/q trade-off's portability across topology families
  (open grid, torus, grid with failed regions, uniform random, clustered
  — the time/energy-vs-topology question of Klonowski & Pajak);
* **scen03** — the *detailed* (MAC-level) simulator under mid-run node
  deaths: reachability, end-to-end latency and energy per update as a
  growing fraction of nodes dies while traffic is flowing, per sleep
  scheduler (the fault-tolerance regime of Gandhi et al. and the
  ODMRP-style robustness studies);
* **scen04** — frontier robustness: the static (p, q) energy-latency
  frontier on the detailed simulator, recomputed under clock skew plus
  mid-run deaths and compared to the nominal frontier by hypervolume and
  two-set coverage.

All are ordinary declarative campaigns: the scenario rides in the
``scenario`` axis as a token string, so the runner's seeds, backends and
caches treat deployment shape — and now its time-varying perturbations —
exactly like any numeric parameter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, Series
from repro.ideal.simulator import SchedulingMode
from repro.runners import CampaignSpec, run_campaign
from repro.scenarios import (
    ClockSkew,
    FailureTimes,
    Perturbations,
    ScenarioSpec,
)


def _hop_buckets(scale: Scale) -> Tuple[int, int]:
    """Near/far hop-bucket distances sized to the scenario grid."""
    return 2, max(4, scale.scenario_side // 3)


def failure_scenarios(scale: Scale) -> Tuple[Tuple[float, ScenarioSpec], ...]:
    """The (fraction, spec) panel scen01 sweeps — one grid, rising failures."""
    return tuple(
        (
            fraction,
            ScenarioSpec.build(
                "grid", {"side": scale.scenario_side}, failure_fraction=fraction
            ),
        )
        for fraction in scale.failure_fractions
    )


def failure_campaign(scale: Scale) -> CampaignSpec:
    """The scen01 sweep: failure fraction x forwarding probability.

    Every point shares the same grid; only the failure set (drawn from
    the realization streams) and the p coin threshold vary.
    """
    hop_near, hop_far = _hop_buckets(scale)
    return CampaignSpec.build(
        kind="ideal",
        axes={
            "scenario": tuple(spec for _, spec in failure_scenarios(scale)),
            "p": scale.scenario_p_values,
        },
        fixed={
            "q": scale.scenario_q,
            "n_broadcasts": scale.scenario_n_broadcasts,
            "mode": SchedulingMode.PSM_PBBF.value,
            "hop_near": hop_near,
            "hop_far": hop_far,
        },
        seed_params=("scenario", "p", "q"),
        n_seeds=scale.scenario_seeds,
        base_seed=scale.base_seed,
    )


def portability_scenarios(scale: Scale) -> Tuple[Tuple[str, ScenarioSpec], ...]:
    """The (label, spec) family panel scen02 sweeps.

    Node counts are matched to ``scenario_side**2`` where the family
    allows it; random deployments use a density comfortably above the
    connectivity threshold and a random source (there is no centre).
    """
    side = scale.scenario_side
    n = side * side
    return (
        ("grid", ScenarioSpec.build("grid", {"side": side})),
        ("torus", ScenarioSpec.build("torus", {"side": side})),
        (
            "holes",
            ScenarioSpec.build(
                "grid_holes",
                {"side": side, "n_holes": 3, "hole_side": max(2, side // 6)},
            ),
        ),
        (
            "random",
            ScenarioSpec.build(
                "random",
                {"n_nodes": n, "radio_range": 10.0, "density": 12.0},
                source="random",
            ),
        ),
        (
            "clustered",
            ScenarioSpec.build(
                "clustered",
                {
                    "n_clusters": 4,
                    "cluster_size": max(4, n // 4),
                    "radio_range": 10.0,
                    "spread": 5.0,
                    "extent": 40.0,
                },
                source="random",
            ),
        ),
    )


def portability_campaign(scale: Scale) -> CampaignSpec:
    """The scen02 sweep: topology family x stay-awake probability.

    Seeds fold only the scenario (not q), so every q point of a family
    reuses the same realized deployment and coin streams — common random
    numbers make the per-family threshold curves monotone in q.
    """
    hop_near, hop_far = _hop_buckets(scale)
    return CampaignSpec.build(
        kind="ideal",
        axes={
            "scenario": tuple(spec for _, spec in portability_scenarios(scale)),
            "q": scale.ideal_q_values,
        },
        fixed={
            "p": scale.scenario_p,
            "n_broadcasts": scale.scenario_n_broadcasts,
            "mode": SchedulingMode.PSM_PBBF.value,
            "hop_near": hop_near,
            "hop_far": hop_far,
        },
        seed_params=("scenario",),
        n_seeds=scale.scenario_seeds,
        base_seed=scale.base_seed,
    )


def run_scen01(scale: Scale) -> ExperimentResult:
    """Reachability and per-hop latency vs pre-broadcast node failures."""
    campaign = run_campaign(failure_campaign(scale))
    panel = failure_scenarios(scale)
    series: List[Series] = []
    for p in scale.scenario_p_values:
        series.append(
            Series(
                label=f"coverage PBBF-{p:g}",
                points=tuple(
                    (
                        fraction,
                        campaign.mean_metric(
                            lambda m: m.mean_coverage, scenario=spec, p=p
                        ),
                    )
                    for fraction, spec in panel
                ),
            )
        )
    for p in scale.scenario_p_values:
        series.append(
            Series(
                label=f"latency/hop PBBF-{p:g}",
                points=tuple(
                    (
                        fraction,
                        campaign.mean_metric(
                            lambda m: m.mean_per_hop_latency, scenario=spec, p=p
                        ),
                    )
                    for fraction, spec in panel
                ),
            )
        )
    return ExperimentResult(
        experiment_id="scen01",
        title=(
            f"Reachability and latency vs node-failure fraction "
            f"(grid {scale.scenario_side}x{scale.scenario_side}, "
            f"q={scale.scenario_q:g})"
        ),
        x_label="failed node fraction",
        y_label="coverage (fraction) / per-hop latency (s)",
        series=tuple(series),
        expectation=(
            "Coverage decays gracefully while the surviving component "
            "percolates, then collapses once failures fragment it; higher "
            "p buys little against failures (dead nodes never forward).  "
            "Per-hop latency rises before the collapse as broadcasts "
            "route around the failed regions."
        ),
        notes=(
            "failures are injected before the first broadcast and count "
            "as unreached in coverage",
        ),
    )


def run_scen02(scale: Scale) -> ExperimentResult:
    """Coverage vs q across topology families at fixed p."""
    campaign = run_campaign(portability_campaign(scale))
    panel = portability_scenarios(scale)
    series = tuple(
        Series(
            label=label,
            points=tuple(
                (
                    q,
                    campaign.mean_metric(
                        lambda m: m.mean_coverage, scenario=spec, q=q
                    ),
                )
                for q in scale.ideal_q_values
            ),
        )
        for label, spec in panel
    )
    return ExperimentResult(
        experiment_id="scen02",
        title=(
            f"Topology portability of the p/q trade-off "
            f"(p={scale.scenario_p:g})"
        ),
        x_label="q",
        y_label="mean coverage (fraction of nodes reached)",
        series=series,
        expectation=(
            "Every family shows the same threshold structure in q, but "
            "the threshold moves with the deployment: dense unit-disk "
            "families (random, clustered) saturate at much lower q than "
            "the degree-4 lattices, the torus beats the open grid in the "
            "transition (no boundary losses), and carved-out failed "
            "regions push the grid's threshold right."
        ),
        notes=tuple(
            f"{label}: {spec.describe()}" for label, spec in panel
        ),
    )


# -- detailed-simulator scenario figures (scen03, scen04) -----------------

#: The sleep schedulers scen03 compares (see :mod:`repro.mac`).
SCEN03_SCHEDULERS = ("psm", "smac", "tmac")


def detailed_world_spec(
    scale: Scale, perturbations: Optional[Perturbations] = None
) -> ScenarioSpec:
    """The detailed figures' random deployment, as a scenario value.

    Matches the legacy ``RandomTopology.connected`` world (Table 2's
    radio range and density, random source) at the scale's node count, so
    only the perturbations distinguish the panel entries — realization
    draws placement from the same streams for every entry, keeping
    nominal-vs-perturbed comparisons paired (common random numbers).
    """
    return ScenarioSpec.build(
        "random",
        {
            "n_nodes": scale.detailed_scenario_nodes,
            "radio_range": 40.0,
            "density": 10.0,
        },
        source="random",
        perturbations=perturbations if perturbations is not None else Perturbations(),
    )


def _midrun_window(scale: Scale) -> Tuple[float, float]:
    """The death window in simulated seconds."""
    lo, hi = scale.midrun_window
    return (
        lo * scale.detailed_scenario_duration,
        hi * scale.detailed_scenario_duration,
    )


def midrun_failure_scenarios(
    scale: Scale,
) -> Tuple[Tuple[float, ScenarioSpec], ...]:
    """The (fraction, spec) panel scen03 sweeps — one world, rising deaths.

    Fraction 0 carries *no* ``failure_times`` sub-spec, so the nominal
    point's token (and therefore its run keys and cache entries) is the
    plain deployment any other detailed-scenario campaign would use.
    """
    start, end = _midrun_window(scale)
    panel = []
    for fraction in scale.midrun_failure_fractions:
        perturbations = (
            Perturbations(failure_times=FailureTimes(fraction, start, end))
            if fraction
            else Perturbations()
        )
        panel.append((fraction, detailed_world_spec(scale, perturbations)))
    return tuple(panel)


def midrun_failure_campaign(scale: Scale) -> CampaignSpec:
    """The scen03 sweep: mid-run failure fraction x sleep scheduler.

    Seeds fold only the operating point — *not* the scenario or the
    scheduler — so every (fraction, scheduler) cell of a seed index runs
    the same deployment, source, traffic and coin streams: the per-line
    trends and the cross-scheduler gaps are both paired comparisons.
    """
    return CampaignSpec.build(
        kind="detailed",
        axes={
            "scenario": tuple(
                spec for _, spec in midrun_failure_scenarios(scale)
            ),
            "scheduler": SCEN03_SCHEDULERS,
        },
        fixed={
            "p": scale.sched_p,
            "q": scale.sched_q,
            "mode": SchedulingMode.PSM_PBBF.value,
            "duration": scale.detailed_scenario_duration,
        },
        seed_params=("p", "q"),
        n_seeds=scale.scenario_seeds,
        base_seed=scale.base_seed,
        seed_with_run_index=True,
    )


def run_scen03(scale: Scale) -> ExperimentResult:
    """Detailed reachability/latency/energy vs mid-run failure fraction."""
    campaign = run_campaign(midrun_failure_campaign(scale))
    panel = midrun_failure_scenarios(scale)
    series: List[Series] = []
    metrics = (
        ("delivery", lambda m: m.updates_received_fraction),
        ("latency", lambda m: m.mean_update_latency),
        ("J/update", lambda m: m.joules_per_update_per_node),
    )
    for metric_label, metric in metrics:
        for scheduler in SCEN03_SCHEDULERS:
            series.append(
                Series(
                    label=f"{metric_label} {scheduler.upper()}",
                    points=tuple(
                        (
                            fraction,
                            campaign.mean_metric(
                                metric, scenario=spec, scheduler=scheduler
                            ),
                        )
                        for fraction, spec in panel
                    ),
                )
            )
    start, end = _midrun_window(scale)
    return ExperimentResult(
        experiment_id="scen03",
        title=(
            f"Detailed broadcast under mid-run node deaths "
            f"(p={scale.sched_p:g}, q={scale.sched_q:g}, "
            f"N={scale.detailed_scenario_nodes})"
        ),
        x_label="mid-run failed node fraction",
        y_label="delivery (fraction) / latency (s) / J per update",
        series=tuple(series),
        expectation=(
            "Delivery decays with the death fraction on every scheduler "
            "but degrades gracefully rather than collapsing: updates "
            "generated before a death still spread, and PBBF's redundant "
            "immediate broadcasts route around fresh holes.  Latency "
            "drifts up as broadcasts detour around the holes, while the "
            "*per-node* energy mean falls — dead radios idle at sleep "
            "power, so the survivors' real cost is masked in the "
            "network-wide average.  The scheduler ranking is preserved "
            "from the loss study (sched01): deaths hit all three alike."
        ),
        notes=(
            f"deaths drawn uniformly over [{start:g}, {end:g}] s "
            "(mid-run; see Perturbations.failure_times)",
            "seeds fold only (p, q): every cell of a seed index shares "
            "deployment, traffic and coins (paired comparison)",
        ),
    )


def frontier_robustness_scenarios(
    scale: Scale,
) -> Tuple[Tuple[str, ScenarioSpec], ...]:
    """scen04's (label, spec) pair: the nominal world and its perturbed twin."""
    start, end = _midrun_window(scale)
    perturbed = Perturbations(
        failure_times=FailureTimes(
            scale.scen04_failure_fraction, start, end
        ),
        clock_skew=ClockSkew(scale.scen04_skew_std),
    )
    return (
        ("nominal", detailed_world_spec(scale)),
        ("perturbed", detailed_world_spec(scale, perturbed)),
    )


def frontier_robustness_campaign(scale: Scale) -> CampaignSpec:
    """The scen04 sweep: (p, q) grid x {nominal, perturbed} world.

    Seeds fold only (p, q), so each operating point's nominal and
    perturbed runs share deployment, traffic and coin streams — the
    frontier shift is measured under common random numbers, not
    re-sampled worlds.
    """
    return CampaignSpec.build(
        kind="detailed",
        axes={
            "scenario": tuple(
                spec for _, spec in frontier_robustness_scenarios(scale)
            ),
            "p": scale.detailed_p_values,
            "q": scale.detailed_q_values,
        },
        fixed={
            "mode": SchedulingMode.PSM_PBBF.value,
            "duration": scale.detailed_scenario_duration,
        },
        seed_params=("p", "q"),
        n_seeds=scale.detailed_runs,
        base_seed=scale.base_seed,
        seed_with_run_index=True,
    )


def run_scen04(scale: Scale) -> ExperimentResult:
    """Static (p, q) frontier robustness under skew + mid-run deaths."""
    from repro.analysis.compare import compare_frontiers
    from repro.analysis.objectives import Constraint
    from repro.analysis.pareto import Frontier
    from repro.experiments.pareto_figures import (
        _comparison_notes,
        _frontier_series,
        energy_objective,
        family_frontier_hook,
        frontier_table,
        update_latency_objective,
    )

    objectives = (update_latency_objective(), energy_objective())
    constraint = Constraint(
        name="delivery",
        metric=lambda m: m.updates_received_fraction,
        bound=scale.scen04_delivery,
        sense="ge",
    )
    panel = frontier_robustness_scenarios(scale)
    campaign = run_campaign(
        frontier_robustness_campaign(scale),
        post_process={
            "frontiers": family_frontier_hook(
                panel, objectives, (constraint,), scale.bootstrap_resamples
            )
        },
    )
    frontiers: Dict[str, Frontier] = campaign.artifacts["frontiers"]
    populated = {name: f for name, f in frontiers.items() if f.points}
    comparison = compare_frontiers(populated) if populated else None
    notes = list(_comparison_notes(frontiers, comparison))
    if len(populated) == 2:
        nominal_hv = comparison.summary("nominal").hypervolume
        perturbed_hv = comparison.summary("perturbed").hypervolume
        if nominal_hv > 0.0:
            notes.append(
                f"perturbed frontier retains "
                f"{perturbed_hv / nominal_hv:.0%} of the nominal "
                f"hypervolume (shared reference)"
            )
        notes.append(
            f"coverage C(nominal, perturbed)="
            f"{comparison.coverage[('nominal', 'perturbed')]:.2f}, "
            f"C(perturbed, nominal)="
            f"{comparison.coverage[('perturbed', 'nominal')]:.2f}"
        )
    header: Tuple[str, ...] = ()
    rows: Tuple[Tuple[str, ...], ...] = ()
    if populated:
        header, rows = frontier_table(frontiers)
    series = tuple(
        _frontier_series(name, frontiers[name])
        for name, _ in panel
        if frontiers[name].points
    )
    return ExperimentResult(
        experiment_id="scen04",
        title=(
            f"Frontier robustness under skew + mid-run deaths "
            f"(delivery >= {scale.scen04_delivery:g}, "
            f"skew std {scale.scen04_skew_std:g}s, "
            f"deaths {scale.scen04_failure_fraction:g})"
        ),
        x_label="mean update latency (s)",
        y_label="joules consumed / update (per node)",
        series=series,
        expectation=(
            "The trade-off structure survives the perturbations: the "
            "perturbed frontier keeps the inverse energy-latency shape "
            "and most of the nominal hypervolume, shifted rather than "
            "destroyed.  Feasibility shrinks first — skewed ATIM windows "
            "and mid-run deaths push low-q points under the delivery "
            "floor — while latency drifts up along what remains.  "
            "Per-node energy can read *lower* under deaths (dead radios "
            "idle at sleep power and dilute the mean), so the coverage "
            "notes, not a single axis, carry the comparison; high-q "
            "points degrade least (always-awake neighbours mask both "
            "skew and deaths)."
        ),
        notes=tuple(notes)
        + tuple(f"{label}: {spec.describe()}" for label, spec in panel),
        frontier_header=header,
        frontier_rows=rows,
    )
