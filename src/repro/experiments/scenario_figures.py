"""Scenario-extension figures: broadcasts beyond the paper's one world.

The paper evaluates a single scenario shape — one broadcast source at the
centre of an open grid.  These two figures run the *same* ideal-simulator
metrics through the scenario layer (:mod:`repro.scenarios`) to probe the
regimes related work cares about:

* **scen01** — reachability and per-hop latency as a growing fraction of
  nodes fail before the broadcast ("Sleeping on the Job"'s unreliable
  participants, expressed as a swept campaign axis);
* **scen02** — the p/q trade-off's portability across topology families
  (open grid, torus, grid with failed regions, uniform random, clustered
  — the time/energy-vs-topology question of Klonowski & Pajak).

Both are ordinary declarative campaigns: the scenario rides in the
``scenario`` axis as a token string, so the runner's seeds, backends and
caches treat deployment shape exactly like any numeric parameter.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, Series
from repro.ideal.simulator import SchedulingMode
from repro.runners import CampaignSpec, run_campaign
from repro.scenarios import ScenarioSpec


def _hop_buckets(scale: Scale) -> Tuple[int, int]:
    """Near/far hop-bucket distances sized to the scenario grid."""
    return 2, max(4, scale.scenario_side // 3)


def failure_scenarios(scale: Scale) -> Tuple[Tuple[float, ScenarioSpec], ...]:
    """The (fraction, spec) panel scen01 sweeps — one grid, rising failures."""
    return tuple(
        (
            fraction,
            ScenarioSpec.build(
                "grid", {"side": scale.scenario_side}, failure_fraction=fraction
            ),
        )
        for fraction in scale.failure_fractions
    )


def failure_campaign(scale: Scale) -> CampaignSpec:
    """The scen01 sweep: failure fraction x forwarding probability.

    Every point shares the same grid; only the failure set (drawn from
    the realization streams) and the p coin threshold vary.
    """
    hop_near, hop_far = _hop_buckets(scale)
    return CampaignSpec.build(
        kind="ideal",
        axes={
            "scenario": tuple(spec for _, spec in failure_scenarios(scale)),
            "p": scale.scenario_p_values,
        },
        fixed={
            "q": scale.scenario_q,
            "n_broadcasts": scale.scenario_n_broadcasts,
            "mode": SchedulingMode.PSM_PBBF.value,
            "hop_near": hop_near,
            "hop_far": hop_far,
        },
        seed_params=("scenario", "p", "q"),
        n_seeds=scale.scenario_seeds,
        base_seed=scale.base_seed,
    )


def portability_scenarios(scale: Scale) -> Tuple[Tuple[str, ScenarioSpec], ...]:
    """The (label, spec) family panel scen02 sweeps.

    Node counts are matched to ``scenario_side**2`` where the family
    allows it; random deployments use a density comfortably above the
    connectivity threshold and a random source (there is no centre).
    """
    side = scale.scenario_side
    n = side * side
    return (
        ("grid", ScenarioSpec.build("grid", {"side": side})),
        ("torus", ScenarioSpec.build("torus", {"side": side})),
        (
            "holes",
            ScenarioSpec.build(
                "grid_holes",
                {"side": side, "n_holes": 3, "hole_side": max(2, side // 6)},
            ),
        ),
        (
            "random",
            ScenarioSpec.build(
                "random",
                {"n_nodes": n, "radio_range": 10.0, "density": 12.0},
                source="random",
            ),
        ),
        (
            "clustered",
            ScenarioSpec.build(
                "clustered",
                {
                    "n_clusters": 4,
                    "cluster_size": max(4, n // 4),
                    "radio_range": 10.0,
                    "spread": 5.0,
                    "extent": 40.0,
                },
                source="random",
            ),
        ),
    )


def portability_campaign(scale: Scale) -> CampaignSpec:
    """The scen02 sweep: topology family x stay-awake probability.

    Seeds fold only the scenario (not q), so every q point of a family
    reuses the same realized deployment and coin streams — common random
    numbers make the per-family threshold curves monotone in q.
    """
    hop_near, hop_far = _hop_buckets(scale)
    return CampaignSpec.build(
        kind="ideal",
        axes={
            "scenario": tuple(spec for _, spec in portability_scenarios(scale)),
            "q": scale.ideal_q_values,
        },
        fixed={
            "p": scale.scenario_p,
            "n_broadcasts": scale.scenario_n_broadcasts,
            "mode": SchedulingMode.PSM_PBBF.value,
            "hop_near": hop_near,
            "hop_far": hop_far,
        },
        seed_params=("scenario",),
        n_seeds=scale.scenario_seeds,
        base_seed=scale.base_seed,
    )


def run_scen01(scale: Scale) -> ExperimentResult:
    """Reachability and per-hop latency vs pre-broadcast node failures."""
    campaign = run_campaign(failure_campaign(scale))
    panel = failure_scenarios(scale)
    series: List[Series] = []
    for p in scale.scenario_p_values:
        series.append(
            Series(
                label=f"coverage PBBF-{p:g}",
                points=tuple(
                    (
                        fraction,
                        campaign.mean_metric(
                            lambda m: m.mean_coverage, scenario=spec, p=p
                        ),
                    )
                    for fraction, spec in panel
                ),
            )
        )
    for p in scale.scenario_p_values:
        series.append(
            Series(
                label=f"latency/hop PBBF-{p:g}",
                points=tuple(
                    (
                        fraction,
                        campaign.mean_metric(
                            lambda m: m.mean_per_hop_latency, scenario=spec, p=p
                        ),
                    )
                    for fraction, spec in panel
                ),
            )
        )
    return ExperimentResult(
        experiment_id="scen01",
        title=(
            f"Reachability and latency vs node-failure fraction "
            f"(grid {scale.scenario_side}x{scale.scenario_side}, "
            f"q={scale.scenario_q:g})"
        ),
        x_label="failed node fraction",
        y_label="coverage (fraction) / per-hop latency (s)",
        series=tuple(series),
        expectation=(
            "Coverage decays gracefully while the surviving component "
            "percolates, then collapses once failures fragment it; higher "
            "p buys little against failures (dead nodes never forward).  "
            "Per-hop latency rises before the collapse as broadcasts "
            "route around the failed regions."
        ),
        notes=(
            "failures are injected before the first broadcast and count "
            "as unreached in coverage",
        ),
    )


def run_scen02(scale: Scale) -> ExperimentResult:
    """Coverage vs q across topology families at fixed p."""
    campaign = run_campaign(portability_campaign(scale))
    panel = portability_scenarios(scale)
    series = tuple(
        Series(
            label=label,
            points=tuple(
                (
                    q,
                    campaign.mean_metric(
                        lambda m: m.mean_coverage, scenario=spec, q=q
                    ),
                )
                for q in scale.ideal_q_values
            ),
        )
        for label, spec in panel
    )
    return ExperimentResult(
        experiment_id="scen02",
        title=(
            f"Topology portability of the p/q trade-off "
            f"(p={scale.scenario_p:g})"
        ),
        x_label="q",
        y_label="mean coverage (fraction of nodes reached)",
        series=series,
        expectation=(
            "Every family shows the same threshold structure in q, but "
            "the threshold moves with the deployment: dense unit-disk "
            "families (random, clustered) saturate at much lower q than "
            "the degree-4 lattices, the torus beats the open grid in the "
            "transition (no boundary losses), and carved-out failed "
            "regions push the grid's threshold right."
        ),
        notes=tuple(
            f"{label}: {spec.describe()}" for label, spec in panel
        ),
    )
