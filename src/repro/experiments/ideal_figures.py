"""Figures 4, 5, 8, 9, 10, 11 — the Section 4 ideal-simulator sweeps.

All six figures come from the same family of campaigns (one per
protocol-and-q operating point), expressed as a single declarative
:class:`~repro.runners.spec.CampaignSpec` and executed through
:func:`~repro.runners.campaign.run_campaign` — so one `--jobs N` fan-out
(or one warm cache) pays for every figure in the family at once.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, Series
from repro.ideal.simulator import SchedulingMode
from repro.runners import CampaignSpec, run_campaign
from repro.runners.points import (  # noqa: F401  (back-compat re-exports)
    IdealPointMetrics,
    _ideal_point,
)


def ideal_campaign(scale: Scale) -> CampaignSpec:
    """The Section 4 sweep as a declarative campaign.

    The (p, q) product runs under the PSM/PBBF schedule; the paper's two
    horizontal reference lines are the extra corner points — PSM is
    PBBF(0, 0) and NO PSM is PBBF(1, 1) with the radios always on.
    """
    return CampaignSpec.build(
        kind="ideal",
        axes={"p": scale.ideal_p_values, "q": scale.ideal_q_values},
        fixed={
            "grid_side": scale.grid_side,
            "n_broadcasts": scale.n_broadcasts,
            "mode": SchedulingMode.PSM_PBBF.value,
            "hop_near": scale.hop_distance_near,
            "hop_far": scale.hop_distance_far,
        },
        extra_points=(
            {"p": 0.0, "q": 0.0},
            {"p": 1.0, "q": 1.0, "mode": SchedulingMode.ALWAYS_ON.value},
        ),
        seed_params=("grid_side", "p", "q", "mode"),
        base_seed=scale.base_seed,
    )


def ideal_point(scale: Scale, p: float, q: float, mode: SchedulingMode) -> IdealPointMetrics:
    """Metrics for one (protocol, q) point at ``scale`` (memoized)."""
    seed = scale.seed_for("ideal", scale.grid_side, p, q, mode.value)
    return _ideal_point(
        scale.grid_side,
        scale.n_broadcasts,
        p,
        q,
        mode.value,
        seed,
        scale.hop_distance_near,
        scale.hop_distance_far,
    )


MetricFn = Callable[[IdealPointMetrics], Optional[float]]


def _sweep(scale: Scale, metric: MetricFn) -> Tuple[Series, ...]:
    """The standard Section 4 figure layout: PBBF-p lines + two baselines.

    PSM and NO PSM do not depend on q; the paper draws them as horizontal
    reference lines, which we reproduce by replicating their single
    measurement across the x axis.
    """
    campaign = run_campaign(ideal_campaign(scale))
    series: List[Series] = []
    for p in scale.ideal_p_values:
        points = tuple(
            (q, metric(campaign.metrics(p=p, q=q))) for q in scale.ideal_q_values
        )
        series.append(Series(label=f"PBBF-{p:g}", points=points))
    psm_value = metric(campaign.metrics(p=0.0, q=0.0))
    series.append(
        Series(
            label="PSM",
            points=tuple((q, psm_value) for q in scale.ideal_q_values),
        )
    )
    no_psm_value = metric(
        campaign.metrics(p=1.0, q=1.0, mode=SchedulingMode.ALWAYS_ON.value)
    )
    series.append(
        Series(
            label="NO PSM",
            points=tuple((q, no_psm_value) for q in scale.ideal_q_values),
        )
    )
    return tuple(series)


def run_fig04(scale: Scale) -> ExperimentResult:
    """Fraction of updates received by >= 90% of nodes, vs q."""
    return ExperimentResult(
        experiment_id="fig04",
        title="Threshold behavior for 90% reliability (ideal grid)",
        x_label="q",
        y_label="fraction of updates received by 90% of nodes",
        series=_sweep(scale, lambda m: m.reliability_90),
        expectation=(
            "PSM and NO PSM sit at 1.0.  Each PBBF-p curve is ~0 for small q, "
            "then jumps sharply to 1.0 at a p-dependent threshold q "
            "(larger p => larger threshold), mirroring bond percolation."
        ),
    )


def run_fig05(scale: Scale) -> ExperimentResult:
    """Fraction of updates received by >= 99% of nodes, vs q."""
    return ExperimentResult(
        experiment_id="fig05",
        title="Threshold behavior for 99% reliability (ideal grid)",
        x_label="q",
        y_label="fraction of updates received by 99% of nodes",
        series=_sweep(scale, lambda m: m.reliability_99),
        expectation=(
            "Same threshold structure as Figure 4 with thresholds shifted "
            "right: 99% coverage needs a higher q at every p."
        ),
    )


def run_fig08(scale: Scale) -> ExperimentResult:
    """Average per-node energy per update, vs q."""
    return ExperimentResult(
        experiment_id="fig08",
        title="Average energy consumption (ideal grid)",
        x_label="q",
        y_label="joules consumed / update (per node)",
        series=_sweep(scale, lambda m: m.joules_per_update_per_node),
        expectation=(
            "Energy rises linearly in q and is independent of p (all PBBF "
            "lines overlap), from the PSM floor (~0.3 J at a 10% duty "
            "cycle) to ~the NO PSM ceiling (~3 J at lambda=0.01/s); "
            "Eq. 8's 1 + q*Tsleep/Tactive."
        ),
    )


def run_fig09(scale: Scale) -> ExperimentResult:
    """Average hops actually travelled to near-distance nodes, vs q."""
    return ExperimentResult(
        experiment_id="fig09",
        title=(
            f"Average hops travelled to reach nodes "
            f"{scale.hop_distance_near} hops from the source"
        ),
        x_label="q",
        y_label=f"mean path hops to distance-{scale.hop_distance_near} nodes",
        series=_sweep(scale, lambda m: m.mean_hops_near),
        expectation=(
            "Near the reliability threshold paths are tortuous (hops well "
            "above the lattice distance, toward the d^(5/4) bound); as q "
            "grows the count collapses to ~the lattice distance.  PSM and "
            "NO PSM stay at the lattice distance throughout."
        ),
    )


def run_fig10(scale: Scale) -> ExperimentResult:
    """Average hops actually travelled to far-distance nodes, vs q."""
    return ExperimentResult(
        experiment_id="fig10",
        title=(
            f"Average hops travelled to reach nodes "
            f"{scale.hop_distance_far} hops from the source"
        ),
        x_label="q",
        y_label=f"mean path hops to distance-{scale.hop_distance_far} nodes",
        series=_sweep(scale, lambda m: m.mean_hops_far),
        expectation=(
            "Same shape as Figure 9 amplified by distance: path stretch "
            "near the threshold is larger in absolute hops, and again "
            "collapses to ~the lattice distance at high reliability."
        ),
    )


def run_fig11(scale: Scale) -> ExperimentResult:
    """Average per-hop update latency, vs q."""
    return ExperimentResult(
        experiment_id="fig11",
        title="Average per-hop update latency (ideal grid)",
        x_label="q",
        y_label="per-hop latency (s)",
        series=_sweep(scale, lambda m: m.mean_per_hop_latency),
        expectation=(
            "PSM sits near Tframe (~10 s per hop) and NO PSM near L1 "
            "(~1.5 s).  PBBF falls between: higher p and q push per-hop "
            "latency down toward L1 (note the paper's caveat that points "
            "at small q average only over the few nodes reached)."
        ),
    )
