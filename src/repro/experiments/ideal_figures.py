"""Figures 4, 5, 8, 9, 10, 11 — the Section 4 ideal-simulator sweeps.

All six figures come from the same family of campaigns (one per
protocol-and-q operating point); the module memoizes a compact per-point
metric summary so that regenerating several figures in one session pays
for each campaign once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

from repro.core.params import PBBFParams
from repro.experiments.scale import Scale
from repro.experiments.spec import ExperimentResult, Series
from repro.ideal.config import AnalysisParameters
from repro.ideal.simulator import IdealSimulator, SchedulingMode
from repro.net.topology import GridTopology


@dataclass(frozen=True)
class IdealPointMetrics:
    """Everything the Section 4 figures need from one operating point."""

    reliability_90: float
    reliability_99: float
    joules_per_update_per_node: float
    mean_per_hop_latency: Optional[float]
    mean_hops_near: Optional[float]
    mean_hops_far: Optional[float]
    mean_coverage: float


@lru_cache(maxsize=4096)
def _ideal_point(
    grid_side: int,
    n_broadcasts: int,
    p: float,
    q: float,
    mode_value: str,
    seed: int,
    hop_near: int,
    hop_far: int,
) -> IdealPointMetrics:
    """Run one campaign and boil it down to the figure metrics."""
    mode = SchedulingMode(mode_value)
    topology = GridTopology(grid_side)
    simulator = IdealSimulator(
        topology,
        PBBFParams(p=p, q=q),
        AnalysisParameters(grid_side=grid_side),
        seed=seed,
        mode=mode,
    )
    campaign = simulator.run_campaign(n_broadcasts)
    return IdealPointMetrics(
        reliability_90=campaign.reliability(0.90),
        reliability_99=campaign.reliability(0.99),
        joules_per_update_per_node=campaign.joules_per_update_per_node(),
        mean_per_hop_latency=campaign.mean_per_hop_latency(),
        mean_hops_near=campaign.mean_hops_at_distance(hop_near),
        mean_hops_far=campaign.mean_hops_at_distance(hop_far),
        mean_coverage=campaign.mean_coverage(),
    )


def ideal_point(scale: Scale, p: float, q: float, mode: SchedulingMode) -> IdealPointMetrics:
    """Metrics for one (protocol, q) point at ``scale`` (memoized)."""
    seed = scale.seed_for("ideal", scale.grid_side, p, q, mode.value)
    return _ideal_point(
        scale.grid_side,
        scale.n_broadcasts,
        p,
        q,
        mode.value,
        seed,
        scale.hop_distance_near,
        scale.hop_distance_far,
    )


MetricFn = Callable[[IdealPointMetrics], Optional[float]]


def _sweep(scale: Scale, metric: MetricFn) -> Tuple[Series, ...]:
    """The standard Section 4 figure layout: PBBF-p lines + two baselines.

    PSM and NO PSM do not depend on q; the paper draws them as horizontal
    reference lines, which we reproduce by replicating their single
    measurement across the x axis.
    """
    series: List[Series] = []
    for p in scale.ideal_p_values:
        points = tuple(
            (q, metric(ideal_point(scale, p, q, SchedulingMode.PSM_PBBF)))
            for q in scale.ideal_q_values
        )
        series.append(Series(label=f"PBBF-{p:g}", points=points))
    psm_value = metric(ideal_point(scale, 0.0, 0.0, SchedulingMode.PSM_PBBF))
    series.append(
        Series(
            label="PSM",
            points=tuple((q, psm_value) for q in scale.ideal_q_values),
        )
    )
    no_psm_value = metric(ideal_point(scale, 1.0, 1.0, SchedulingMode.ALWAYS_ON))
    series.append(
        Series(
            label="NO PSM",
            points=tuple((q, no_psm_value) for q in scale.ideal_q_values),
        )
    )
    return tuple(series)


def run_fig04(scale: Scale) -> ExperimentResult:
    """Fraction of updates received by >= 90% of nodes, vs q."""
    return ExperimentResult(
        experiment_id="fig04",
        title="Threshold behavior for 90% reliability (ideal grid)",
        x_label="q",
        y_label="fraction of updates received by 90% of nodes",
        series=_sweep(scale, lambda m: m.reliability_90),
        expectation=(
            "PSM and NO PSM sit at 1.0.  Each PBBF-p curve is ~0 for small q, "
            "then jumps sharply to 1.0 at a p-dependent threshold q "
            "(larger p => larger threshold), mirroring bond percolation."
        ),
    )


def run_fig05(scale: Scale) -> ExperimentResult:
    """Fraction of updates received by >= 99% of nodes, vs q."""
    return ExperimentResult(
        experiment_id="fig05",
        title="Threshold behavior for 99% reliability (ideal grid)",
        x_label="q",
        y_label="fraction of updates received by 99% of nodes",
        series=_sweep(scale, lambda m: m.reliability_99),
        expectation=(
            "Same threshold structure as Figure 4 with thresholds shifted "
            "right: 99% coverage needs a higher q at every p."
        ),
    )


def run_fig08(scale: Scale) -> ExperimentResult:
    """Average per-node energy per update, vs q."""
    return ExperimentResult(
        experiment_id="fig08",
        title="Average energy consumption (ideal grid)",
        x_label="q",
        y_label="joules consumed / update (per node)",
        series=_sweep(scale, lambda m: m.joules_per_update_per_node),
        expectation=(
            "Energy rises linearly in q and is independent of p (all PBBF "
            "lines overlap), from the PSM floor (~0.3 J at a 10% duty "
            "cycle) to ~the NO PSM ceiling (~3 J at lambda=0.01/s); "
            "Eq. 8's 1 + q*Tsleep/Tactive."
        ),
    )


def run_fig09(scale: Scale) -> ExperimentResult:
    """Average hops actually travelled to near-distance nodes, vs q."""
    return ExperimentResult(
        experiment_id="fig09",
        title=(
            f"Average hops travelled to reach nodes "
            f"{scale.hop_distance_near} hops from the source"
        ),
        x_label="q",
        y_label=f"mean path hops to distance-{scale.hop_distance_near} nodes",
        series=_sweep(scale, lambda m: m.mean_hops_near),
        expectation=(
            "Near the reliability threshold paths are tortuous (hops well "
            "above the lattice distance, toward the d^(5/4) bound); as q "
            "grows the count collapses to ~the lattice distance.  PSM and "
            "NO PSM stay at the lattice distance throughout."
        ),
    )


def run_fig10(scale: Scale) -> ExperimentResult:
    """Average hops actually travelled to far-distance nodes, vs q."""
    return ExperimentResult(
        experiment_id="fig10",
        title=(
            f"Average hops travelled to reach nodes "
            f"{scale.hop_distance_far} hops from the source"
        ),
        x_label="q",
        y_label=f"mean path hops to distance-{scale.hop_distance_far} nodes",
        series=_sweep(scale, lambda m: m.mean_hops_far),
        expectation=(
            "Same shape as Figure 9 amplified by distance: path stretch "
            "near the threshold is larger in absolute hops, and again "
            "collapses to ~the lattice distance at high reliability."
        ),
    )


def run_fig11(scale: Scale) -> ExperimentResult:
    """Average per-hop update latency, vs q."""
    return ExperimentResult(
        experiment_id="fig11",
        title="Average per-hop update latency (ideal grid)",
        x_label="q",
        y_label="per-hop latency (s)",
        series=_sweep(scale, lambda m: m.mean_per_hop_latency),
        expectation=(
            "PSM sits near Tframe (~10 s per hop) and NO PSM near L1 "
            "(~1.5 s).  PBBF falls between: higher p and q push per-hop "
            "latency down toward L1 (note the paper's caveat that points "
            "at small q average only over the few nodes reached)."
        ),
    )
