"""Text rendering of experiment results.

The reproduction compares *shapes* against the paper's plots, so results
render as aligned text tables — one row per x value, one column per series
— which diff cleanly and read directly in terminals and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.spec import ExperimentResult


def _format_cell(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e6:
        return f"{int(value)}"
    return f"{value:.4g}"


def aligned_table(
    header: Sequence[str], rows: Sequence[Sequence[str]], indent: str = "  "
) -> List[str]:
    """Column-aligned lines: left-justified header, right-justified cells.

    The one table layout every surface shares — the figure series tables,
    the frontier blocks and the ``pareto`` CLI all render through here, so
    a formatting change propagates everywhere at once.
    """
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
        for col in range(len(header))
    ]
    lines = [indent + "  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for row in rows:
        lines.append(indent + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return lines


def _render_frontier(result: ExperimentResult, lines: List[str]) -> None:
    """Append the frontier table: one aligned row per non-dominated point.

    The knee row arrives marked with ``*`` in its first cell (the
    selector's choice).
    """
    lines.append("  frontier (non-dominated operating points; * = knee):")
    lines.extend(
        aligned_table(result.frontier_header, result.frontier_rows, indent="    ")
    )


def render_result(result: ExperimentResult) -> str:
    """Render a figure as a column-aligned table (or a table artifact as rows)."""
    lines: List[str] = [f"== {result.experiment_id}: {result.title} =="]
    if result.table_rows:
        width = max(len(name) for name, _ in result.table_rows)
        for name, value in result.table_rows:
            lines.append(f"  {name.ljust(width)}  {value}")
    else:
        xs: List[float] = []
        for series in result.series:
            for x in series.xs():
                if x not in xs:
                    xs.append(x)
        xs.sort()
        header = [result.x_label] + [series.label for series in result.series]
        rows = [
            [_format_cell(x)] + [
                _format_cell(series.y_at(x)) for series in result.series
            ]
            for x in xs
        ]
        lines.extend(aligned_table(header, rows))
        lines.append(f"  (y = {result.y_label})")
    if result.frontier_header:
        _render_frontier(result, lines)
    if result.notes:
        for note in result.notes:
            lines.append(f"  note: {note}")
    lines.append(f"  paper: {result.expectation}")
    return "\n".join(lines)
