"""Text rendering of experiment results.

The reproduction compares *shapes* against the paper's plots, so results
render as aligned text tables — one row per x value, one column per series
— which diff cleanly and read directly in terminals and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.spec import ExperimentResult


def _format_cell(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e6:
        return f"{int(value)}"
    return f"{value:.4g}"


def render_result(result: ExperimentResult) -> str:
    """Render a figure as a column-aligned table (or a table artifact as rows)."""
    lines: List[str] = [f"== {result.experiment_id}: {result.title} =="]
    if result.table_rows:
        width = max(len(name) for name, _ in result.table_rows)
        for name, value in result.table_rows:
            lines.append(f"  {name.ljust(width)}  {value}")
    else:
        xs: List[float] = []
        for series in result.series:
            for x in series.xs():
                if x not in xs:
                    xs.append(x)
        xs.sort()
        header = [result.x_label] + [series.label for series in result.series]
        rows = [
            [_format_cell(x)] + [
                _format_cell(series.y_at(x)) for series in result.series
            ]
            for x in xs
        ]
        widths = [
            max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
            for col in range(len(header))
        ]
        lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
        lines.append(f"  (y = {result.y_label})")
    if result.notes:
        for note in result.notes:
            lines.append(f"  note: {note}")
    lines.append(f"  paper: {result.expectation}")
    return "\n".join(lines)
