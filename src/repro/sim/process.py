"""Generator-based coroutine processes over the event engine.

A :class:`Process` wraps a Python generator.  The generator expresses a
node's behaviour as straight-line code and yields whenever it needs to wait:

* ``yield <float>`` — sleep for that many simulated seconds;
* ``yield <Signal>`` — park until the signal fires, receiving the value it
  was fired with;
* ``return`` / ``StopIteration`` — the process completes.

Processes may be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupt` inside the generator at its current wait point — the
mechanism used, for instance, to cut a sleep period short when a node's
q-coin says to stay awake and traffic arrives.

Example
-------
>>> from repro.sim import Engine, Process
>>> engine = Engine()
>>> log = []
>>> def beacon_loop():
...     while True:
...         log.append(engine.now)
...         yield 10.0
>>> _ = Process(engine, beacon_loop())
>>> _ = engine.run(until=25.0)
>>> log
[0.0, 10.0, 20.0]
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.sim.engine import Engine, EventHandle, SimulationError


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries whatever the interrupter passed in.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Signal:
    """A broadcastable condition that processes can wait on.

    Each :meth:`fire` wakes *all* currently-waiting processes, delivering
    ``value`` as the result of their ``yield``.  Signals are reusable: a
    process may loop and wait on the same signal repeatedly.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List["Process"] = []

    @property
    def waiter_count(self) -> int:
        """Number of processes currently parked on this signal."""
        return len(self._waiters)

    def fire(self, value: Any = None) -> int:
        """Wake every waiting process; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)
        return len(waiters)

    def _park(self, process: "Process") -> None:
        self._waiters.append(process)

    def _unpark(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """Drives a generator as a simulation process.

    The process starts immediately: its first segment runs synchronously at
    construction time (at the engine's current clock), up to its first
    ``yield``.
    """

    def __init__(self, engine: Engine, generator: Generator[Any, Any, Any], name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"expected a generator, got {generator!r}")
        self._engine = engine
        self._generator = generator
        self.name = name
        self._alive = True
        self._timer: Optional[EventHandle] = None
        self._waiting_on: Optional[Signal] = None
        self._step(None)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished or been killed."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its wait point.

        No-op on a dead process.
        """
        if not self._alive:
            return
        self._cancel_wait()
        self._throw(Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process without running any more of its code."""
        if not self._alive:
            return
        self._cancel_wait()
        self._alive = False
        self._generator.close()

    # -- internal machinery -------------------------------------------------

    def _resume(self, value: Any) -> None:
        """Called by timers and signals to continue the generator."""
        if not self._alive:
            return
        self._timer = None
        self._waiting_on = None
        self._step(value)

    def _step(self, value: Any) -> None:
        try:
            yielded = self._generator.send(value)
        except StopIteration:
            self._alive = False
            return
        self._wait_on(yielded)

    def _throw(self, exc: BaseException) -> None:
        try:
            yielded = self._generator.throw(exc)
        except StopIteration:
            self._alive = False
            return
        except Interrupt:
            # Process chose not to handle the interrupt: it dies quietly.
            self._alive = False
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Signal):
            self._waiting_on = yielded
            yielded._park(self)
            return
        if isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0.0:
                self._alive = False
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {delay}"
                )
            self._timer = self._engine.schedule(delay, lambda: self._resume(None))
            return
        self._alive = False
        raise SimulationError(
            f"process {self.name!r} yielded {yielded!r}; expected a delay or Signal"
        )

    def _cancel_wait(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._waiting_on is not None:
            self._waiting_on._unpark(self)
            self._waiting_on = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"
