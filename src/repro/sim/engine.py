"""The discrete-event engine.

Semantics
---------
* Time is a float starting at 0.0 and only moves forward.
* Events scheduled for the same timestamp fire in (priority, insertion)
  order, so behaviour is fully deterministic for a fixed seed.
* Cancelling an event is O(1): the handle is flagged and skipped when it
  reaches the top of the heap (lazy deletion).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Tuple


#: Priority for control-plane events (scenario node deaths and similar
#: world mutations) scheduled alongside protocol traffic: lower than the
#: default 0, so a node dying at time t is silenced *before* any frame it
#: would have sent or heard at that same instant — deaths are first-class
#: scheduled events, not post-hoc filters.
CONTROL_PRIORITY = -1


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Returned by :meth:`Engine.schedule`; hold on to it only if the event may
    need to be cancelled (e.g. a MAC timeout that a reception pre-empts).
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.pending and self._engine is not None:
            self._engine._pending -= 1
        self.cancelled = True
        self.callback = None  # release closure references promptly

    @property
    def pending(self) -> bool:
        """True while the event is still due to fire."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        # Kept for external sorting convenience; the engine's heap orders
        # tuple keys directly and never compares handles.
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, prio={self.priority}, {state})"


class Engine:
    """Heap-based discrete-event scheduler with a monotone clock."""

    def __init__(self) -> None:
        self._now = 0.0
        # Tuple-keyed heap entries: (time, priority, seq, handle).  Tuple
        # comparison short-circuits on the float time in C, where ordering
        # via EventHandle.__lt__ would dispatch a Python method call per
        # sift step of the MAC-heavy hot loop.  seq is unique per entry,
        # so comparison never reaches the (incomparable) handle.
        self._queue: List[Tuple[float, int, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_fired = 0
        self._pending = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far (diagnostics)."""
        return self._events_fired

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue.

        O(1): a live counter maintained on schedule/cancel/fire, never a
        scan of the heap (which MAC-heavy simulations keep thousands
        deep).
        """
        return self._pending

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``priority`` breaks ties between simultaneous events: lower fires
        first.  Returns a cancellable :class:`EventHandle`.
        """
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        if math.isnan(delay) or delay < 0.0:
            raise SimulationError(f"cannot schedule {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        if math.isnan(time) or time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = EventHandle(time, priority, self._seq, callback, engine=self)
        heapq.heappush(self._queue, (time, priority, self._seq, event))
        self._seq += 1
        self._pending += 1
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events in order until the queue drains or limits are hit.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time; the clock is advanced
            to exactly ``until``.  ``None`` runs to queue exhaustion.
        max_events:
            Safety valve for runaway simulations; raises
            :class:`SimulationError` when exceeded.

        Returns the simulation time at which the run stopped.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is before current time {self._now}")
        self._running = True
        self._stopped = False
        fired_this_run = 0
        try:
            while self._queue:
                time, _, _, event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                self._pending -= 1
                self._now = time
                callback = event.callback
                event.callback = None
                self._events_fired += 1
                fired_this_run += 1
                if max_events is not None and fired_this_run > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                callback()  # type: ignore[misc]  # pending events always hold one
                if self._stopped:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight callback returns."""
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events (the clock keeps its value)."""
        for _, _, _, event in self._queue:
            event.cancel()
        self._queue.clear()
        self._pending = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self._now:.6f}, pending={self.pending_count})"
