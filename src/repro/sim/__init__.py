"""Discrete-event simulation kernel.

The paper's Section 5 evaluation runs on ns-2; this package is the
reproduction's equivalent substrate: a deterministic discrete-event engine
with

* :class:`~repro.sim.engine.Engine` -- a binary-heap event queue with a
  monotone clock, cancellable event handles, and deterministic FIFO
  tie-breaking for simultaneous events;
* :class:`~repro.sim.process.Process` -- optional generator-based
  coroutine processes layered over the engine (``yield delay`` /
  ``yield signal``), convenient for per-node behaviours such as the
  beacon-interval loop;
* :class:`~repro.sim.process.Signal` -- a broadcastable wake-up condition
  processes can wait on.

The engine is intentionally minimal: no real-time pacing, no threads, no
global state.  Everything above it (MAC, PHY, application) is built from
``schedule`` callbacks and processes.
"""

from repro.sim.engine import Engine, EventHandle, SimulationError
from repro.sim.process import Interrupt, Process, Signal

__all__ = [
    "Engine",
    "EventHandle",
    "Interrupt",
    "Process",
    "Signal",
    "SimulationError",
]
