"""IEEE 802.11 PSM with PBBF integrated (the paper's Figure 2 MAC).

Behaviour per beacon interval (BI), mirroring 802.11 PSM + Figure 3:

1. **BI start** — every node wakes (perfect synchronisation, as the paper
   assumes).  One designated node transmits the synchronisation beacon.
   Nodes holding queued *normal* broadcasts contend to send a broadcast
   ATIM inside the ATIM window.
2. **ATIM window end** — the Sleep-Decision-Handler runs: a node stays
   awake for the rest of the BI when it announced data (ATIM sent), was
   announced to (ATIM received), is mid-contention for an immediate
   forward, or its q-coin came up heads; otherwise it sleeps until the
   next BI.
3. **Data exchange** — announced broadcasts are transmitted right after
   the window (data frames are never sent inside the window; the CSMA gate
   enforces it).  Every receiver runs Figure 3's Receive-Broadcast: new
   packets are forwarded *immediately* with probability p — heard only by
   whoever is still awake — or queued for announcement in the next window.

Plain 802.11 PSM is exactly this MAC with ``p = q = 0``; the paper makes
the same identification.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional

from repro.core.pbbf import ForwardingDecision, PBBFAgent, SleepDecision
from repro.energy.model import RadioEnergyModel, RadioState
from repro.mac.base import DeliveryCallback, MacConfig, MacStats
from repro.mac.csma import CsmaConfig, CsmaTransmitter
from repro.net.channel import Channel
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine


# -- pure slot geometry ---------------------------------------------------------
#
# The beacon-interval arithmetic is shared between this event-driven MAC and
# the seed-batched kernel (repro.detailed.batched).  Both must agree
# float-for-float — interval indices come from the same floor division and
# interval boundaries from the same multiply-add — so the formulas live here
# as pure functions of (time, offset, config scalars) and the MAC delegates.


def bi_index_at(now: float, clock_offset: float, beacon_interval: float) -> int:
    """Index of the beacon interval containing ``now``.

    Interval k spans ``[offset + k*BI, offset + (k+1)*BI)`` in the node's
    (possibly skewed) local schedule.
    """
    return int(math.floor((now - clock_offset) / beacon_interval))


def bi_start_time(bi: int, clock_offset: float, beacon_interval: float) -> float:
    """Absolute start time of beacon interval ``bi``."""
    return bi * beacon_interval + clock_offset


def in_atim_window_at(
    now: float, clock_offset: float, beacon_interval: float, atim_window: float
) -> bool:
    """Is ``now`` inside an ATIM window of the given schedule?"""
    bi = bi_index_at(now, clock_offset, beacon_interval)
    phase = now - bi_start_time(bi, clock_offset, beacon_interval)
    return phase < atim_window


def data_gate_at(
    now: float, clock_offset: float, beacon_interval: float, atim_window: float
) -> float:
    """Earliest start for a data frame: never inside an ATIM window."""
    bi_start = bi_start_time(
        bi_index_at(now, clock_offset, beacon_interval), clock_offset, beacon_interval
    )
    if now - bi_start < atim_window:
        return bi_start + atim_window
    return now


class PBBFMac:
    """One node's PSM + PBBF MAC.

    Parameters
    ----------
    engine / channel:
        Simulation clock and the shared medium.
    node_id:
        This node.
    agent:
        The node's :class:`~repro.core.pbbf.PBBFAgent` (p/q coins plus
        duplicate suppression).  Pass ``PBBFParams.psm()`` for plain PSM.
    radio:
        The node's radio state machine / energy meter.
    deliver:
        Upward callback invoked once per *new* data packet.
    rng:
        Node-specific randomness for CSMA backoff.
    config / csma_config:
        Frame timing and contention parameters.
    beacon_duty:
        ``beacon_duty(bi_index) -> bool`` — is this node the beacon sender
        for that interval?  Defaults to never (the simulator wires up a
        round-robin so each BI has exactly one sender).
    clock_offset:
        Failure injection: this node's schedule runs ``clock_offset``
        seconds late relative to the network epoch.  The paper assumes
        perfect synchronisation (its Section 5 discussion); non-zero
        offsets desynchronise ATIM windows and model sync failure.
    """

    def __init__(
        self,
        engine: Engine,
        channel: Channel,
        node_id: int,
        agent: PBBFAgent,
        radio: RadioEnergyModel,
        deliver: DeliveryCallback,
        rng: random.Random,
        config: Optional[MacConfig] = None,
        csma_config: Optional[CsmaConfig] = None,
        beacon_duty: Optional[Callable[[int], bool]] = None,
        clock_offset: float = 0.0,
    ) -> None:
        self._engine = engine
        self._channel = channel
        self.node_id = node_id
        self.agent = agent
        self.radio = radio
        self._deliver = deliver
        self.config = config if config is not None else MacConfig()
        self._beacon_duty = beacon_duty if beacon_duty is not None else lambda bi: False
        self.stats = MacStats()
        self._csma = CsmaTransmitter(
            engine,
            channel,
            node_id,
            rng,
            begin_tx=self._begin_tx,
            end_tx=self._end_tx,
            config=csma_config,
        )
        self._normal_queue: List[Packet] = []
        self._bi_index = -1
        self._announced_tx = False
        self._announced_rx = False
        self._awake_this_bi = True
        self._started = False
        self._stopped = False
        self._clock_offset = float(clock_offset) % self.config.beacon_interval

    # -- schedule geometry ----------------------------------------------------

    def current_bi(self) -> int:
        """Index of the beacon interval containing the current time.

        Interval k spans ``[offset + k*BI, offset + (k+1)*BI)`` in this
        node's (possibly skewed) local schedule.
        """
        return bi_index_at(
            self._engine.now, self._clock_offset, self.config.beacon_interval
        )

    def _bi_start_time(self, bi: int) -> float:
        return bi_start_time(bi, self._clock_offset, self.config.beacon_interval)

    def in_atim_window(self) -> bool:
        """Is the current instant inside an ATIM window?"""
        return in_atim_window_at(
            self._engine.now,
            self._clock_offset,
            self.config.beacon_interval,
            self.config.atim_window,
        )

    def _data_gate(self, packet: Packet) -> float:
        """Earliest start for a data frame: never inside an ATIM window."""
        return data_gate_at(
            self._engine.now,
            self._clock_offset,
            self.config.beacon_interval,
            self.config.atim_window,
        )

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Begin the beacon-interval loop (call once, at simulation start)."""
        if self._started:
            raise RuntimeError(f"MAC of node {self.node_id} already started")
        self._started = True
        if self._clock_offset > 0.0 and self._engine.now < self._clock_offset:
            # Skewed node: its first local interval opens offset seconds
            # late; the radio listens in the meantime.
            self._engine.schedule(
                self._clock_offset - self._engine.now, self._on_bi_start
            )
            return
        self._on_bi_start()

    def stop(self) -> None:
        """Permanently silence this node (node-failure injection).

        The radio sleeps forever, queued frames are dropped, and future
        schedule events become no-ops.  Idempotent.
        """
        if self._stopped:
            return
        self._stopped = True
        self._csma.cancel_all()
        self._normal_queue.clear()
        if self.radio.state is not RadioState.SLEEP:
            self.radio.set_state(RadioState.SLEEP, self._engine.now)

    def broadcast(self, packet: Packet) -> None:
        """Accept an application broadcast.

        Packets arriving inside the ATIM window are announced in that same
        window and sent right after it (the paper's sources behave this
        way: "new packets always arrive at the source during the ATIM
        window, so they are sent with a delay of about AW").  Packets
        arriving later wait for the next window.
        """
        if self._stopped:
            return
        # Echoes of our own broadcast must be dropped as duplicates.
        self.agent.mark_seen(packet.broadcast_id)
        self._normal_queue.append(packet)
        if self.in_atim_window():
            self._announce_pending()

    # -- beacon interval machinery -----------------------------------------------

    def _on_bi_start(self) -> None:
        if self._stopped:
            return
        now = self._engine.now
        self._bi_index = self.current_bi()
        self._announced_tx = False
        self._announced_rx = False
        self._awake_this_bi = True  # everyone is awake during the window
        if self.radio.state is not RadioState.TX:
            self.radio.set_state(RadioState.LISTEN, now)
        if self.config.send_beacons and self._beacon_duty(self._bi_index):
            beacon = Packet(
                kind=PacketKind.BEACON,
                origin=self.node_id,
                sender=self.node_id,
                seqno=self._bi_index,
                size_bytes=self.config.beacon_size_bytes,
            )
            self._csma.enqueue(beacon, on_sent=self._count_beacon)
        if self._normal_queue:
            self._announce_pending()
        self._engine.schedule(self.config.atim_window, self._on_window_end)
        self._engine.schedule(self.config.beacon_interval, self._on_bi_start)

    def _announce_pending(self) -> None:
        """Send one broadcast ATIM and release queued data to CSMA."""
        if not self._normal_queue:
            return
        if not self._announced_tx:
            atim = Packet(
                kind=PacketKind.ATIM,
                origin=self.node_id,
                sender=self.node_id,
                seqno=self._bi_index,
                size_bytes=self.config.atim_size_bytes,
            )
            self._csma.enqueue(atim, on_sent=self._count_atim)
            self._announced_tx = True
        queued, self._normal_queue = self._normal_queue, []
        for packet in queued:
            self._csma.enqueue(
                packet, gate=self._data_gate, on_sent=self._count_normal_data
            )

    def _on_window_end(self) -> None:
        """Figure 3's Sleep-Decision-Handler, at the end of active time."""
        if self._stopped:
            return
        decision = self.agent.sleep_decision(
            data_to_send=self._csma.has_pending(),
            data_to_recv=self._announced_rx,
        )
        self._awake_this_bi = decision is SleepDecision.STAY_AWAKE
        if self.radio.state is not RadioState.TX:
            self.radio.set_state(self._scheduled_state(), self._engine.now)

    def _scheduled_state(self) -> RadioState:
        """The radio state the schedule calls for right now (excluding TX)."""
        if self._stopped:
            return RadioState.SLEEP
        if self.in_atim_window():
            return RadioState.LISTEN
        if self._awake_this_bi or self._csma.has_pending():
            return RadioState.LISTEN
        return RadioState.SLEEP

    # -- receive path ---------------------------------------------------------

    def handle_receive(self, packet: Packet) -> None:
        """Process a cleanly decoded frame."""
        if self._stopped:
            return
        if packet.kind is PacketKind.BEACON:
            return  # synchronisation is assumed perfect
        if packet.kind is PacketKind.ATIM:
            self.stats.atims_received += 1
            self._announced_rx = True
            return
        decision = self.agent.receive_broadcast(packet.broadcast_id)
        if decision is ForwardingDecision.DUPLICATE:
            self.stats.duplicates_dropped += 1
            return
        self.stats.data_received += 1
        self._deliver(packet, self._engine.now)
        forward = packet.forwarded_by(self.node_id)
        if decision is ForwardingDecision.IMMEDIATE:
            self._csma.enqueue(
                forward, gate=self._data_gate, on_sent=self._count_immediate_data
            )
        else:
            self._normal_queue.append(forward)
            if self.in_atim_window():
                self._announce_pending()

    def handle_collision(self, packet: Packet) -> None:
        """A frame addressed this way was corrupted by overlap."""
        self.stats.collisions_heard += 1

    # -- radio hooks -----------------------------------------------------------

    def _begin_tx(self) -> None:
        self.radio.set_state(RadioState.TX, self._engine.now)

    def _end_tx(self) -> None:
        self.radio.set_state(self._scheduled_state(), self._engine.now)

    # -- stats hooks ------------------------------------------------------------

    def _count_beacon(self, packet: Packet) -> None:
        self.stats.beacons_sent += 1

    def _count_atim(self, packet: Packet) -> None:
        self.stats.atims_sent += 1

    def _count_normal_data(self, packet: Packet) -> None:
        self.stats.data_sent += 1
        self.stats.normal_sends += 1

    def _count_immediate_data(self, packet: Packet) -> None:
        self.stats.data_sent += 1
        self.stats.immediate_sends += 1
