"""GOSSIP1(g): the probabilistic-flooding baseline (paper ref [5]).

Section 2.1 positions PBBF against gossip-based routing (Haas, Halpern,
Li): each node, on first receiving a broadcast, forwards it to *all*
neighbours with probability g and stays silent otherwise.  Structurally
this is **site** percolation — a node is entirely in or entirely out —
where PBBF's per-link coin flips make it a **bond** process; on the same
lattice the site threshold (~0.593) sits above the bond threshold (0.5),
which is the paper's reason PBBF stretches a probability budget further.

Gossip as published runs over always-on radios, so :class:`GossipMac`
extends the always-on flooding MAC, replacing its unconditional re-flood
with the g-coin.  The source always transmits (GOSSIP1's convention).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.energy.model import RadioEnergyModel
from repro.mac.always_on import AlwaysOnMac
from repro.mac.base import DeliveryCallback
from repro.mac.csma import CsmaConfig
from repro.net.channel import Channel
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine
from repro.util.validation import check_probability


class GossipMac(AlwaysOnMac):
    """Always-on gossip: forward each fresh broadcast with probability g."""

    def __init__(
        self,
        engine: Engine,
        channel: Channel,
        node_id: int,
        radio: RadioEnergyModel,
        deliver: DeliveryCallback,
        rng: random.Random,
        gossip_probability: float = 0.7,
        csma_config: Optional[CsmaConfig] = None,
    ) -> None:
        super().__init__(
            engine, channel, node_id, radio, deliver, rng,
            csma_config=csma_config,
        )
        self.gossip_probability = check_probability(
            "gossip_probability", gossip_probability
        )
        self._coin_rng = rng
        self.forwards_declined = 0

    def handle_receive(self, packet: Packet) -> None:
        """Deliver every fresh packet; re-flood it only on a g-heads coin."""
        if self._stopped:
            return
        if packet.kind is not PacketKind.DATA:
            return
        if packet.broadcast_id in self._seen:
            self.stats.duplicates_dropped += 1
            return
        self._seen.add(packet.broadcast_id)
        self.stats.data_received += 1
        self._deliver(packet, self._engine.now)
        if self._coin_rng.random() < self.gossip_probability:
            self._csma.enqueue(
                packet.forwarded_by(self.node_id), on_sent=self._count_data
            )
        else:
            self.forwards_declined += 1
