"""CSMA/CA broadcast transmitter (802.11 DCF, broadcast subset).

Broadcast frames in 802.11 DCF carry no RTS/CTS, no ACK and no retries: the
sender waits for the medium to be idle for DIFS, counts down a random
backoff, and transmits once.  This module implements that discipline over
:class:`~repro.net.channel.Channel`:

* one transmission in flight per node; queued frames go out FIFO;
* each frame may carry a *gate* — an earliest-allowed-start time that the
  owning MAC recomputes on demand (used to keep data frames out of ATIM
  windows, per the PSM rule the paper notes in Section 3);
* the medium must be continuously idle from the start of the DIFS+backoff
  countdown to the fire instant (checked via
  :meth:`~repro.net.channel.Channel.busy_during`); any interruption
  re-samples a fresh backoff once the medium frees up.

Collisions still happen — exactly as they should — when two nodes' backoff
countdowns expire closer together than carrier sensing can resolve, or when
hidden terminals cannot hear each other at all.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.net.channel import Channel
from repro.net.packet import Packet
from repro.sim.engine import Engine, EventHandle
from repro.util.validation import check_non_negative, check_positive, check_positive_int

#: Gate callback: given a packet, the earliest absolute time its
#: transmission may *start* (the MAC re-evaluates this as windows move).
GateFn = Callable[[Packet], float]

#: Called with the packet when its transmission completes.
SentCallback = Callable[[Packet], None]


@dataclass(frozen=True)
class CsmaConfig:
    """Contention timing.

    The defaults are scaled for the paper's 19.2 kbps sensor radios (a
    64-byte frame occupies ~26.7 ms of airtime, so millisecond-scale slots
    keep backoff meaningful without dwarfing the frame itself).
    """

    slot_time: float = 0.002
    difs: float = 0.005
    contention_window: int = 32

    def __post_init__(self) -> None:
        check_positive("slot_time", self.slot_time)
        check_non_negative("difs", self.difs)
        check_positive_int("contention_window", self.contention_window)


@dataclass
class _QueuedFrame:
    packet: Packet
    gate: Optional[GateFn]
    on_sent: Optional[SentCallback]


class CsmaTransmitter:
    """Per-node CSMA/CA engine for broadcast frames.

    Parameters
    ----------
    engine / channel:
        Simulation clock and shared medium.
    node_id:
        The transmitting node.
    rng:
        Backoff randomness (node-specific stream).
    begin_tx / end_tx:
        Radio hooks: ``begin_tx()`` is invoked at the instant the frame
        hits the air (owner must put the radio in TX), ``end_tx()`` when
        it leaves the air (owner restores LISTEN/SLEEP as its schedule
        dictates).
    config:
        Contention timing.
    """

    def __init__(
        self,
        engine: Engine,
        channel: Channel,
        node_id: int,
        rng: random.Random,
        begin_tx: Callable[[], None],
        end_tx: Callable[[], None],
        config: Optional[CsmaConfig] = None,
    ) -> None:
        self._engine = engine
        self._channel = channel
        self._node_id = node_id
        self._rng = rng
        self._begin_tx = begin_tx
        self._end_tx = end_tx
        self.config = config if config is not None else CsmaConfig()
        self._queue: Deque[_QueuedFrame] = deque()
        self._pending_event: Optional[EventHandle] = None
        self._transmitting = False
        self.frames_sent = 0
        self.backoff_restarts = 0

    def enqueue(
        self,
        packet: Packet,
        gate: Optional[GateFn] = None,
        on_sent: Optional[SentCallback] = None,
    ) -> None:
        """Queue ``packet`` for transmission.

        ``gate`` (if given) is re-evaluated every attempt; transmission
        never starts before the time it returns.
        """
        self._queue.append(_QueuedFrame(packet, gate, on_sent))
        self._kick()

    def has_pending(self) -> bool:
        """True while any frame is queued or in flight."""
        return bool(self._queue) or self._transmitting

    @property
    def queue_length(self) -> int:
        """Frames waiting (not counting one in flight)."""
        return len(self._queue)

    def cancel_all(self) -> None:
        """Drop every queued frame (node failure injection)."""
        self._queue.clear()
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None

    # -- internal ------------------------------------------------------------

    def _kick(self) -> None:
        """Start contending for the head frame if nothing is in progress."""
        if self._transmitting or self._pending_event is not None or not self._queue:
            return
        self._attempt()

    def _attempt(self) -> None:
        """Begin (or re-begin) a DIFS + backoff countdown for the head frame."""
        self._pending_event = None
        if not self._queue:
            return
        frame = self._queue[0]
        now = self._engine.now
        gate_time = frame.gate(frame.packet) if frame.gate is not None else now
        if gate_time > now:
            self._pending_event = self._engine.schedule(
                gate_time - now, self._attempt
            )
            return
        if self._channel.is_busy(self._node_id):
            # Defer until the medium frees, plus a slot of desynchronising
            # jitter so queued contenders do not all re-check simultaneously.
            resume = self._channel.busy_until(self._node_id) - now
            jitter = self._rng.random() * self.config.slot_time
            self._pending_event = self._engine.schedule(
                resume + jitter, self._attempt
            )
            return
        wait = (
            self.config.difs
            + self._rng.randrange(self.config.contention_window)
            * self.config.slot_time
        )
        countdown_start = now
        self._pending_event = self._engine.schedule(
            wait, lambda: self._fire(countdown_start)
        )

    def _fire(self, countdown_start: float) -> None:
        """End of backoff: transmit if the medium stayed idle throughout."""
        self._pending_event = None
        if not self._queue:
            return
        frame = self._queue[0]
        now = self._engine.now
        gate_time = frame.gate(frame.packet) if frame.gate is not None else now
        if gate_time > now:
            self._attempt()
            return
        if self._channel.busy_during(self._node_id, countdown_start, now):
            self.backoff_restarts += 1
            self._attempt()
            return
        self._queue.popleft()
        self._transmitting = True
        self._begin_tx()
        transmission = self._channel.transmit(self._node_id, frame.packet)
        duration = transmission.end - transmission.start
        self._engine.schedule(duration, lambda: self._complete(frame))

    def _complete(self, frame: _QueuedFrame) -> None:
        self._transmitting = False
        self.frames_sent += 1
        self._end_tx()
        if frame.on_sent is not None:
            frame.on_sent(frame.packet)
        self._kick()
