"""S-MAC-style sleep scheduling with PBBF integrated.

The paper stresses that PBBF "can be integrated into any sleep scheduling
protocol"; 802.11 PSM is used in the evaluation only because "it provides
a complete solution for broadcast".  This module demonstrates the claim on
an S-MAC-style scheduler [Ye, Heidemann, Estrin — the paper's ref 20]:

* time is divided into frames with a fixed listen/sleep split (S-MAC's
  virtual clustering is collapsed to one network-wide schedule, consistent
  with the paper's perfect-synchronisation assumption);
* broadcast data is transmitted *inside* the listen period directly — no
  ATIM announcement phase (S-MAC sends broadcast packets without RTS/CTS);
* queued broadcasts wait for the next listen period; PBBF's p-coin sends
  them immediately instead, and the q-coin keeps nodes awake through the
  sleep period to catch such sends (Figure 3 verbatim).

The latency anatomy differs from PSM: a normal forward waits for the next
*listen period start* rather than for an ATIM window to close, so S-MAC's
L2 is one frame where PSM's is a frame plus the window.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.pbbf import ForwardingDecision, PBBFAgent, SleepDecision
from repro.energy.model import RadioEnergyModel, RadioState
from repro.mac.base import DeliveryCallback, MacStats
from repro.mac.csma import CsmaConfig, CsmaTransmitter
from repro.net.channel import Channel
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine
from repro.util.validation import check_positive


class SMacConfig:
    """S-MAC frame timing.

    ``listen_time`` plays the role of Tactive and ``frame_time`` of Tframe
    (defaults match Table 1 so results are comparable across schedulers).
    """

    def __init__(self, frame_time: float = 10.0, listen_time: float = 1.0) -> None:
        check_positive("frame_time", frame_time)
        check_positive("listen_time", listen_time)
        if listen_time >= frame_time:
            raise ValueError(
                f"listen_time ({listen_time}) must be < frame_time ({frame_time})"
            )
        self.frame_time = frame_time
        self.listen_time = listen_time

    @property
    def sleep_time(self) -> float:
        """Seconds per frame outside the listen period."""
        return self.frame_time - self.listen_time


class SMacPBBF:
    """One node's S-MAC-style scheduler with PBBF's p/q knobs.

    Interface-compatible with :class:`~repro.mac.pbbf.PBBFMac` (the
    :class:`~repro.detailed.node.SensorNode` composition works unchanged).
    """

    def __init__(
        self,
        engine: Engine,
        channel: Channel,
        node_id: int,
        agent: PBBFAgent,
        radio: RadioEnergyModel,
        deliver: DeliveryCallback,
        rng: random.Random,
        config: Optional[SMacConfig] = None,
        csma_config: Optional[CsmaConfig] = None,
    ) -> None:
        self._engine = engine
        self.node_id = node_id
        self.agent = agent
        self.radio = radio
        self._deliver = deliver
        self.config = config if config is not None else SMacConfig()
        self.stats = MacStats()
        self._csma = CsmaTransmitter(
            engine, channel, node_id, rng,
            begin_tx=self._begin_tx, end_tx=self._end_tx,
            config=csma_config,
        )
        self._pending: List[Packet] = []
        self._awake_this_frame = True
        self._started = False
        self._stopped = False

    # -- schedule geometry --------------------------------------------------

    def in_listen_period(self) -> bool:
        """Is the current instant inside a listen period?"""
        phase = self._engine.now % self.config.frame_time
        return phase < self.config.listen_time

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin the frame loop."""
        if self._started:
            raise RuntimeError(f"MAC of node {self.node_id} already started")
        self._started = True
        self._on_frame_start()

    def stop(self) -> None:
        """Permanently silence this node (node-failure injection)."""
        if self._stopped:
            return
        self._stopped = True
        self._csma.cancel_all()
        self._pending.clear()
        if self.radio.state is not RadioState.SLEEP:
            self.radio.set_state(RadioState.SLEEP, self._engine.now)

    def broadcast(self, packet: Packet) -> None:
        """Accept an application broadcast.

        Inside a listen period it is transmitted right away (S-MAC has no
        announcement phase); otherwise it waits for the next one.
        """
        if self._stopped:
            return
        self.agent.mark_seen(packet.broadcast_id)
        if self.in_listen_period():
            self._csma.enqueue(packet, on_sent=self._count_normal)
        else:
            self._pending.append(packet)

    # -- frame machinery -------------------------------------------------------

    def _on_frame_start(self) -> None:
        if self._stopped:
            return
        now = self._engine.now
        self._awake_this_frame = True
        if self.radio.state is not RadioState.TX:
            self.radio.set_state(RadioState.LISTEN, now)
        pending, self._pending = self._pending, []
        for packet in pending:
            self._csma.enqueue(packet, on_sent=self._count_normal)
        self._engine.schedule(self.config.listen_time, self._on_listen_end)
        self._engine.schedule(self.config.frame_time, self._on_frame_start)

    def _on_listen_end(self) -> None:
        if self._stopped:
            return
        decision = self.agent.sleep_decision(
            data_to_send=self._csma.has_pending(),
            data_to_recv=False,  # S-MAC broadcasts carry no announcements
        )
        self._awake_this_frame = decision is SleepDecision.STAY_AWAKE
        if self.radio.state is not RadioState.TX:
            self.radio.set_state(self._scheduled_state(), self._engine.now)

    def _scheduled_state(self) -> RadioState:
        if self._stopped:
            return RadioState.SLEEP
        if self.in_listen_period():
            return RadioState.LISTEN
        if self._awake_this_frame or self._csma.has_pending():
            return RadioState.LISTEN
        return RadioState.SLEEP

    # -- receive path -----------------------------------------------------------

    def handle_receive(self, packet: Packet) -> None:
        """Figure 3's Receive-Broadcast, S-MAC flavour."""
        if self._stopped:
            return
        if packet.kind is not PacketKind.DATA:
            return
        decision = self.agent.receive_broadcast(packet.broadcast_id)
        if decision is ForwardingDecision.DUPLICATE:
            self.stats.duplicates_dropped += 1
            return
        self.stats.data_received += 1
        self._deliver(packet, self._engine.now)
        forward = packet.forwarded_by(self.node_id)
        if decision is ForwardingDecision.IMMEDIATE:
            self._csma.enqueue(forward, on_sent=self._count_immediate)
        elif self.in_listen_period():
            self._csma.enqueue(forward, on_sent=self._count_normal)
        else:
            self._pending.append(forward)

    def handle_collision(self, packet: Packet) -> None:
        """Corrupted frame heard."""
        self.stats.collisions_heard += 1

    # -- radio hooks ----------------------------------------------------------

    def _begin_tx(self) -> None:
        self.radio.set_state(RadioState.TX, self._engine.now)

    def _end_tx(self) -> None:
        self.radio.set_state(self._scheduled_state(), self._engine.now)

    def _count_normal(self, packet: Packet) -> None:
        self.stats.data_sent += 1
        self.stats.normal_sends += 1

    def _count_immediate(self, packet: Packet) -> None:
        self.stats.data_sent += 1
        self.stats.immediate_sends += 1
