"""Shared MAC interfaces and configuration.

Every MAC in this package drives one node's radio over the shared
:class:`~repro.net.channel.Channel` and reports fresh application data
upward through a delivery callback.  The :class:`BroadcastMac` protocol is
what the :class:`~repro.detailed.node.SensorNode` composes against, so PSM,
PBBF, always-on, S-MAC and T-MAC are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.net.packet import Packet
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MacConfig:
    """Timing and framing shared by the 802.11-style MACs.

    Defaults follow the paper: beacon interval and ATIM window sized from
    Table 1 (``BI = Tframe = 10 s``, ``AW = Tactive = 1 s``), 19.2 kbps
    radios, 64-byte data packets (Table 2), small control frames.
    """

    beacon_interval: float = 10.0
    atim_window: float = 1.0
    bit_rate_bps: float = 19200.0
    data_size_bytes: int = 64
    atim_size_bytes: int = 28
    beacon_size_bytes: int = 28
    #: Emit one synchronisation beacon per beacon interval (byte overhead
    #: of the sleep schedule; the paper keeps it even at p=q=1).
    send_beacons: bool = True

    def __post_init__(self) -> None:
        check_positive("beacon_interval", self.beacon_interval)
        check_positive("atim_window", self.atim_window)
        check_positive("bit_rate_bps", self.bit_rate_bps)
        if self.atim_window >= self.beacon_interval:
            raise ValueError(
                f"atim_window ({self.atim_window}) must be < "
                f"beacon_interval ({self.beacon_interval})"
            )

    @property
    def sleep_time(self) -> float:
        """Seconds per beacon interval outside the ATIM window."""
        return self.beacon_interval - self.atim_window


@dataclass
class MacStats:
    """Per-node MAC counters (diagnostics and test assertions)."""

    data_sent: int = 0
    data_received: int = 0
    duplicates_dropped: int = 0
    atims_sent: int = 0
    atims_received: int = 0
    beacons_sent: int = 0
    collisions_heard: int = 0
    immediate_sends: int = 0
    normal_sends: int = 0


class BroadcastMac(Protocol):
    """The node-facing MAC interface."""

    stats: MacStats

    def start(self) -> None:
        """Begin operating (schedule the first beacon interval)."""

    def broadcast(self, packet: Packet) -> None:
        """Accept an application-originated broadcast for transmission."""

    def handle_receive(self, packet: Packet) -> None:
        """Process a cleanly received frame (called by the node)."""

    def handle_collision(self, packet: Packet) -> None:
        """Note a corrupted frame (called by the node)."""


#: Signature of the upward delivery callback: (packet, receive_time).
DeliveryCallback = Callable[[Packet, float], None]
