"""MAC layer: CSMA/CA, IEEE 802.11 PSM, PBBF, and baselines.

The detailed simulator's protocol stack, mirroring the paper's ns-2 setup:

* :mod:`repro.mac.csma` -- a CSMA/CA broadcast transmitter (carrier sense,
  DIFS, random backoff; broadcasts carry no ACKs or retries, exactly as in
  802.11 DCF);
* :mod:`repro.mac.pbbf` -- IEEE 802.11 PSM (beacon intervals, ATIM
  windows, broadcast ATIM announcements) with PBBF's p/q knobs layered in.
  Plain PSM is the ``p=q=0`` configuration of the same MAC, which is
  faithful to the paper ("the original sleep scheduling protocol is a
  special case of PBBF with p=0 and q=0");
* :mod:`repro.mac.always_on` -- the "NO PSM" flooding baseline;
* :mod:`repro.mac.smac` / :mod:`repro.mac.tmac` -- alternative sleep
  schedulers demonstrating that PBBF integrates with any of them
  (the paper's "can be integrated into any sleep scheduling protocol").
"""

from repro.mac.always_on import AlwaysOnMac
from repro.mac.base import BroadcastMac, MacConfig, MacStats
from repro.mac.csma import CsmaConfig, CsmaTransmitter
from repro.mac.gossip import GossipMac
from repro.mac.pbbf import PBBFMac
from repro.mac.smac import SMacConfig, SMacPBBF
from repro.mac.tmac import TMacConfig, TMacPBBF
from repro.mac.unicast import UnicastPSMMac, UnicastStats

__all__ = [
    "AlwaysOnMac",
    "BroadcastMac",
    "CsmaConfig",
    "CsmaTransmitter",
    "GossipMac",
    "MacConfig",
    "MacStats",
    "PBBFMac",
    "SMacConfig",
    "SMacPBBF",
    "TMacConfig",
    "TMacPBBF",
    "UnicastPSMMac",
    "UnicastStats",
]
