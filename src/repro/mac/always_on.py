"""The "NO PSM" baseline: always-on radios, plain flooding.

No beacon intervals, no ATIM windows, no sleeping: every node keeps its
radio listening at all times and re-broadcasts each new packet immediately
(classic flooding over CSMA/CA).  This is the paper's upper-left corner of
the trade-off space — minimum latency, maximum energy — against which PSM
and PBBF are compared in every figure.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.energy.model import RadioEnergyModel, RadioState
from repro.mac.base import DeliveryCallback, MacStats
from repro.mac.csma import CsmaConfig, CsmaTransmitter
from repro.net.channel import Channel
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine


class AlwaysOnMac:
    """Flooding MAC with an always-listening radio."""

    def __init__(
        self,
        engine: Engine,
        channel: Channel,
        node_id: int,
        radio: RadioEnergyModel,
        deliver: DeliveryCallback,
        rng: random.Random,
        csma_config: Optional[CsmaConfig] = None,
    ) -> None:
        self._engine = engine
        self.node_id = node_id
        self.radio = radio
        self._deliver = deliver
        self.stats = MacStats()
        self._seen: set = set()
        self._csma = CsmaTransmitter(
            engine,
            channel,
            node_id,
            rng,
            begin_tx=self._begin_tx,
            end_tx=self._end_tx,
            config=csma_config,
        )
        self._started = False
        self._stopped = False

    def start(self) -> None:
        """Bring the radio up (no schedule to run)."""
        if self._started:
            raise RuntimeError(f"MAC of node {self.node_id} already started")
        self._started = True
        self.radio.set_state(RadioState.LISTEN, self._engine.now)

    def stop(self) -> None:
        """Permanently silence this node (node-failure injection)."""
        if self._stopped:
            return
        self._stopped = True
        self._csma.cancel_all()
        if self.radio.state is not RadioState.SLEEP:
            self.radio.set_state(RadioState.SLEEP, self._engine.now)

    def broadcast(self, packet: Packet) -> None:
        """Transmit an application broadcast as soon as CSMA allows."""
        if self._stopped:
            return
        self._seen.add(packet.broadcast_id)
        self._csma.enqueue(packet, on_sent=self._count_data)

    def handle_receive(self, packet: Packet) -> None:
        """Deliver and re-flood each new data packet."""
        if self._stopped:
            return
        if packet.kind is not PacketKind.DATA:
            return  # no beacons/ATIMs exist in this mode; ignore defensively
        if packet.broadcast_id in self._seen:
            self.stats.duplicates_dropped += 1
            return
        self._seen.add(packet.broadcast_id)
        self.stats.data_received += 1
        self._deliver(packet, self._engine.now)
        self._csma.enqueue(packet.forwarded_by(self.node_id), on_sent=self._count_data)

    def handle_collision(self, packet: Packet) -> None:
        """A frame addressed this way was corrupted by overlap."""
        self.stats.collisions_heard += 1

    def _begin_tx(self) -> None:
        self.radio.set_state(RadioState.TX, self._engine.now)

    def _end_tx(self) -> None:
        state = RadioState.SLEEP if self._stopped else RadioState.LISTEN
        self.radio.set_state(state, self._engine.now)

    def _count_data(self, packet: Packet) -> None:
        self.stats.data_sent += 1
        self.stats.immediate_sends += 1
