"""Unicast 802.11 PSM traffic with PBBF integration.

The paper's closing sentence lists "integrating PBBF with unicast power
save protocols" as worthwhile future work.  This module implements that
integration on top of :class:`~repro.mac.pbbf.PBBFMac`:

**Standard unicast PSM** (IEEE 802.11 §11.2):

1. a node with pending unicast data sends a *directed ATIM* to the
   destination inside the ATIM window;
2. the destination replies with an ATIM-ACK and stays awake for the rest
   of the beacon interval;
3. the data frame goes out after the window and is acknowledged with a
   MAC-level ACK; missing ACKs trigger bounded retries.

**PBBF's p-knob for unicast** (this module's contribution, mirroring the
broadcast design): with probability p the sender *skips the announcement*
and transmits the data frame right away — if the destination happens to be
awake (its q-coin, residual activity) the exchange completes a beacon
interval early; if the ACK times out, the packet falls back to the
announced path, so reliability is never sacrificed, only the latency
distribution shifts.  The q-knob needs no unicast-specific work at all:
PBBF's Sleep-Decision-Handler already keeps receivers awake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.pbbf import ForwardingDecision
from repro.energy.model import RadioState
from repro.net.packet import Packet, PacketKind
from repro.mac.pbbf import PBBFMac
from repro.sim.engine import EventHandle
from repro.util.validation import check_non_negative_int

#: Short interframe space: ACK-class frames pre-empt contention (802.11).
SIFS = 0.001

#: On-air size of control acknowledgements.
ACK_SIZE_BYTES = 14

#: Delivery callback for completed unicast sends: (packet, delivered).
UnicastCallback = Callable[[Packet, bool], None]


@dataclass
class _PendingUnicast:
    packet: Packet
    retries_left: int
    announced: bool  # False while still eligible for the immediate path
    on_done: Optional[UnicastCallback] = None
    ack_timer: Optional[EventHandle] = None
    #: Announcement rounds consumed (beacon intervals spent trying).
    rounds: int = 0


@dataclass
class UnicastStats:
    """Counters for the unicast extension."""

    queued: int = 0
    delivered: int = 0
    failed: int = 0
    immediate_attempts: int = 0
    immediate_successes: int = 0
    atim_acks_sent: int = 0
    data_acks_sent: int = 0
    retries: int = 0


class UnicastPSMMac(PBBFMac):
    """:class:`PBBFMac` plus directed-ATIM unicast exchanges.

    All broadcast behaviour is inherited unchanged; unicast adds per-frame
    state keyed by destination.  ``retry_limit`` bounds data retries per
    announcement round (a packet that exhausts them re-announces in the
    next beacon interval, up to ``max_rounds`` rounds before being
    reported failed).
    """

    def __init__(self, *args, retry_limit: int = 3, max_rounds: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        check_non_negative_int("retry_limit", retry_limit)
        check_non_negative_int("max_rounds", max_rounds)
        self.retry_limit = retry_limit
        self.max_rounds = max_rounds
        self.unicast_stats = UnicastStats()
        #: Unicast packets awaiting an announcement round, per destination.
        self._unicast_queue: List[_PendingUnicast] = []
        #: Destinations that ATIM-ACKed us in the current beacon interval.
        self._cleared: set = set()
        #: The exchange currently in flight (one at a time, like the
        #: broadcast path's single CSMA head-of-line frame).
        self._in_flight: Optional[_PendingUnicast] = None

    # -- public API -------------------------------------------------------------

    def send_unicast(
        self, packet: Packet, on_done: Optional[UnicastCallback] = None
    ) -> None:
        """Queue ``packet`` for reliable unicast delivery.

        ``packet.destination`` must name a neighbour.  ``on_done`` fires
        once, with ``delivered=True`` on ACK or ``False`` after every
        retry round is exhausted.
        """
        if self._stopped:
            return
        if packet.destination is None:
            raise ValueError("send_unicast() needs a packet with a destination")
        entry = _PendingUnicast(
            packet=packet,
            retries_left=self.retry_limit,
            announced=False,
            on_done=on_done,
        )
        self.unicast_stats.queued += 1
        # The PBBF immediate path: skip the announcement with probability p
        # and try the data frame right away (fall back on ACK timeout).
        if self.agent.params.p > 0.0 and self._p_coin():
            self.unicast_stats.immediate_attempts += 1
            self._transmit_data(entry)
            return
        self._unicast_queue.append(entry)
        if self.in_atim_window():
            self._announce_unicasts()

    # -- beacon interval hooks ----------------------------------------------------

    def _on_bi_start(self) -> None:
        if self._stopped:
            return
        self._cleared.clear()
        super()._on_bi_start()
        # Each beacon interval spent waiting is one announcement round;
        # entries whose destination never responds eventually fail (dead
        # or partitioned peers must not be retried forever).
        expired = [
            entry for entry in self._unicast_queue
            if entry.rounds >= self.max_rounds
        ]
        for entry in expired:
            self._unicast_queue.remove(entry)
            self._fail(entry)
        for entry in self._unicast_queue:
            entry.rounds += 1
        if self._unicast_queue:
            self._announce_unicasts()

    def _announce_unicasts(self) -> None:
        """Send one directed ATIM per distinct pending destination."""
        destinations = []
        for entry in self._unicast_queue:
            dest = entry.packet.destination
            if dest not in destinations and dest not in self._cleared:
                destinations.append(dest)
        for dest in destinations:
            atim = Packet(
                kind=PacketKind.ATIM,
                origin=self.node_id,
                sender=self.node_id,
                seqno=self._bi_index,
                size_bytes=self.config.atim_size_bytes,
                destination=dest,
            )
            self._csma.enqueue(atim, on_sent=self._count_atim)
            self._announced_tx = True

    # -- receive path ----------------------------------------------------------

    def handle_receive(self, packet: Packet) -> None:
        if self._stopped:
            return
        if packet.kind is PacketKind.ATIM and packet.destination is not None:
            if packet.destination != self.node_id:
                return  # someone else's announcement: no need to stay up
            # Directed announcement: ACK it and stay awake this interval.
            self.stats.atims_received += 1
            self._announced_rx = True
            reply = Packet(
                kind=PacketKind.ATIM_ACK,
                origin=self.node_id,
                sender=self.node_id,
                seqno=packet.seqno,
                size_bytes=ACK_SIZE_BYTES,
                destination=packet.sender,
            )
            self.unicast_stats.atim_acks_sent += 1
            self._transmit_control(reply)
            return
        if packet.kind is PacketKind.ATIM_ACK:
            if packet.destination == self.node_id:
                self._cleared.add(packet.sender)
                self._launch_cleared()
            return
        if packet.kind is PacketKind.ACK:
            if packet.destination == self.node_id:
                self._on_data_ack(packet)
            return
        if packet.kind is PacketKind.DATA and packet.destination == self.node_id:
            # Unicast data for us: deliver upward once, always ACK (the
            # sender may have missed our previous ACK).
            decision = self.agent.receive_broadcast(packet.broadcast_id)
            if decision is not ForwardingDecision.DUPLICATE:
                self.stats.data_received += 1
                self._deliver(packet, self._engine.now)
            ack = Packet(
                kind=PacketKind.ACK,
                origin=self.node_id,
                sender=self.node_id,
                seqno=packet.seqno,
                size_bytes=ACK_SIZE_BYTES,
                destination=packet.sender,
            )
            self.unicast_stats.data_acks_sent += 1
            self._transmit_control(ack)
            return
        if packet.kind is PacketKind.DATA and packet.destination is not None:
            return  # someone else's unicast: overheard, ignored
        super().handle_receive(packet)

    # -- unicast data machinery --------------------------------------------------

    def _launch_cleared(self) -> None:
        """Move the first queued packet for a cleared destination on air."""
        if self._in_flight is not None:
            return
        for index, entry in enumerate(self._unicast_queue):
            if entry.packet.destination in self._cleared:
                del self._unicast_queue[index]
                entry.announced = True
                self._transmit_data(entry)
                return

    def _transmit_data(self, entry: _PendingUnicast) -> None:
        self._in_flight = entry
        self._csma.enqueue(
            entry.packet,
            gate=self._data_gate,
            on_sent=lambda pkt, entry=entry: self._arm_ack_timeout(entry),
        )

    def _arm_ack_timeout(self, entry: _PendingUnicast) -> None:
        self.stats.data_sent += 1
        timeout = (
            SIFS
            + Packet(
                kind=PacketKind.ACK,
                origin=0,
                sender=0,
                seqno=0,
                size_bytes=ACK_SIZE_BYTES,
            ).duration(self._channel.bit_rate_bps)
            + 0.05  # scheduling slack
        )
        entry.ack_timer = self._engine.schedule(
            timeout, lambda: self._on_ack_timeout(entry)
        )

    def _on_data_ack(self, ack: Packet) -> None:
        entry = self._in_flight
        if entry is None or entry.packet.seqno != ack.seqno:
            return
        if entry.ack_timer is not None:
            entry.ack_timer.cancel()
        self._in_flight = None
        self.unicast_stats.delivered += 1
        if not entry.announced:
            self.unicast_stats.immediate_successes += 1
        if entry.on_done is not None:
            entry.on_done(entry.packet, True)
        self._launch_cleared()

    def _on_ack_timeout(self, entry: _PendingUnicast) -> None:
        if self._in_flight is not entry:
            return  # stale timer (ACK arrived concurrently)
        self._in_flight = None
        if entry.announced and entry.retries_left > 0:
            entry.retries_left -= 1
            self.unicast_stats.retries += 1
            self._transmit_data(entry)
            return
        # Immediate attempt missed, or retries exhausted: fall back to an
        # announcement in a later beacon interval (bounded by max_rounds).
        entry.rounds += 1
        if entry.rounds >= self.max_rounds:
            self._fail(entry)
            return
        entry.announced = False
        entry.retries_left = self.retry_limit
        self._cleared.discard(entry.packet.destination)
        self._unicast_queue.append(entry)
        if self.in_atim_window():
            self._announce_unicasts()

    def _fail(self, entry: _PendingUnicast) -> None:
        self.unicast_stats.failed += 1
        if entry.on_done is not None:
            entry.on_done(entry.packet, False)

    # -- control frames -----------------------------------------------------------

    def _transmit_control(self, packet: Packet) -> None:
        """Send an ACK-class frame after SIFS, bypassing contention.

        802.11 gives acknowledgements SIFS priority; modelling that as a
        short fixed delay (no backoff) keeps the exchange atomic enough
        for the retry logic while still occupying the channel.
        """
        def fire() -> None:
            if self._stopped:
                return
            self.radio.set_state(RadioState.TX, self._engine.now)
            transmission = self._channel.transmit(self.node_id, packet)
            self._engine.schedule(
                transmission.end - transmission.start, self._end_tx
            )

        self._engine.schedule(SIFS, fire)

    def _p_coin(self) -> bool:
        """An extra p-draw for the unicast immediate path."""
        return self.agent._rng.random() < self.agent.params.p
