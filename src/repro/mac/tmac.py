"""T-MAC-style adaptive sleep scheduling with PBBF integrated.

T-MAC [van Dam & Langendoen — the paper's ref 19] refines S-MAC by ending
the active period *adaptively*: a node goes to sleep once no activation
event (reception, transmission, carrier noise) has occurred for a timeout
TA, instead of staying up for a fixed listen time.  Idle frames therefore
cost a fraction of S-MAC's energy, while busy frames stretch to fit the
traffic ("nodes dynamically determine the length of active times based on
communication rates" — the paper's Section 2.2 description).

PBBF integrates exactly as elsewhere: the p-coin turns queued forwards
into immediate ones, and the q-coin keeps a node awake through a sleep
period it would otherwise spend sleeping.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.pbbf import ForwardingDecision, PBBFAgent, SleepDecision
from repro.energy.model import RadioEnergyModel, RadioState
from repro.mac.base import DeliveryCallback, MacStats
from repro.mac.csma import CsmaConfig, CsmaTransmitter
from repro.net.channel import Channel
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine, EventHandle
from repro.util.validation import check_positive


class TMacConfig:
    """T-MAC frame timing.

    ``activation_timeout`` is TA: the active period ends TA seconds after
    the last activation event (but never before one TA has elapsed from
    the frame start).  The 0.25 s default is generous at 19.2 kbps (a full
    data frame plus contention fits several times over).
    """

    def __init__(
        self,
        frame_time: float = 10.0,
        activation_timeout: float = 0.25,
    ) -> None:
        check_positive("frame_time", frame_time)
        check_positive("activation_timeout", activation_timeout)
        if activation_timeout >= frame_time:
            raise ValueError(
                f"activation_timeout ({activation_timeout}) must be < "
                f"frame_time ({frame_time})"
            )
        self.frame_time = frame_time
        self.activation_timeout = activation_timeout


class TMacPBBF:
    """One node's T-MAC-style scheduler with PBBF's p/q knobs."""

    def __init__(
        self,
        engine: Engine,
        channel: Channel,
        node_id: int,
        agent: PBBFAgent,
        radio: RadioEnergyModel,
        deliver: DeliveryCallback,
        rng: random.Random,
        config: Optional[TMacConfig] = None,
        csma_config: Optional[CsmaConfig] = None,
    ) -> None:
        self._engine = engine
        self.node_id = node_id
        self.agent = agent
        self.radio = radio
        self._deliver = deliver
        self.config = config if config is not None else TMacConfig()
        self.stats = MacStats()
        self._csma = CsmaTransmitter(
            engine, channel, node_id, rng,
            begin_tx=self._begin_tx, end_tx=self._end_tx,
            config=csma_config,
        )
        self._pending: List[Packet] = []
        self._active = False  # becomes True at the first frame start
        self._stay_awake_frame = False
        self._timeout_event: Optional[EventHandle] = None
        self._started = False
        self._stopped = False
        #: Seconds of active time observed per frame (diagnostics; the
        #: adaptive-length claim is asserted on this in tests).
        self.active_time_log: List[float] = []
        self._frame_active_started = 0.0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin the frame loop."""
        if self._started:
            raise RuntimeError(f"MAC of node {self.node_id} already started")
        self._started = True
        self._on_frame_start()

    def stop(self) -> None:
        """Permanently silence this node (node-failure injection)."""
        if self._stopped:
            return
        self._stopped = True
        self._csma.cancel_all()
        self._pending.clear()
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        if self.radio.state is not RadioState.SLEEP:
            self.radio.set_state(RadioState.SLEEP, self._engine.now)

    def broadcast(self, packet: Packet) -> None:
        """Accept an application broadcast (sent in the active period)."""
        if self._stopped:
            return
        self.agent.mark_seen(packet.broadcast_id)
        if self._active:
            self._csma.enqueue(packet, on_sent=self._count_normal)
            self._touch()
        else:
            self._pending.append(packet)

    # -- frame machinery -------------------------------------------------------

    def _on_frame_start(self) -> None:
        if self._stopped:
            return
        now = self._engine.now
        if self._active:
            # Close out the previous frame's stretch-to-fit active period.
            self.active_time_log.append(now - self._frame_active_started)
        self._active = True
        self._stay_awake_frame = False
        self._frame_active_started = now
        if self.radio.state is not RadioState.TX:
            self.radio.set_state(RadioState.LISTEN, now)
        pending, self._pending = self._pending, []
        for packet in pending:
            self._csma.enqueue(packet, on_sent=self._count_normal)
        self._arm_timeout()
        self._engine.schedule(self.config.frame_time, self._on_frame_start)

    def _arm_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
        self._timeout_event = self._engine.schedule(
            self.config.activation_timeout, self._on_activation_timeout
        )

    def _touch(self) -> None:
        """An activation event: restart TA while in the active period."""
        if self._active:
            self._arm_timeout()

    def _on_activation_timeout(self) -> None:
        """TA expired with no activity: run the sleep decision."""
        self._timeout_event = None
        if self._stopped or not self._active:
            return
        if self._csma.has_pending():
            # Mid-contention (e.g. an immediate forward): stay active.
            self._arm_timeout()
            return
        self._active = False
        self.active_time_log.append(self._engine.now - self._frame_active_started)
        decision = self.agent.sleep_decision(data_to_send=False, data_to_recv=False)
        self._stay_awake_frame = decision is SleepDecision.STAY_AWAKE
        if self.radio.state is not RadioState.TX:
            self.radio.set_state(self._scheduled_state(), self._engine.now)

    def _scheduled_state(self) -> RadioState:
        if self._stopped:
            return RadioState.SLEEP
        if self._active or self._stay_awake_frame or self._csma.has_pending():
            return RadioState.LISTEN
        return RadioState.SLEEP

    # -- receive path -----------------------------------------------------------

    def handle_receive(self, packet: Packet) -> None:
        """Receive-Broadcast plus the T-MAC activation-timeout reset."""
        if self._stopped:
            return
        self._touch()
        if packet.kind is not PacketKind.DATA:
            return
        decision = self.agent.receive_broadcast(packet.broadcast_id)
        if decision is ForwardingDecision.DUPLICATE:
            self.stats.duplicates_dropped += 1
            return
        self.stats.data_received += 1
        self._deliver(packet, self._engine.now)
        forward = packet.forwarded_by(self.node_id)
        if decision is ForwardingDecision.IMMEDIATE:
            self._csma.enqueue(forward, on_sent=self._count_immediate)
        elif self._active:
            self._csma.enqueue(forward, on_sent=self._count_normal)
        else:
            self._pending.append(forward)

    def handle_collision(self, packet: Packet) -> None:
        """Corrupted frame heard: still an activation event."""
        self.stats.collisions_heard += 1
        self._touch()

    # -- radio hooks ----------------------------------------------------------

    def _begin_tx(self) -> None:
        self.radio.set_state(RadioState.TX, self._engine.now)
        self._touch()

    def _end_tx(self) -> None:
        self.radio.set_state(self._scheduled_state(), self._engine.now)
        self._touch()

    def _count_normal(self, packet: Packet) -> None:
        self.stats.data_sent += 1
        self.stats.normal_sends += 1

    def _count_immediate(self, packet: Packet) -> None:
        self.stats.data_sent += 1
        self.stats.immediate_sends += 1
