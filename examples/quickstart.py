#!/usr/bin/env python3
"""Quickstart: PBBF in sixty seconds.

Runs the three protagonists — plain 802.11 PSM, always-on flooding, and
PBBF at one mid-range operating point — on the same small sensor grid, and
prints the energy / latency / reliability triangle the paper is about.

Run:  python examples/quickstart.py
"""

from repro import (
    GridTopology,
    IdealSimulator,
    PBBFParams,
    SchedulingMode,
)


def describe(label: str, campaign) -> None:
    """One line of the comparison table."""
    per_hop = campaign.mean_per_hop_latency()
    print(
        f"  {label:<12}  "
        f"{campaign.joules_per_update_per_node():>6.2f} J/update   "
        f"{per_hop:>6.2f} s/hop   "
        f"{campaign.reliability(0.90):>5.0%} of updates reach 90% of nodes"
    )


def main() -> None:
    grid = GridTopology(25)  # 625 sensor nodes, broadcast source at centre
    n_broadcasts = 10

    print("PBBF quickstart: 25x25 grid, 10 broadcasts, Mica2 radios")
    print(f"  {'protocol':<12}  {'energy':>14}   {'latency':>12}   reliability")

    # Plain sleep scheduling: cheap, slow, perfectly reliable.
    psm = IdealSimulator(grid, PBBFParams.psm(), seed=1)
    describe("PSM", psm.run_campaign(n_broadcasts))

    # Always-on: fast, perfectly reliable, and an order of magnitude
    # hungrier -- the other end of the spectrum.
    always_on = IdealSimulator(
        grid, PBBFParams.always_on(), seed=1, mode=SchedulingMode.ALWAYS_ON
    )
    describe("NO PSM", always_on.run_campaign(n_broadcasts))

    # PBBF: pick an interior operating point.  p=0.5 sends half of all
    # forwards immediately; q=0.6 keeps nodes awake 60% of sleep periods.
    # Remark 1: the point sits above the 90%-coverage threshold because
    # 1 - p(1-q) = 0.8 exceeds the grid's critical bond fraction (~0.6);
    # tighter coverage targets need a larger q (see Figures 5 and 7).
    pbbf = IdealSimulator(grid, PBBFParams(p=0.5, q=0.6), seed=1)
    describe("PBBF(.5,.6)", pbbf.run_campaign(n_broadcasts))

    print()
    print("PBBF buys most of the always-on latency at a fraction of its")
    print("energy -- tune p and q to slide along that trade-off.")


if __name__ == "__main__":
    main()
