#!/usr/bin/env python3
"""Pick an operating point: the designer workflow the paper proposes.

The paper's punchline (Section 4.4): first estimate where the reliability
boundary sits, then slide *along* it until the energy-latency mix fits the
application.  This example does exactly that, end to end:

1. estimate the critical bond probability for 99% coverage on the target
   grid with Newman-Ziff sweeps (Figure 6 machinery), run as a declarative
   campaign through :mod:`repro.runners` — repeat invocations come back
   instantly from the on-disk result cache;
2. invert Remark 1 into the minimum-q frontier (Figure 7);
3. evaluate Eq. 8 energy and Eq. 9 latency at every frontier point
   (Figure 12) and print the menu;
4. answer a concrete design question: "cheapest configuration whose
   per-hop latency is below 5 seconds".

Run:  python examples/tradeoff_explorer.py
"""

from repro import AnalysisParameters
from repro.analysis import energy_latency_curve
from repro.runners import CampaignSpec, run_campaign

RELIABILITY = 0.99
LATENCY_BUDGET_S = 5.0
GRID_SIDE = 30  # the paper's Figure 7 grid


def main() -> None:
    analysis = AnalysisParameters()

    # Step 1: where is the reliability boundary?  One percolation campaign
    # point; the runner caches it by content hash, so only the first
    # invocation ever sweeps.
    spec = CampaignSpec.build(
        kind="percolation",
        axes={"reliability": (RELIABILITY,)},
        fixed={"grid_side": GRID_SIDE, "runs": 30, "process": "bond"},
        seed_params=("grid_side", "reliability"),
    )
    campaign = run_campaign(spec)
    estimate = campaign.metrics(reliability=RELIABILITY)
    freshness = "computed" if campaign.computed else "from cache"
    print(
        f"Critical bond fraction for {RELIABILITY:.0%} coverage on "
        f"{GRID_SIDE}x{GRID_SIDE}: {estimate.critical_fraction:.4g} "
        f"± {estimate.ci95:.2g} (n={estimate.n_runs}, {freshness})"
    )

    # Steps 2-3: walk the frontier, costing each point.
    l2 = analysis.t_frame - analysis.l1  # next-window wait (see EXPERIMENTS.md)
    points = energy_latency_curve(
        critical_bond_fraction=estimate.critical_fraction,
        p_values=[round(0.05 * i, 2) for i in range(1, 21)],
        l1=analysis.l1,
        l2=l2,
        t_active=analysis.t_active,
        t_sleep=analysis.t_sleep,
        update_interval=analysis.update_interval,
    )

    print()
    print(f"  {'p':>5} {'min q':>6} {'per-hop':>9} {'J/update':>9}")
    for point in points[::2]:
        print(
            f"  {point.p:>5.2f} {point.q:>6.2f} "
            f"{point.per_hop_latency_s:>8.2f}s {point.joules_per_update:>8.2f}J"
        )

    # Step 4: the design question.
    feasible = [
        point for point in points if point.per_hop_latency_s <= LATENCY_BUDGET_S
    ]
    if not feasible:
        print(f"\nNo frontier point meets {LATENCY_BUDGET_S} s/hop.")
        return
    choice = min(feasible, key=lambda point: point.joules_per_update)
    print()
    print(
        f"Cheapest point under {LATENCY_BUDGET_S:g} s/hop at {RELIABILITY:.0%} "
        f"reliability:\n"
        f"  p = {choice.p:.2f}, q = {choice.q:.2f}  ->  "
        f"{choice.per_hop_latency_s:.2f} s/hop at "
        f"{choice.joules_per_update:.2f} J/update "
        f"(pedge = {choice.edge_open_probability:.3f} >= "
        f"pc = {estimate.critical_fraction:.3f})"
    )


if __name__ == "__main__":
    main()
