#!/usr/bin/env python3
"""Why PBBF percolates: bond vs site thresholds on sensor grids.

The paper's Section 2 argument in executable form: gossip protocols are a
*site* percolation process (a node relays to everyone or no one) while
PBBF is a *bond* process (each link independently delivers with
pedge = 1 - p(1-q)).  Square-lattice bond thresholds sit below site
thresholds, so a link-probability budget goes further than a node-
probability budget.

Both measurements run as declarative ``percolation`` campaigns through
:mod:`repro.runners`: the grid-size sweep fans out over worker processes
(``jobs``), and every point lands in the on-disk result cache, so a
second invocation prints instantly.

Run:  python examples/percolation_thresholds.py
"""

from repro.runners import CampaignSpec, run_campaign

COVERAGE = 0.9
RUNS = 30
GRID_SIDES = (10, 20, 30, 40)
JOBS = 4


def threshold_campaign(process: str):
    """Campaign spec for one percolation process over the grid family."""
    return CampaignSpec.build(
        kind="percolation",
        axes={"grid_side": GRID_SIDES},
        fixed={"reliability": COVERAGE, "runs": RUNS, "process": process},
        seed_params=("grid_side", "reliability", "process"),
    )


def main() -> None:
    bond = run_campaign(threshold_campaign("bond"), jobs=JOBS)
    site = run_campaign(threshold_campaign("site"), jobs=JOBS)
    computed = bond.computed + site.computed
    reused = bond.reused + site.reused

    print(f"Critical fractions for {COVERAGE:.0%} coverage ({RUNS} sweeps each)")
    print(f"  {'grid':>7} {'bond (PBBF-like)':>18} {'site (gossip-like)':>20}")
    for side in GRID_SIDES:
        b = bond.metrics(grid_side=side)
        s = site.metrics(grid_side=side)
        print(
            f"  {side:>4}x{side:<3}"
            f" {b.critical_fraction:>10.3f} ± {b.ci95:<5.3f}"
            f" {s.critical_fraction:>12.3f} ± {s.ci95:<5.3f}"
        )
    print()
    print(f"({computed} points simulated across {JOBS} workers, "
          f"{reused} served from cache)")
    print()
    print("Bond thresholds (infinite lattice: 0.5) sit clearly below site")
    print("thresholds (infinite lattice: ~0.593): per-link randomness -- the")
    print("kind PBBF's p and q knobs control -- percolates on a smaller")
    print("budget than gossip's per-node coin.")


if __name__ == "__main__":
    main()
