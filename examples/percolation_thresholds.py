#!/usr/bin/env python3
"""Why PBBF percolates: bond vs site thresholds on sensor grids.

The paper's Section 2 argument in executable form: gossip protocols are a
*site* percolation process (a node relays to everyone or no one) while
PBBF is a *bond* process (each link independently delivers with
pedge = 1 - p(1-q)).  Square-lattice bond thresholds sit below site
thresholds, so a link-probability budget goes further than a node-
probability budget.

This example measures both with the Newman-Ziff sweep machinery and shows
the finite-size behaviour of Figure 6.

Run:  python examples/percolation_thresholds.py
"""

import random

from repro import GridTopology
from repro.percolation import coverage_bond_fraction, coverage_site_fraction
from repro.util import summarize

COVERAGE = 0.9
RUNS = 30


def main() -> None:
    print(f"Critical fractions for {COVERAGE:.0%} coverage ({RUNS} sweeps each)")
    print(f"  {'grid':>7} {'bond (PBBF-like)':>18} {'site (gossip-like)':>20}")
    for side in (10, 20, 30, 40):
        grid = GridTopology(side)
        bond = summarize(
            coverage_bond_fraction(grid, COVERAGE, random.Random(1), runs=RUNS)
        )
        site = summarize(
            coverage_site_fraction(grid, COVERAGE, random.Random(2), runs=RUNS)
        )
        print(
            f"  {side:>4}x{side:<3}"
            f" {bond.mean:>10.3f} ± {bond.ci95:<5.3f}"
            f" {site.mean:>12.3f} ± {site.ci95:<5.3f}"
        )
    print()
    print("Bond thresholds (infinite lattice: 0.5) sit clearly below site")
    print("thresholds (infinite lattice: ~0.593): per-link randomness -- the")
    print("kind PBBF's p and q knobs control -- percolates on a smaller")
    print("budget than gossip's per-node coin.")


if __name__ == "__main__":
    main()
