#!/usr/bin/env python3
"""Unicast power-save with PBBF (the paper's last future-work item).

Demonstrates :class:`repro.mac.unicast.UnicastPSMMac`: standard 802.11
PSM unicast (directed ATIM -> ATIM-ACK -> DATA -> ACK) plus PBBF's
immediate path — with probability p, skip the announcement and just send;
if the peer's q-coin kept it awake the exchange completes a beacon
interval early, and an ACK timeout falls back to the announced path.

A sender injects one unicast request per beacon interval, each in the
*middle of the sleep period* (worst case for announced PSM), and we
compare the delivery-latency distribution across regimes.

Run:  python examples/unicast_power_save.py
"""

import random
from typing import List

from repro.core.params import PBBFParams
from repro.core.pbbf import PBBFAgent
from repro.energy.model import MICA2, RadioEnergyModel
from repro.mac.base import MacConfig
from repro.mac.unicast import UnicastPSMMac
from repro.net.channel import Channel
from repro.net.packet import Packet, PacketKind
from repro.net.topology import Topology
from repro.sim.engine import Engine

N_EXCHANGES = 12


class _Node:
    def __init__(self, radio, mac):
        self.radio = radio
        self.mac = mac

    def is_listening_interval(self, start, end):
        return self.radio.is_listening_interval(start, end)

    def on_receive(self, packet):
        self.mac.handle_receive(packet)

    def on_collision(self, packet):
        self.mac.handle_collision(packet)


def run_regime(p: float, q: float, seed: int = 1):
    """A two-node link exchanging N unicast frames; returns latencies."""
    engine = Engine()
    topology = Topology([(0.0, 0.0), (1.0, 0.0)], [[1], [0]])
    channel = Channel(engine, topology, 19200.0)
    latencies: List[float] = []
    inject_times = {}
    macs = []
    for node_id in range(2):
        radio = RadioEnergyModel(MICA2)
        agent = PBBFAgent(PBBFParams(p=p, q=q), random.Random(seed * 10 + node_id))
        mac = UnicastPSMMac(
            engine, channel, node_id, agent, radio,
            lambda pkt, t: latencies.append(t - inject_times[pkt.seqno]),
            random.Random(seed * 20 + node_id),
            config=MacConfig(send_beacons=False),
        )
        channel.attach(node_id, _Node(radio, mac))
        macs.append(mac)
    for mac in macs:
        mac.start()

    for i in range(N_EXCHANGES):
        t = 10.0 * i + 5.0  # mid-sleep-period injections
        inject_times[i] = t
        packet = Packet(
            kind=PacketKind.DATA, origin=0, sender=0, seqno=i,
            size_bytes=64, destination=1,
        )
        engine.schedule_at(t, lambda packet=packet: macs[0].send_unicast(packet))
    engine.run(until=10.0 * N_EXCHANGES + 60.0)
    energy = macs[1].radio.consumed_joules(engine.now) / N_EXCHANGES
    return latencies, energy, macs[0].unicast_stats


def main() -> None:
    print(f"One-hop unicast, {N_EXCHANGES} exchanges injected mid-sleep")
    print(f"  {'regime':<28} {'mean latency':>13} {'rx J/exchange':>14}")
    regimes = [
        ("announced PSM (p=0)", 0.0, 0.0),
        ("PBBF immediate, q=1 peer", 1.0, 1.0),
        ("PBBF immediate, q=0.5 peer", 1.0, 0.5),
        ("PBBF immediate, q=0 peer", 1.0, 0.0),
    ]
    for label, p, q in regimes:
        latencies, energy, stats = run_regime(p, q)
        mean_latency = sum(latencies) / len(latencies)
        extra = ""
        if stats.immediate_attempts:
            hit_rate = stats.immediate_successes / stats.immediate_attempts
            extra = f"   (immediate hit rate {hit_rate:.0%})"
        print(f"  {label:<28} {mean_latency:>11.2f} s {energy:>13.3f}J{extra}")

    print()
    print("The q-knob sets the immediate path's hit rate: awake peers turn")
    print("a next-interval announcement into a sub-second exchange, missed")
    print("attempts fall back safely -- PBBF's broadcast trade-off,")
    print("replayed for unicast.")


if __name__ == "__main__":
    main()
