#!/usr/bin/env python3
"""Adaptive PBBF: the paper's future-work heuristics, running.

Section 6 of the paper sketches self-tuning PBBF: raise p when the
neighbourhood sounds busy, raise q when sequence numbers reveal missed
broadcasts.  The :mod:`repro.adaptive` extension implements both, and this
example pits it against static configurations on the detailed simulator.

The adaptive nodes start from a deliberately bad point (p=0.5, q=0.05 —
deep inside the unreliable region of Figure 7) and climb out on their own.

Run:  python examples/adaptive_pbbf.py
"""

from repro import (
    AdaptivePBBFAgent,
    AdaptivePolicy,
    CodeDistributionParameters,
    DetailedSimulator,
    PBBFParams,
)

START = PBBFParams(p=0.5, q=0.05)  # sub-threshold: loses packets
POLICY = AdaptivePolicy(p_max=0.75, q_step=0.1)
CONFIG = CodeDistributionParameters(n_nodes=40, density=10.0, duration=500.0)
SEEDS = (21, 22, 23)


def run_static(params: PBBFParams) -> tuple:
    delivery, joules = [], []
    for seed in SEEDS:
        metrics = DetailedSimulator(params, CONFIG, seed=seed).run().metrics
        delivery.append(metrics.mean_updates_received_fraction())
        joules.append(metrics.joules_per_update_per_node())
    return sum(delivery) / len(delivery), sum(joules) / len(joules)


def run_adaptive() -> tuple:
    delivery, joules, final_points = [], [], []

    for seed in SEEDS:
        agents = {}

        def factory(node_id, rng):
            agent = AdaptivePBBFAgent(START, rng, policy=POLICY)
            agents[node_id] = agent
            return agent

        simulator = DetailedSimulator(
            START, CONFIG, seed=seed, agent_factory=factory
        )
        metrics = simulator.run().metrics
        delivery.append(metrics.mean_updates_received_fraction())
        joules.append(metrics.joules_per_update_per_node())
        final_points.extend(
            (agent.params.p, agent.params.q) for agent in agents.values()
        )
    mean_p = sum(p for p, _ in final_points) / len(final_points)
    mean_q = sum(q for _, q in final_points) / len(final_points)
    return (
        sum(delivery) / len(delivery),
        sum(joules) / len(joules),
        (mean_p, mean_q),
    )


def main() -> None:
    print("Adaptive PBBF vs static configurations (40 nodes, 500 s, 3 seeds)")
    print(f"  {'configuration':<26} {'delivery':>9} {'J/update':>9}")

    delivery, joules = run_static(START)
    print(f"  {'static, start point':<26} {delivery:>8.1%} {joules:>8.2f}J")

    delivery, joules = run_static(PBBFParams(p=0.5, q=0.5))
    print(f"  {'static, hand-tuned q=0.5':<26} {delivery:>8.1%} {joules:>8.2f}J")

    delivery, joules, (mean_p, mean_q) = run_adaptive()
    print(
        f"  {'adaptive (from start)':<26} {delivery:>8.1%} {joules:>8.2f}J"
        f"   -> converged to p~{mean_p:.2f}, q~{mean_q:.2f}"
    )

    print()
    print("The controller recovers nearly all the delivery that the bad")
    print("static point loses, at a fraction of the hand-tuned energy: at")
    print("this sparse traffic rate (one update per 100 s) the network is")
    print("usually silent, so nodes learn that immediate forwards rarely")
    print("find an audience, dial p down toward the always-delivered")
    print("announced path, and let q decay between loss bursts -- exactly")
    print("the kind of convergence question the paper's Section 6 poses.")


if __name__ == "__main__":
    main()
