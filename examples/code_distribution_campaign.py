#!/usr/bin/env python3
"""Code distribution over a realistic MAC/PHY (the paper's Section 5 app).

Simulates the paper's motivating workload — a sink pushing firmware
updates through a 50-node duty-cycled sensor network — on the detailed
simulator: random deployment, CSMA/CA contention, collisions, 802.11 PSM
with ATIM windows, Mica2 energy accounting.

Sweeps a few (p, q) operating points and prints, for each, what a
deployment engineer would ask: how much battery does an update cost, how
stale is a 5-hop node, and what fraction of updates arrive at all.

Run:  python examples/code_distribution_campaign.py
"""

from repro import (
    CodeDistributionParameters,
    DetailedSimulator,
    PBBFParams,
    SchedulingMode,
)

OPERATING_POINTS = [
    ("PSM", PBBFParams.psm(), SchedulingMode.PSM_PBBF),
    ("PBBF(.1,.25)", PBBFParams(p=0.1, q=0.25), SchedulingMode.PSM_PBBF),
    ("PBBF(.5,.25)", PBBFParams(p=0.5, q=0.25), SchedulingMode.PSM_PBBF),
    ("PBBF(.5,.75)", PBBFParams(p=0.5, q=0.75), SchedulingMode.PSM_PBBF),
    ("NO PSM", PBBFParams.always_on(), SchedulingMode.ALWAYS_ON),
]

N_RUNS = 3  # paper uses 10; 3 keeps the example snappy


def main() -> None:
    config = CodeDistributionParameters()  # Table 2: N=50, delta=10, 500 s
    print(
        f"Code distribution: N={config.n_nodes}, delta={config.density:g}, "
        f"{config.duration:g} s runs, {N_RUNS} scenarios per point"
    )
    header = (
        f"  {'protocol':<14} {'J/update':>9} {'5-hop latency':>14} "
        f"{'delivery':>9}"
    )
    print(header)
    print("  " + "-" * (len(header) - 2))

    for label, params, mode in OPERATING_POINTS:
        joules, latencies, delivery = [], [], []
        for run in range(N_RUNS):
            result = DetailedSimulator(
                params, config, seed=1000 + run, mode=mode
            ).run()
            metrics = result.metrics
            joules.append(metrics.joules_per_update_per_node())
            five_hop = metrics.mean_latency_at_distance(5)
            if five_hop is not None:
                latencies.append(five_hop)
            delivery.append(metrics.mean_updates_received_fraction())
        mean_latency = (
            f"{sum(latencies) / len(latencies):>12.1f} s" if latencies else "          n/a"
        )
        print(
            f"  {label:<14} {sum(joules) / len(joules):>8.2f}J "
            f"{mean_latency} {sum(delivery) / len(delivery):>8.1%}"
        )

    print()
    print("Reading the table: q=0.25 already buys PBBF a beacon interval")
    print("or two of 5-hop staleness over PSM; pushing q to 0.75 buys")
    print("several more, paid for linearly in battery (Eq. 8).")


if __name__ == "__main__":
    main()
