#!/usr/bin/env python3
"""PBBF on three sleep schedulers: PSM, S-MAC-style, T-MAC-style.

The paper claims PBBF "can be integrated into any sleep scheduling
protocol" but evaluates only 802.11 PSM.  This example runs the identical
code-distribution workload, with identical (p, q), over the three
schedulers the paper discusses in Section 2.2 — exercising the extension
MACs in :mod:`repro.mac.smac` and :mod:`repro.mac.tmac`.

Run:  python examples/sleep_scheduler_comparison.py
"""

from repro import CodeDistributionParameters, DetailedSimulator, PBBFParams

PARAMS = PBBFParams(p=0.25, q=0.4)
CONFIG = CodeDistributionParameters(n_nodes=40, density=10.0, duration=500.0)
SEEDS = (5, 6, 7)

SCHEDULERS = [
    ("802.11 PSM", "psm", "announce in ATIM window, send after it"),
    ("S-MAC style", "smac", "send directly inside the listen period"),
    ("T-MAC style", "tmac", "active period ends after idle timeout"),
]


def main() -> None:
    print(f"PBBF(p={PARAMS.p}, q={PARAMS.q}) across sleep schedulers")
    print(f"  {'scheduler':<13} {'delivery':>9} {'latency':>9} {'J/update':>9}")
    for label, scheduler, note in SCHEDULERS:
        delivery, latency, joules = [], [], []
        for seed in SEEDS:
            metrics = DetailedSimulator(
                PARAMS, CONFIG, seed=seed, scheduler=scheduler
            ).run().metrics
            delivery.append(metrics.mean_updates_received_fraction())
            mean_latency = metrics.mean_update_latency()
            if mean_latency is not None:
                latency.append(mean_latency)
            joules.append(metrics.joules_per_update_per_node())
        print(
            f"  {label:<13} {sum(delivery) / len(delivery):>8.1%} "
            f"{sum(latency) / len(latency):>8.2f}s "
            f"{sum(joules) / len(joules):>8.2f}J"
            f"    ({note})"
        )
    print()
    print("Same p/q, same workload: the knobs carry over unchanged, but the")
    print("host scheduler sets the baseline each knob trades against --")
    print("PSM pays a beacon interval per hop, S-MAC floods within its")
    print("listen period, T-MAC sleeps through idle frames.")


if __name__ == "__main__":
    main()
