#!/usr/bin/env python3
"""Gossip vs PBBF: site vs bond percolation, with an energy bill.

The paper's Section 2.1 argument, measured: gossip-based routing (ref [5])
forwards with per-*node* probability (site percolation) and runs on
always-on radios; PBBF randomises per-*link* delivery (bond percolation)
and keeps the duty cycle.  This example runs both on the same deployments
and compares coverage and energy at matched forwarding budgets.

Run:  python examples/gossip_vs_pbbf.py
"""

from repro import (
    CodeDistributionParameters,
    DetailedSimulator,
    PBBFParams,
)
from repro.mac.gossip import GossipMac

CONFIG = CodeDistributionParameters(n_nodes=40, density=10.0, duration=500.0)
SEEDS = (31, 32, 33)


def run_gossip(g: float):
    delivery, joules = [], []
    for seed in SEEDS:
        def factory(node_id, engine, channel, radio, deliver, rng):
            return GossipMac(
                engine, channel, node_id, radio, deliver, rng,
                gossip_probability=g,
            )

        metrics = DetailedSimulator(
            PBBFParams.always_on(), CONFIG, seed=seed, mac_factory=factory
        ).run().metrics
        delivery.append(metrics.mean_updates_received_fraction())
        joules.append(metrics.joules_per_update_per_node())
    return sum(delivery) / len(delivery), sum(joules) / len(joules)


def run_pbbf(p: float, q: float):
    delivery, joules = [], []
    for seed in SEEDS:
        metrics = DetailedSimulator(
            PBBFParams(p=p, q=q), CONFIG, seed=seed
        ).run().metrics
        delivery.append(metrics.mean_updates_received_fraction())
        joules.append(metrics.joules_per_update_per_node())
    return sum(delivery) / len(delivery), sum(joules) / len(joules)


def main() -> None:
    print(f"Gossip (always-on) vs PBBF (duty-cycled), N={CONFIG.n_nodes}, "
          f"delta={CONFIG.density:g}")
    print(f"  {'protocol':<22} {'delivery':>9} {'J/update':>9}")

    for g in (0.6, 0.8):
        delivery, joules = run_gossip(g)
        print(f"  {'GOSSIP1(%.1f)' % g:<22} {delivery:>8.1%} {joules:>8.2f}J")

    for p, q in ((0.1, 0.25), (0.5, 0.75)):
        delivery, joules = run_pbbf(p, q)
        label = f"PBBF({p:g},{q:g})"
        print(f"  {label:<22} {delivery:>8.1%} {joules:>8.2f}J")

    print()
    print("Gossip's delivery rides on radios that never sleep (~3 J per")
    print("update regardless of g).  PBBF reaches comparable coverage from")
    print("the duty-cycled side of the spectrum at a third to two thirds")
    print("of the energy -- per-link randomness percolates on a smaller")
    print("budget, and the budget itself is cheaper.")


if __name__ == "__main__":
    main()
