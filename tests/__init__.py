"""PBBF reproduction test suite."""
